"""E4 — buffered-sbrk arena vs coalescing free-list malloc.

Paper claim: "a buffered sbrk scheme for allocation, with no attempt to
re-use freed space, gives superior performance in both time and space"
on pathalias's pattern (parse-heavy allocation, everything freed at the
end); "memory allocators that attempt to coalesce when space is freed
simply waste time (and space)".

Workload: allocation traces with the paper's published composition
(node structs, link structs, name strings), plus an adversarial
interleaved-churn control where coalescing is supposed to shine.
"""

import pytest

from repro.adt.arena import ArenaAllocator
from repro.adt.freelist import FreeListAllocator
from repro.adt.quickfit import QuickFitAllocator
from repro.adt.trace import churning_trace, pathalias_trace

from benchmarks.conftest import report

#: Paper scale, shrunk 4x to keep the bench snappy (same shape).
NODES, LINKS = 2125, 7000


@pytest.fixture(scope="module")
def parse_trace():
    return pathalias_trace(nodes=NODES, links=LINKS, seed=1986)


@pytest.fixture(scope="module")
def churn_trace():
    return churning_trace(operations=NODES * 4, seed=1986)


def test_arena_on_parse_pattern(benchmark, parse_trace):
    stats = benchmark(lambda: ArenaAllocator().run(parse_trace))
    benchmark.extra_info["steps"] = stats.steps
    benchmark.extra_info["space_overhead"] = round(stats.space_overhead, 3)


def test_freelist_on_parse_pattern(benchmark, parse_trace):
    stats = benchmark(lambda: FreeListAllocator().run(parse_trace))
    benchmark.extra_info["steps"] = stats.steps
    benchmark.extra_info["space_overhead"] = round(stats.space_overhead, 3)


def test_arena_wins_time_and_space(benchmark, parse_trace, churn_trace):
    """Three points on the Korn & Vo time-space spectrum the paper
    sampled: arena (no reuse), quick fit (fast reuse, hoards), and the
    coalescing free list (thrifty, slow)."""
    arena = ArenaAllocator().run(parse_trace)
    quickfit = QuickFitAllocator().run(parse_trace)
    freelist = FreeListAllocator().run(parse_trace)
    arena_churn = ArenaAllocator().run(churn_trace)
    quick_churn = QuickFitAllocator().run(churn_trace)
    freelist_churn = FreeListAllocator().run(churn_trace)

    report("E4 allocators on the pathalias trace", [
        ("allocator", "steps", "system bytes", "overhead"),
        ("arena (buffered sbrk)", arena.steps, arena.system_bytes,
         f"{arena.space_overhead:.2f}"),
        ("quick fit", quickfit.steps, quickfit.system_bytes,
         f"{quickfit.space_overhead:.2f}"),
        ("free list + coalesce", freelist.steps, freelist.system_bytes,
         f"{freelist.space_overhead:.2f}"),
        ("-- churn control --", "", "", ""),
        ("arena", arena_churn.steps, arena_churn.system_bytes,
         f"{arena_churn.space_overhead:.2f}"),
        ("quick fit", quick_churn.steps, quick_churn.system_bytes,
         f"{quick_churn.space_overhead:.2f}"),
        ("free list", freelist_churn.steps, freelist_churn.system_bytes,
         f"{freelist_churn.space_overhead:.2f}"),
    ])

    # The paper's claim, on the paper's pattern: the arena is better in
    # time AND space than every reuse-based scheme it tried.
    assert arena.steps < quickfit.steps < freelist.steps
    assert arena.system_bytes <= freelist.system_bytes
    assert arena.system_bytes <= quickfit.system_bytes
    # Control: under heavy churn the free list reclaims space the arena
    # cannot — the trade-off is real, pathalias just never hits it.
    assert freelist_churn.system_bytes < arena_churn.system_bytes

    benchmark.extra_info.update({
        "arena_steps": arena.steps,
        "freelist_steps": freelist.steps,
        "step_ratio": round(freelist.steps / arena.steps, 2),
    })
    benchmark(lambda: ArenaAllocator().run(parse_trace))
