"""E14 — precomputation vs on-demand queries.

Paper (OUTPUT): "Although it would be convenient to compute the path to
a destination as needed, the cost of the calculation is prohibitively
expensive.  Consequently, pathalias precomputes paths to all
destinations."

The bench quantifies the trade: one full mapping run amortized over all
destinations versus early-stopping single-destination queries.  Random
queries average half the vertex set in pops, so precomputation wins as
soon as a site sends to more than a couple of distinct hosts per map
update — which every site did.
"""

import random

from repro.core.batch import BatchMapper, query_single_destination
from repro.core.mapper import Mapper
from repro.graph.build import build_graph
from repro.parser.grammar import parse_text

from benchmarks.conftest import report


def test_precompute_vs_on_demand(benchmark, medium_generated):
    generated = medium_generated
    graph = build_graph([(n, parse_text(t, n))
                         for n, t in generated.files])
    rng = random.Random(1986)
    hosts = [n.name for n in graph.nodes
             if not n.netlike and not n.private]
    queries = rng.sample(hosts, k=60)

    # Precompute: one full run serves every destination.
    full_mapper = Mapper(graph)
    full = full_mapper.run(generated.localhost)
    full_pops = full_mapper.stats.pops
    for owner, link in full.inferred:
        owner.links.remove(link)

    # On demand: one early-stopping run per query.
    per_query_pops = []
    for destination in queries:
        mapper = Mapper(graph)
        result = mapper.run(generated.localhost, stop_at=destination)
        per_query_pops.append(mapper.stats.pops)
        for owner, link in result.inferred:
            owner.links.remove(link)
    mean_query_pops = sum(per_query_pops) / len(per_query_pops)
    break_even = full_pops / mean_query_pops

    report("E14 precompute vs on-demand (medium map)", [
        ("strategy", "heap pops"),
        ("precompute all destinations", full_pops),
        ("single query (mean of 60)", f"{mean_query_pops:.0f}"),
        ("break-even queries", f"{break_even:.1f}"),
    ])

    # "Prohibitively expensive": each on-demand query costs a large
    # fraction of the full run, so a handful of queries already loses.
    assert mean_query_pops > full_pops / 20
    assert break_even < 25

    benchmark.extra_info["full_pops"] = full_pops
    benchmark.extra_info["mean_query_pops"] = round(mean_query_pops)
    benchmark(lambda: query_single_destination(
        graph, generated.localhost, queries[0]))


def test_batch_all_sources_small(benchmark, small_generated):
    """The mapping project's job: a route table for every host."""
    generated = small_generated
    graph = build_graph([(n, parse_text(t, n))
                         for n, t in generated.files])
    batch_mapper = BatchMapper(graph)
    sources = batch_mapper.sources()[:40]

    def run_batch():
        return batch_mapper.run(sources)

    batch = benchmark.pedantic(run_batch, rounds=2, iterations=1)
    assert len(batch) == len(sources)
    for source in sources:
        assert batch[source].route(source) == "%s"
    benchmark.extra_info["sources"] = len(sources)
    benchmark.extra_info["total_pops"] = batch.total_pops
