"""E7 — the clique -> star network representation.

Paper claim: "A clique with n vertices contains about n^2 edges, so with
over 2,000 hosts in the ARPANET we are faced with millions of edges."
The network-node representation uses a pair of edges per member (2n)
and "preserves the cost structure of the clique" while keeping the
graph sparse.

Workload: one net of n members reached from an outside source, built
both ways, at growing n; per-edge counts, build+map time, and identical
resulting costs.
"""

import time

from repro.config import HeuristicConfig
from repro.core.mapper import Mapper
from repro.graph.build import GraphBuilder
from repro.parser.ast import HostDecl, LinkSpec, NetDecl

from benchmarks.conftest import report

CFG = HeuristicConfig(infer_back_links=False)


def _star(n: int):
    builder = GraphBuilder()
    builder.new_file("bench")
    members = tuple(f"m{i}" for i in range(n))
    builder.add(HostDecl("src", (LinkSpec("m0", cost=7),), "b", 1))
    builder.add(NetDecl("NET", members, cost=11, filename="b", line=2))
    return builder.finalize()


def _clique(n: int):
    builder = GraphBuilder()
    builder.new_file("bench")
    members = [f"m{i}" for i in range(n)]
    builder.add(HostDecl("src", (LinkSpec("m0", cost=7),), "b", 1))
    for i, name in enumerate(members):
        links = tuple(LinkSpec(other, cost=11)
                      for j, other in enumerate(members) if j != i)
        builder.add(HostDecl(name, links, "b", 2 + i))
    return builder.finalize()


def _build_and_map(factory, n: int) -> tuple[float, int]:
    t0 = time.perf_counter()
    graph = factory(n)
    Mapper(graph, CFG).run("src")
    return time.perf_counter() - t0, graph.link_count


def test_star_representation_2000(benchmark):
    """The ARPANET case: n=2,000 — trivial as a star."""
    graph = _star(2000)
    assert graph.link_count == 4001  # 2n + the src link
    result = benchmark(lambda: Mapper(graph, CFG).run("src"))
    assert result.cost("m1999") == 7 + 11


def test_cost_structure_preserved(benchmark):
    """Identical member-to-member costs under both representations."""
    star_result = Mapper(_star(40), CFG).run("src")
    clique_result = Mapper(_clique(40), CFG).run("src")
    for i in range(40):
        assert star_result.cost(f"m{i}") == clique_result.cost(f"m{i}")
    benchmark(lambda: Mapper(_star(40), CFG).run("src"))


def test_edges_and_time_scaling(benchmark):
    rows = [("n", "star edges", "clique edges", "star (s)",
             "clique (s)")]
    star_times, clique_times = {}, {}
    for n in (50, 100, 200, 400):
        star_time, star_edges = _build_and_map(_star, n)
        clique_time, clique_edges = _build_and_map(_clique, n)
        star_times[n], clique_times[n] = star_time, clique_time
        rows.append((n, star_edges, clique_edges,
                     f"{star_time:.4f}", f"{clique_time:.4f}"))
        assert star_edges == 2 * n + 1
        assert clique_edges == n * (n - 1) + 1
    report("E7 clique vs star representation", rows)

    # Quadratic explosion: the explicit clique loses badly by n=400.
    assert clique_times[400] > 3 * star_times[400]
    # Extrapolation to the ARPANET's 2,000 hosts: edge counts alone.
    benchmark.extra_info["arpanet_star_edges"] = 2 * 2000
    benchmark.extra_info["arpanet_clique_edges"] = 2000 * 1999
    benchmark(lambda: _build_and_map(_star, 200))
