"""E18 — the compiled engine vs the reference mapper.

The paper's whole economic argument is that route computation is cheap
enough to precompute for every destination; the ROADMAP extends that to
every *source* at production scale.  This bench pins the compiled
engine's advantage on the published 1986 workload (~8.5k nodes, ~28k
links): `CompactMapper` must map a full graph at least 3x faster than
the reference `Mapper`, and the parallel batch mapper must distribute
without changing a byte of output.

``benchmarks/run_bench.py`` runs the same measurements standalone and
records them in ``BENCH_routing.json``.
"""

import os

from repro.core.batch import BatchMapper
from repro.core.fastmap import CompactMapper, compact_route_table
from repro.core.mapper import Mapper
from repro.graph.build import build_graph
from repro.graph.compact import CompactGraph
from repro.parser.grammar import parse_text

from benchmarks.conftest import report


def _graph(generated):
    return build_graph([(n, parse_text(t, n)) for n, t in generated.files])


def _time(fn, rounds=3):
    import time

    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_compact_vs_reference_fullmap(benchmark, usenet_generated):
    """The acceptance bar: >= 3x on the full published-scale mapping."""
    generated = usenet_generated
    graph = _graph(generated)
    cgraph = CompactGraph.compile(graph)
    fast_mapper = CompactMapper(cgraph)

    def reference_run():
        mapper = Mapper(graph)
        result = mapper.run(generated.localhost)
        for owner, link in result.inferred:
            owner.links.remove(link)
        return result

    t_reference = _time(reference_run)
    t_compact = _time(lambda: fast_mapper.run(generated.localhost))
    speedup = t_reference / t_compact

    result = benchmark(lambda: fast_mapper.run(generated.localhost))
    assert result.stats.pops >= 8_000

    # Identical output is the license for the aggressive rewrite.
    fast_table = compact_route_table(fast_mapper.run(generated.localhost))
    reference = reference_run()
    from repro.core.printer import print_routes
    ref_table = print_routes(reference)
    assert fast_table.format_tab() == ref_table.format_tab()

    report("E18 compiled engine vs reference (usenet_1986)", [
        ("engine", "full map (ms)", "speedup"),
        ("Mapper (reference)", f"{t_reference * 1e3:.1f}", "1.0x"),
        ("CompactMapper", f"{t_compact * 1e3:.1f}", f"{speedup:.2f}x"),
    ])
    assert speedup >= 3.0, f"compiled engine only {speedup:.2f}x"
    benchmark.extra_info["reference_ms"] = round(t_reference * 1e3, 2)
    benchmark.extra_info["compact_ms"] = round(t_compact * 1e3, 2)
    benchmark.extra_info["speedup"] = round(speedup, 2)


def test_batch_throughput_and_scaling(benchmark, usenet_generated):
    """Batch precomputation: compiled serial vs process-pool fan-out.

    Near-linear scaling needs real cores; on a single-CPU runner the
    assertion degrades to "the pool must not corrupt or reorder
    output", and the measured ratio is still reported.
    """
    generated = usenet_generated
    graph = _graph(generated)
    sources = BatchMapper(graph).sources()[:16]

    serial_mapper = BatchMapper(graph)
    parallel_mapper = BatchMapper(graph, jobs=4)
    serial_mapper.compiled  # compile outside the timed region

    t_serial = _time(lambda: serial_mapper.run(sources), rounds=2)
    t_parallel = _time(lambda: parallel_mapper.run(sources), rounds=2)
    scaling = t_serial / t_parallel

    serial = serial_mapper.run(sources)
    parallel = parallel_mapper.run(sources)
    assert list(parallel.tables) == sources
    for source in sources:
        assert parallel[source].format_tab() == \
            serial[source].format_tab()

    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    report("E18 batch throughput (16 sources, usenet_1986)", [
        ("mode", "seconds", "tables/s"),
        ("serial", f"{t_serial:.2f}", f"{len(sources) / t_serial:.1f}"),
        ("4 workers", f"{t_parallel:.2f}",
         f"{len(sources) / t_parallel:.1f}"),
        ("scaling", f"{scaling:.2f}x", f"({cpus} cpus visible)"),
    ])
    if cpus >= 4:
        assert scaling >= 2.5, f"4 workers only {scaling:.2f}x"
    elif cpus >= 2:
        assert scaling >= 1.3, f"{cpus} cpus but only {scaling:.2f}x"

    benchmark.extra_info["serial_tables_per_sec"] = round(
        len(sources) / t_serial, 2)
    benchmark.extra_info["parallel_tables_per_sec"] = round(
        len(sources) / t_parallel, 2)
    benchmark.extra_info["scaling_4_workers"] = round(scaling, 2)
    benchmark.extra_info["cpus"] = cpus
    benchmark(lambda: serial_mapper.run(sources[:2]))
