"""E13 (ablation) — the pragmatic cost metric vs the additive theory.

Paper: "In theory, factors that influence cost are additive; in
practice, experience shows that the per-hop overhead in time and
reliability is so high that it is important to keep paths short.  Thus,
for example, DAILY is 10 times greater than HOURLY, instead of 24."

The tuned ratio has an exact operational meaning: one DAILY link is
worth a chain of ten HOURLY hops.  The bench constructs the competitive
topologies where that matters — a direct DAILY link racing a k-hop
HOURLY chain — and locates each table's crossover.  The paper's table
switches to the short path at k = 11 (ratio 10); the additive-theory
table (ratio 24) tolerates chains more than twice as long.  A
realistic-map comparison is reported observationally alongside.
"""

from repro.config import COST_SYMBOLS
from repro.core.mapper import Mapper
from repro.core.printer import print_routes
from repro.graph.build import build_graph
from repro.netsim.traffic import analyze_routes
from repro.parser.grammar import Parser
from repro.parser.scanner import Scanner

from benchmarks.conftest import report

#: The additive theory: costs scale linearly with waiting time.
THEORY_SYMBOLS = dict(COST_SYMBOLS)
THEORY_SYMBOLS.update({
    "DAILY": 24 * COST_SYMBOLS["HOURLY"],     # 12000, not 5000
    "POLLED": 24 * COST_SYMBOLS["HOURLY"],
    "EVENING": 12 * COST_SYMBOLS["HOURLY"],
    "WEEKLY": 7 * 24 * COST_SYMBOLS["HOURLY"],
})


def _routes_under(files, localhost, symbols):
    decl_sets = []
    for name, text in files:
        tokens = Scanner(text, name).tokens()
        decls = Parser(tokens, name, symbols=symbols).parse()
        decl_sets.append((name, decls))
    graph = build_graph(decl_sets)
    return print_routes(Mapper(graph).run(localhost))


def _race_map(max_chain: int) -> str:
    """For each k >= 2: src -DAILY-> destk racing a k-hop HOURLY chain
    (k-1 intermediate hosts).  A k-hop chain costs k*HOURLY, so the
    direct link wins exactly when k*HOURLY >= DAILY — at k = the tuned
    ratio (ties go to the direct link, which is labeled first)."""
    lines = []
    for k in range(2, max_chain + 1):
        lines.append(f"src dest{k}(DAILY), c{k}x1(HOURLY)")
        for i in range(1, k - 1):
            lines.append(f"c{k}x{i} c{k}x{i+1}(HOURLY)")
        lines.append(f"c{k}x{k-1} dest{k}(HOURLY)")
    return "\n".join(lines)


def _crossover(symbols, max_chain: int) -> tuple[int, dict[int, int]]:
    """Smallest chain length k at which the direct link is chosen."""
    table = _routes_under([("race", _race_map(max_chain))], "src",
                          symbols)
    hops = {}
    crossover = max_chain + 1
    for k in range(2, max_chain + 1):
        route = table.route(f"dest{k}")
        hop_count = route.count("!")
        hops[k] = hop_count
        if hop_count == 1 and crossover > k:
            crossover = k
    return crossover, hops


def test_daily_is_worth_ten_hourly_hops(benchmark):
    max_chain = 30
    paper_cross, paper_hops = _crossover(COST_SYMBOLS, max_chain)
    theory_cross, theory_hops = _crossover(THEORY_SYMBOLS, max_chain)

    report("E13 crossover: direct DAILY vs k-hop HOURLY chain", [
        ("cost table", "direct wins from chain length", "implied ratio"),
        ("paper (DAILY=10x HOURLY)", paper_cross, 10),
        ("theory (DAILY=24x HOURLY)", theory_cross, 24),
    ])

    # A k-hop chain costs k*HOURLY; direct costs DAILY.  Paper: direct
    # wins once k*500 >= 5000, i.e. at 10 hops — the tuned ratio *is*
    # the hop-equivalence of a daily link.  Theory tolerates 24.
    assert paper_cross == 10
    assert theory_cross == 24
    assert all(paper_hops[k] <= theory_hops[k]
               for k in range(2, max_chain + 1))

    benchmark.extra_info["paper_crossover"] = paper_cross
    benchmark.extra_info["theory_crossover"] = theory_cross
    benchmark(lambda: _crossover(COST_SYMBOLS, 12))


def test_realistic_map_observation(benchmark, medium_generated):
    """Observational: on a realistic topology the two tables mostly
    agree (few direct-vs-chain races exist); the point of the tuning is
    the adversarial case above."""
    generated = medium_generated
    pragmatic = analyze_routes(_routes_under(
        generated.files, generated.localhost, COST_SYMBOLS))
    theory = analyze_routes(_routes_under(
        generated.files, generated.localhost, THEORY_SYMBOLS))

    report("E13 realistic-map observation (medium map)", [
        ("cost table", "mean relays/route", "hub concentration"),
        ("paper", f"{pragmatic.mean_hops:.3f}",
         f"{pragmatic.concentration():.2%}"),
        ("theory", f"{theory.mean_hops:.3f}",
         f"{theory.concentration():.2%}"),
    ])
    # Same ballpark on realistic maps: the tables disagree on under 5%
    # of mean path length here.
    assert abs(pragmatic.mean_hops - theory.mean_hops) < \
        0.05 * max(pragmatic.mean_hops, theory.mean_hops)

    benchmark.extra_info["pragmatic_mean"] = round(pragmatic.mean_hops, 3)
    benchmark.extra_info["theory_mean"] = round(theory.mean_hops, 3)
    files = generated.files
    benchmark(lambda: _routes_under(files, generated.localhost,
                                    COST_SYMBOLS))
