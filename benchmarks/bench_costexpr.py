"""E1 — the cost symbol table and cost-expression evaluation.

Paper artifact: the INPUT-section table (LOCAL 25 ... WEEKLY 30000) and
the expression examples HOURLY*3, DAILY/2.  The bench verifies every
published value and times expression evaluation over a realistic corpus.
"""

from repro.config import COST_SYMBOLS
from repro.parser.costexpr import evaluate_cost

PAPER_TABLE = {
    "LOCAL": 25, "DEDICATED": 95, "DIRECT": 200, "DEMAND": 300,
    "HOURLY": 500, "EVENING": 1800, "POLLED": 5000, "DAILY": 5000,
    "WEEKLY": 30000,
}

CORPUS = (list(PAPER_TABLE) +
          ["HOURLY*3", "DAILY/2", "HOURLY*4", "DEMAND+LOW",
           "EVENING+HOURLY", "WEEKLY/7", "DEDICATED*2-10",
           "(HOURLY+DEMAND)/2", "POLLED-HIGH", "DIRECT*3"])


def test_cost_table_and_expressions(benchmark):
    def evaluate_corpus():
        return [evaluate_cost(text) for text in CORPUS]

    values = benchmark(evaluate_corpus)

    # Every symbol matches the published table exactly.
    for symbol, expected in PAPER_TABLE.items():
        assert COST_SYMBOLS[symbol] == expected
        assert values[CORPUS.index(symbol)] == expected
    # The paper's worked expressions.
    assert values[CORPUS.index("HOURLY*3")] == 1500
    assert values[CORPUS.index("DAILY/2")] == 2500
    # The tuning observation: DAILY is 10x HOURLY, not 24x.
    assert COST_SYMBOLS["DAILY"] == 10 * COST_SYMBOLS["HOURLY"]
    benchmark.extra_info["expressions"] = len(CORPUS)
