"""E6 — priority-queue Dijkstra vs the standard O(v^2) algorithm.

Paper claims: on sparse graphs (e proportional to v) the heap variant
runs in e log v = v log v and is "both asymptotically and pragmatically
... a clear winner"; on dense graphs it degrades to v^2 log v (the
standard algorithm's v^2 then has the edge asymptotically).

Workload: random sparse digraphs (e ~ 3v) at growing v, plus one dense
graph (e ~ v^2/4) to exhibit the caveat.
"""

import random
import time

from repro.config import HeuristicConfig
from repro.core.dense import DenseMapper
from repro.core.mapper import Mapper
from repro.graph.build import GraphBuilder
from repro.parser.ast import HostDecl, LinkSpec

from benchmarks.conftest import report

CFG = HeuristicConfig(infer_back_links=False)


def _random_graph(v: int, edges_per_vertex: float, seed: int = 7):
    """Build a connected random digraph directly (no parse overhead)."""
    rng = random.Random(seed)
    builder = GraphBuilder()
    builder.new_file("bench")
    names = [f"n{i}" for i in range(v)]
    for i, name in enumerate(names):
        links = []
        # A ring guarantees reachability; extra random chords give the
        # target density.
        links.append(LinkSpec(names[(i + 1) % v],
                              cost=rng.randint(1, 1000)))
        for _ in range(max(0, int(edges_per_vertex) - 1)):
            j = rng.randrange(v)
            if j != i:
                links.append(LinkSpec(names[j],
                                      cost=rng.randint(1, 1000)))
        builder.add(HostDecl(name, tuple(links), "bench", i))
    return builder.finalize()


def _time(mapper_class, graph) -> float:
    t0 = time.perf_counter()
    mapper_class(graph, CFG).run("n0")
    return time.perf_counter() - t0


def test_heap_variant_sparse_2000(benchmark):
    graph = _random_graph(2000, 3)
    result = benchmark(lambda: Mapper(graph, CFG).run("n0"))
    assert not result.unreachable()
    benchmark.extra_info["pops"] = result.stats.pops


def test_dense_variant_sparse_2000(benchmark):
    graph = _random_graph(2000, 3)
    result = benchmark(lambda: DenseMapper(graph, CFG).run("n0"))
    assert not result.unreachable()


def test_sparse_scaling_sweep(benchmark):
    """heap ~ v log v vs standard ~ v^2: the ratio must widen with v."""
    rows = [("v", "e", "heap (s)", "O(v^2) (s)", "ratio")]
    ratios = []
    for v in (250, 500, 1000, 2000):
        graph = _random_graph(v, 3)
        heap_time = min(_time(Mapper, graph) for _ in range(3))
        dense_time = min(_time(DenseMapper, graph) for _ in range(3))
        ratio = dense_time / heap_time
        ratios.append(ratio)
        rows.append((v, graph.link_count, f"{heap_time:.4f}",
                     f"{dense_time:.4f}", f"{ratio:.1f}x"))
    report("E6 sparse graphs: heap variant vs standard Dijkstra", rows)

    # The heap wins at scale, and its advantage grows with v.
    assert ratios[-1] > 1.5
    assert ratios[-1] > ratios[0]

    benchmark.extra_info["ratio_at_2000"] = round(ratios[-1], 2)
    graph = _random_graph(1000, 3)
    benchmark(lambda: Mapper(graph, CFG).run("n0"))


def test_dense_graph_caveat(benchmark):
    """'if the graph is dense, our running time is proportional to
    v^2 log v' — the heap's advantage shrinks or inverts."""
    v = 300
    dense_graph_a = _random_graph(v, v / 4)
    dense_graph_b = _random_graph(v, v / 4)
    heap_time = min(_time(Mapper, dense_graph_a) for _ in range(5))
    standard_time = min(_time(DenseMapper, dense_graph_b)
                        for _ in range(5))

    # A sparse graph with v chosen so both runs take comparable total
    # work — the advantage ratio is what matters, and it needs enough
    # vertices to rise clear of measurement noise.
    sv = 1000
    sparse_a = _random_graph(sv, 3)
    sparse_b = _random_graph(sv, 3)
    sparse_heap = min(_time(Mapper, sparse_a) for _ in range(5))
    sparse_standard = min(_time(DenseMapper, sparse_b)
                          for _ in range(5))

    dense_advantage = standard_time / heap_time
    sparse_advantage = sparse_standard / sparse_heap
    report("E6 dense-graph caveat", [
        ("graph", "heap (s)", "O(v^2) (s)", "heap advantage"),
        (f"sparse v={sv} e~3v", f"{sparse_heap:.4f}",
         f"{sparse_standard:.4f}", f"{sparse_advantage:.2f}x"),
        (f"dense v={v} e~v^2/4", f"{heap_time:.4f}",
         f"{standard_time:.4f}", f"{dense_advantage:.2f}x"),
    ])
    # The caveat's shape: density erodes the heap's edge.
    assert dense_advantage < sparse_advantage

    benchmark.extra_info["sparse_advantage"] = round(sparse_advantage, 2)
    benchmark.extra_info["dense_advantage"] = round(dense_advantage, 2)
    benchmark(lambda: Mapper(dense_graph_a, CFG).run("n0"))
