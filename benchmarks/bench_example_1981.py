"""E2 — the 1981 worked example (OUTPUT section).

Paper artifact: the seven-line route listing produced from the
"simplified portion of the map from 1981".  This is the headline
correctness result: the bench runs the full three-phase pipeline and
asserts the output matches the paper character for character.
"""

from repro import Pathalias

from tests.conftest import PAPER_1981_MAP, PAPER_1981_OUTPUT


def test_paper_1981_pipeline(benchmark):
    def pipeline():
        return Pathalias().run_text(PAPER_1981_MAP, localhost="unc")

    table = benchmark(pipeline)
    got = [(r.cost, r.name, r.route) for r in table]
    assert got == PAPER_1981_OUTPUT
    benchmark.extra_info["routes"] = len(table)
    benchmark.extra_info["matches_paper"] = True


def test_paper_1981_from_every_source(benchmark):
    """The same map, mapped from every host: n full runs (the paper
    notes precomputation is the only affordable mode — this is its unit
    of work)."""
    sources = ["unc", "duke", "phs", "research", "ucbvax"]

    def all_sources():
        return [Pathalias().run_text(PAPER_1981_MAP, localhost=s)
                for s in sources]

    tables = benchmark(all_sources)
    for table in tables:
        assert len(table) == 7
    # From ucbvax the ARPANET is one hop: pure @-syntax.
    by_source = dict(zip(sources, tables))
    assert by_source["ucbvax"].route("mit-ai") == "%s@mit-ai"
