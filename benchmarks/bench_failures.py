"""E16 — precomputed routes under link failure, and fallback coverage.

Paper (INTEGRATING): optimization "can backfire if the user wants to
use a circuitous route for some reason — say, to bypass a dead link."
Dial-up links died constantly; a site lived with its paths file until
the next map issue.  Two measurements:

* survival: kill a fraction of links, replay every precomputed route;
* resilience: how many hosts even *have* a first-hop-disjoint fallback
  (the circuitous route the user would hand-write).
"""

import random

from repro.core.alternates import resilience
from repro.core.mapper import Mapper
from repro.core.printer import print_routes
from repro.config import HeuristicConfig
from repro.graph.build import build_graph
from repro.netsim.failures import kill_links, survival
from repro.parser.grammar import parse_text

from benchmarks.conftest import report


def _fresh_graph(generated):
    return build_graph([(n, parse_text(t, n))
                        for n, t in generated.files])


def test_route_survival_under_failures(benchmark, medium_generated):
    generated = medium_generated
    rows = [("links killed", "routes surviving")]
    rates = {}
    for fraction in (0.01, 0.05, 0.10, 0.20):
        graph = _fresh_graph(generated)
        table = print_routes(Mapper(graph).run(generated.localhost))
        kill_links(graph, fraction=fraction, seed=int(fraction * 100))
        outcome = survival(table, graph, generated.localhost)
        rates[fraction] = outcome.survival_rate
        rows.append((f"{fraction:.0%}",
                     f"{outcome.survival_rate:.2%}"))
    report("E16 precomputed-route survival (medium map)", rows)

    # Survival degrades monotonically-ish and stays meaningful at 1%.
    assert rates[0.01] > 0.80
    assert rates[0.20] < rates[0.01]

    benchmark.extra_info["survival_at_10pct"] = round(rates[0.10], 4)
    graph = _fresh_graph(generated)
    table = print_routes(Mapper(graph).run(generated.localhost))
    benchmark(lambda: survival(table, graph, generated.localhost))


def test_fallback_coverage(benchmark, small_generated):
    """How many hosts have a first-hop-disjoint alternate at all?"""
    generated = small_generated
    graph = _fresh_graph(generated)
    rng = random.Random(1986)
    hosts = [n.name for n in graph.nodes
             if not n.netlike and not n.private and not n.deleted]
    sample = rng.sample(hosts, k=40)
    cfg = HeuristicConfig()
    scores = resilience(graph, generated.localhost, sample,
                        heuristics=cfg)

    with_fallback = sum(1 for s in scores.values() if s == 2)
    single_point = sum(1 for s in scores.values() if s == 1)
    report("E16 fallback coverage (small map, 40 sampled hosts)", [
        ("category", "hosts"),
        ("first-hop-disjoint fallback exists", with_fallback),
        ("first hop is a single point of failure", single_point),
        ("unreachable", sum(1 for s in scores.values() if s == 0)),
    ])

    # The backbone-plus-regions topology guarantees both kinds exist.
    assert with_fallback > 0
    assert with_fallback + single_point == len(sample)

    benchmark.extra_info["fallback_fraction"] = round(
        with_fallback / len(sample), 3)
    benchmark(lambda: resilience(graph, generated.localhost,
                                 sample[:5], heuristics=cfg))
