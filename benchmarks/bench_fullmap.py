"""E8 — the full published workload.

Paper numbers: "USENET maps contain over 5,700 nodes and 20,000 links,
while ARPANET, CSNET, and BITNET add another 2,800 nodes and 8,000
links."  The synthetic generator reproduces that scale; this bench runs
the complete three-phase pipeline on it and reports the phase split the
paper's engineering sections are about.
"""

from repro import Pathalias
from repro.graph.stats import compute_stats

from benchmarks.conftest import report


def test_full_scale_pipeline(benchmark, usenet_generated):
    generated = usenet_generated

    def pipeline():
        return Pathalias().run_detailed(generated.files,
                                        generated.localhost)

    result = benchmark.pedantic(pipeline, rounds=3, iterations=1,
                                warmup_rounds=1)
    stats = compute_stats(result.graph)
    times = result.times

    report("E8 full-scale run (paper: 5,700+2,800 nodes, 28,000 links)", [
        ("measure", "value"),
        ("nodes", stats.nodes),
        ("hosts", stats.hosts),
        ("links", stats.links),
        ("e/v", f"{stats.sparsity:.2f}"),
        ("routes printed", len(result.table)),
        ("unreachable", len(result.table.unreachable)),
        ("scan (s)", f"{times.scan:.3f}"),
        ("parse (s)", f"{times.parse:.3f}"),
        ("build (s)", f"{times.build:.3f}"),
        ("map (s)", f"{times.map:.3f}"),
        ("print (s)", f"{times.print:.3f}"),
    ])

    # Scale matches the paper's inventory (within generator tolerance).
    assert 7_500 <= stats.nodes <= 11_000
    assert 24_000 <= stats.links <= 36_000
    assert stats.is_sparse(factor=10)
    # Everything routes.
    assert result.table.unreachable == []
    assert len(result.table) >= 8_000

    benchmark.extra_info.update({
        "nodes": stats.nodes,
        "links": stats.links,
        "routes": len(result.table),
        "map_seconds": round(times.map, 3),
    })


def test_mapping_phase_only_full_scale(benchmark, usenet_generated):
    """Isolate the paper's core phase at published scale."""
    from repro.core.mapper import Mapper
    from repro.graph.build import build_graph
    from repro.parser.grammar import parse_text

    generated = usenet_generated
    graph = build_graph([(n, parse_text(t, n))
                         for n, t in generated.files])

    result = benchmark(
        lambda: Mapper(graph).run(generated.localhost))
    assert result.stats.pops >= 8_000
    benchmark.extra_info["pops"] = result.stats.pops
    benchmark.extra_info["relaxations"] = result.stats.relaxations
