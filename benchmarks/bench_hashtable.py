"""E5 — hash-table management.

Paper claims: (a) α_H = 0.79 gives "a predicted ratio of 2 probes per
access when the table is full"; (b) the textbook secondary hash
``1+(k mod (T-2))`` behaved anomalously, the inverse did not; (c) δ=2
(doubling) growth wastes space, the golden-ratio/Fibonacci schedule is
"large enough but not too large".

Workload: the full-scale host-name population (8,500 names, the paper's
USENET + other-nets count).
"""

import pytest

from repro.adt.hashtable import (
    ALPHA_HIGH,
    GrowthPolicy,
    HashTable,
    SecondaryHash,
)
from repro.netsim.models import NameGenerator

from benchmarks.conftest import report

import random

N_HOSTS = 8_500


@pytest.fixture(scope="module")
def host_names():
    gen = NameGenerator(random.Random(1986))
    return [gen.host() for _ in range(N_HOSTS)]


def _filled(names, **kwargs) -> HashTable:
    table = HashTable(initial_size=1009, **kwargs)
    for name in names:
        table.insert(name, None)
    return table


def test_intern_population(benchmark, host_names):
    table = benchmark(lambda: _filled(host_names))
    assert len(table) == N_HOSTS
    benchmark.extra_info["final_size"] = table.size


def test_lookup_storm(benchmark, host_names):
    table = _filled(host_names)
    table.reset_stats()

    def storm():
        for name in host_names:
            table.lookup(name)

    benchmark(storm)
    benchmark.extra_info["mean_probes"] = round(table.mean_probes(), 3)


def test_probe_prediction_and_secondary_hash(benchmark, host_names):
    rows = [("secondary hash", "mean probes (lookup @ full load)")]
    means = {}
    for secondary in SecondaryHash:
        # Fill a fixed-size table right up to the high-water mark so
        # the load factor is exactly the paper's alpha.
        size = 10_007
        count = int(size * ALPHA_HIGH) - 1
        table = HashTable(initial_size=size, secondary=secondary)
        for name in host_names[:count]:
            table.insert(name, None)
        assert table.size == size  # never grew
        table.reset_stats()
        for name in host_names[:count]:
            table.lookup(name)
        means[secondary] = table.mean_probes()
        rows.append((secondary.value, f"{means[secondary]:.3f}"))
    report("E5 probes per access at alpha=0.79 (paper predicts ~2)", rows)

    # Both functions keep the Gonnet prediction's neighborhood; the
    # inverse (the paper's choice) must be at least as well-behaved.
    for mean in means.values():
        assert 1.0 < mean < 3.0
    # The paper reports the textbook function "anomalous" in their
    # environment; under this key function both behave, so we assert
    # only that the inverse stays in the same neighborhood (see
    # EXPERIMENTS.md for the honest discussion).
    inverse = means[SecondaryHash.INVERSE]
    textbook = means[SecondaryHash.TEXTBOOK]
    assert inverse <= textbook * 1.5

    benchmark.extra_info["inverse_probes"] = round(inverse, 3)
    benchmark.extra_info["textbook_probes"] = round(textbook, 3)
    benchmark(lambda: _filled(host_names[:2000]))


def test_growth_policy_space(benchmark, host_names):
    """δ=2 'wastes an excessive amount of space when the total number of
    hosts happens to be slightly more than α_H·T'."""
    rows = [("growth policy", "final size", "retired slots",
             "slots/host")]
    usage = {}
    for policy in GrowthPolicy:
        table = _filled(host_names, growth=policy)
        total = table.size + table.retired_slots
        usage[policy] = table.size
        rows.append((policy.name, table.size, table.retired_slots,
                     f"{total / N_HOSTS:.2f}"))
    report("E5 growth policies over 8,500 host names", rows)

    # Doubling's final table is at least as large as the golden-ratio
    # schedule's (usually much larger just past a threshold).
    assert usage[GrowthPolicy.DOUBLING] >= usage[GrowthPolicy.FIBONACCI]
    # Either way the table still honours the load-factor contract.
    benchmark(lambda: _filled(host_names[:2000],
                              growth=GrowthPolicy.FIBONACCI))
