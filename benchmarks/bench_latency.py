"""E17 — does least-cost routing actually deliver mail sooner?

Paper (INPUT): "call setup time and the time between calls tend to be
the dominant factors" — the symbolic costs encode *call frequency*, so
pathalias's least-cost routes should minimize real waiting time, where
a hop-count router would happily pick one POLLED link that sleeps all
day.  The discrete-event latency simulator makes the comparison:
pathalias's routes vs min-hop routes over the same graph, same
schedules, same message start times.
"""

import random

from repro.core.mapper import Mapper
from repro.graph.build import build_graph
from repro.netsim.latency import LatencyModel, mean_latency, simulate_route
from repro.parser.grammar import parse_text

from benchmarks.conftest import report


def test_least_cost_beats_min_hop_on_latency(benchmark,
                                             medium_generated):
    generated = medium_generated
    files = generated.files

    cost_graph = build_graph([(n, parse_text(t, n)) for n, t in files])
    hop_graph = build_graph([(n, parse_text(t, n)) for n, t in files])

    least_cost = Mapper(cost_graph).run(generated.localhost)
    min_hop = Mapper(hop_graph, unit_costs=True).run(
        generated.localhost)

    rng = random.Random(1986)
    hosts = [n.name for n in cost_graph.nodes
             if not n.netlike and not n.private and not n.deleted
             and n.name != generated.localhost]
    sample = rng.sample(hosts, k=150)

    cost_latency = mean_latency(least_cost, sample, seed=42)
    hop_latency = mean_latency(min_hop, sample, seed=42)

    # Hop counts, for the flip side of the story.
    def mean_hops(result):
        model = LatencyModel(seed=42)
        total = count = 0
        for host in sample:
            try:
                outcome = simulate_route(result, host, model)
            except Exception:
                continue
            total += outcome.hops
            count += 1
        return total / count

    cost_hops = mean_hops(least_cost)
    hop_hops = mean_hops(min_hop)

    report("E17 least-cost vs min-hop routing (medium map, 150 hosts)", [
        ("routing policy", "mean latency (min)", "mean hops"),
        ("pathalias least-cost", f"{cost_latency:.0f}",
         f"{cost_hops:.2f}"),
        ("min-hop", f"{hop_latency:.0f}", f"{hop_hops:.2f}"),
        ("latency ratio", f"{hop_latency / cost_latency:.2f}x", ""),
    ])

    # The claim's shape: frequency-encoding costs buy real latency;
    # min-hop takes fewer hops but waits longer for windows.
    assert cost_latency < hop_latency
    assert hop_hops <= cost_hops + 0.5  # min-hop really minimizes hops

    benchmark.extra_info["cost_latency"] = round(cost_latency)
    benchmark.extra_info["hop_latency"] = round(hop_latency)
    benchmark(lambda: mean_latency(least_cost, sample[:30], seed=42,
                                   samples=1))


def test_latency_scales_with_grade(benchmark):
    """Sanity anchor: one grade apart, one window apart."""
    text = ("src hourly(HOURLY), evening(EVENING), daily(DAILY), "
            "weekly(WEEKLY), demand(DEMAND)")
    graph = build_graph([("m", parse_text(text))])
    result = Mapper(graph).run("src")
    model = LatencyModel(seed=7)
    latencies = {
        name: simulate_route(result, name, model).minutes
        for name in ("demand", "hourly", "evening", "daily", "weekly")
    }
    report("E17 single-hop latency by grade", [
        ("grade", "latency (min)"),
        *[(name, minutes) for name, minutes in latencies.items()],
    ])
    assert latencies["demand"] <= latencies["hourly"]
    assert latencies["hourly"] <= latencies["evening"] + 60
    assert latencies["daily"] <= 1440 + 60
    assert latencies["weekly"] <= 10080 + 60

    benchmark(lambda: simulate_route(result, "weekly", model))
