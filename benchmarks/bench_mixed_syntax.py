"""E10 — the mixed-syntax penalty.

Paper claims: "pathalias adds a heavy penalty to paths that mix routing
syntax ... with our (atypically large) data set, this penalty is applied
to only a fraction of a percent of the generated routes."  The penalty's
*purpose* — fewer ambiguous routes — is measured with the delivery
simulator: routes computed with the penalty survive bang-rigid relays
that kill the unpenalized mixed routes.
"""

from repro import HeuristicConfig, Pathalias
from repro.graph.build import build_graph
from repro.mailer.address import MailerStyle
from repro.mailer.delivery import Network
from repro.parser.grammar import parse_text

from benchmarks.conftest import report


def test_penalty_rarity_at_scale(benchmark, medium_generated):
    """'a fraction of a percent of the generated routes'."""
    generated = medium_generated

    def run():
        return Pathalias().run_detailed(generated.files,
                                        generated.localhost)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    routes = len(result.table)
    penalized = result.mapping.stats.mixed_penalties
    fraction = penalized / max(routes, 1)

    report("E10 mixed-syntax penalty incidence", [
        ("routes", routes),
        ("penalized relaxations", penalized),
        ("fraction", f"{fraction:.4%}"),
        ("paper", "a fraction of a percent"),
    ])
    # The penalty is rare on realistic maps (well under 5% even counting
    # per-relaxation rather than per-route).
    assert fraction < 0.05
    benchmark.extra_info["fraction"] = round(fraction, 5)


#: A topology where @-then-! is the cheap path: an ARPANET shortcut
#: into a UUCP tail.  Scaled chains make the effect visible in bulk.
def _ambush_map(chains: int) -> str:
    lines = []
    targets = []
    for i in range(chains):
        lines.append(f"src @gw{i}(10), slow{i}(500)")
        lines.append(f"gw{i} mid{i}(10)")
        lines.append(f"slow{i} mid{i}(500)")
        lines.append(f"mid{i} dest{i}(10)")
        targets.append(f"dest{i}")
    return "\n".join(lines), targets


def test_deliverability_with_and_without_penalty(benchmark):
    text, targets = _ambush_map(chains=40)

    def routes_under(penalty: int):
        table = Pathalias(
            heuristics=HeuristicConfig(mixed_penalty=penalty)
        ).run_text(text, localhost="src")
        return table

    with_penalty = routes_under(HeuristicConfig().mixed_penalty)
    without_penalty = routes_under(0)

    graph = build_graph([("m", parse_text(text))])
    net = Network(graph, default_style=MailerStyle.BANG_RIGID)

    def delivered(table) -> int:
        count = 0
        for target in targets:
            record = table.lookup(target)
            outcome = net.deliver_route("src", record.route)
            if outcome.delivered and outcome.final_host == target:
                count += 1
        return count

    ok_with = delivered(with_penalty)
    ok_without = delivered(without_penalty)

    report("E10 delivery through bang-rigid relays", [
        ("routing", "delivered", "of"),
        ("with penalty", ok_with, len(targets)),
        ("without penalty", ok_without, len(targets)),
    ])

    # The penalty redeems every route; without it, the mixed routes die
    # at rigid relays.
    assert ok_with == len(targets)
    assert ok_without == 0

    benchmark.extra_info["saved_routes"] = ok_with - ok_without
    benchmark(lambda: routes_under(300000))
