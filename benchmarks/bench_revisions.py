"""E15 — route stability across map revisions.

Paper (HISTORY): the UUCP mapping project made "timely and accurate
data widely available" — monthly revisions that every site re-ran
pathalias over.  The implicit bet: a local edit to the map barely
perturbs the global route table, so precomputed paths files stay
usable between postings.  This bench quantifies that bet: apply
regional edits of growing size to a map and measure route stability
from a fixed source.
"""

import random

from repro.netsim.mapdiff import diff_map_texts, route_impact_for_source

from benchmarks.conftest import report


def _revise(files, edits: int, seed: int):
    """A revision: add `edits` leaf hosts and retire `edits` links by
    appending delete statements (what monthly postings did)."""
    rng = random.Random(seed)
    revised = list(files)
    name, text = revised[1]  # a region file: plain host declarations
    additions = []
    keywords = {"private", "dead", "adjust", "delete", "file",
                "gatewayed"}
    hub_lines = [line for line in text.splitlines()
                 if line and not line.startswith(("#", "\t", " "))
                 and "=" not in line
                 and line.split()[0] not in keywords]
    for index in range(edits):
        anchor = rng.choice(hub_lines).split()[0]
        newcomer = f"rev{seed}x{index}"
        additions.append(f"{newcomer}\t{anchor}(DAILY)")
        additions.append(f"{anchor}\t{newcomer}(DAILY)")
    revised[1] = (name, text + "\n" + "\n".join(additions) + "\n")
    return revised


def test_revision_stability(benchmark, medium_generated):
    generated = medium_generated
    rows = [("edits", "diff", "stability", "rerouted", "gained")]
    stabilities = []
    for edits in (1, 5, 20):
        revised = _revise(generated.files, edits, seed=edits)
        diff = diff_map_texts(generated.files, revised)
        impact = route_impact_for_source(
            generated.files, revised, generated.localhost)
        stabilities.append(impact.stability())
        rows.append((edits, diff.summary(),
                     f"{impact.stability():.2%}",
                     len(impact.rerouted), len(impact.gained)))
        assert len(impact.gained) == edits
        assert impact.lost == []
    report("E15 route stability across map revisions (medium map)",
           rows)

    # Local edits leave the global table overwhelmingly intact.
    assert all(s > 0.95 for s in stabilities)
    benchmark.extra_info["stability_at_20_edits"] = round(
        stabilities[-1], 4)

    revised = _revise(generated.files, 5, seed=5)
    benchmark(lambda: diff_map_texts(generated.files, revised))
