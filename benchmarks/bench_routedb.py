"""E12 — the route database and domain-suffix lookup.

Paper artifacts: the linear output file ("a separate program may be used
to convert this file into a format appropriate for rapid database
retrieval") and the Domains-section lookup procedure — mail for
``caip.rutgers.edu!pleasant`` resolves identically via the exact entry
or by falling back through ``.rutgers.edu`` to ``.edu``.
"""

import math

import pytest

from repro import Pathalias
from repro.mailer.routedb import IndexedPathsFile, RouteDatabase

from benchmarks.conftest import report
from tests.conftest import DOMAIN_TREE_MAP


@pytest.fixture(scope="module")
def big_table(medium_generated):
    generated = medium_generated
    return Pathalias().run_text(generated.all_text(),
                                generated.localhost)


def test_paper_lookup_equivalence(benchmark):
    """The worked example: exact hit and .edu fallback produce
    seismo!caip.rutgers.edu!pleasant, 'as before'."""
    table = Pathalias().run_text(DOMAIN_TREE_MAP, localhost="local")
    full = RouteDatabase.from_table(table)
    stripped = RouteDatabase({".edu": full.route(".edu")})

    def resolve_both():
        exact = full.resolve("caip.rutgers.edu", "pleasant")
        fallback = stripped.resolve("caip.rutgers.edu", "pleasant")
        return exact, fallback

    exact, fallback = benchmark(resolve_both)
    assert exact.address == "seismo!caip.rutgers.edu!pleasant"
    assert fallback.address == exact.address
    assert exact.matched == "caip.rutgers.edu"
    assert fallback.matched == ".edu"


def test_indexed_vs_linear_file(benchmark, big_table, tmp_path_factory):
    """The dbm-conversion claim: log n beats the linear scan."""
    path = tmp_path_factory.mktemp("paths") / "paths"
    index = IndexedPathsFile.build(big_table, path)
    names = [record.name for record in big_table][:500]

    index.comparisons = 0
    for name in names:
        assert index.lookup(name) is not None
    binary_comparisons = index.comparisons / len(names)

    index.comparisons = 0
    for name in names[:50]:  # linear is slow; sample
        index.lookup_linear(name)
    linear_comparisons = index.comparisons / 50

    report("E12 paths-file retrieval", [
        ("method", "mean comparisons"),
        ("bisection (converted)", f"{binary_comparisons:.1f}"),
        ("linear file scan", f"{linear_comparisons:.1f}"),
        ("entries", len(index)),
    ])

    assert binary_comparisons <= math.log2(len(index)) + 2
    assert binary_comparisons * 10 < linear_comparisons

    benchmark.extra_info["entries"] = len(index)
    benchmark.extra_info["binary_mean"] = round(binary_comparisons, 1)

    def lookup_batch():
        for name in names:
            index.lookup(name)

    benchmark(lookup_batch)


def test_suffix_search_depth(benchmark, big_table):
    """Domain fallback costs at most the label count of the target."""
    db = RouteDatabase.from_table(big_table)
    targets = [record.name for record in big_table
               if "." not in record.name][:200]

    def resolve_all():
        return [db.resolve(t, "user") for t in targets]

    resolutions = benchmark(resolve_all)
    assert all(r.address for r in resolutions)
