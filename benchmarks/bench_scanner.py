"""E3 — hand-rolled scanner vs the lex-style table-driven DFA.

Paper claims: with lex, "half the run time was spent in the scanner";
replacing it "cut the overall run time by 40%".  We measure both
scanners on identical generated map text and check the shape: the DFA
dominates its front-end's runtime, and the hand scanner cuts total
scan+parse time substantially.
"""

import time

import pytest

from repro.parser.grammar import Parser
from repro.parser.lexgen import LexScanner
from repro.parser.scanner import Scanner

from benchmarks.conftest import report


@pytest.fixture(scope="module")
def map_text(medium_generated):
    return "\n".join(text for _, text in medium_generated.files)


@pytest.fixture(scope="module")
def big_map_text(usenet_generated):
    """Full published scale: long enough runs to measure stably."""
    return "\n".join(text for _, text in usenet_generated.files)


def test_hand_scanner(benchmark, map_text):
    tokens = benchmark(lambda: Scanner(map_text, "m").tokens())
    benchmark.extra_info["tokens"] = len(tokens)


def test_lex_scanner(benchmark, map_text):
    tokens = benchmark(lambda: LexScanner(map_text, "m").tokens())
    benchmark.extra_info["tokens"] = len(tokens)


def test_scanner_share_and_total_speedup(benchmark, big_map_text):
    """The two headline numbers, measured the way the paper states
    them: scanner share of front-end time, and total reduction.
    Measured on the full published scale (~28k links of map text) so
    each run is long enough to rise above scheduler noise."""

    def front_end(scanner_class):
        t0 = time.perf_counter()
        tokens = scanner_class(big_map_text, "m").tokens()
        t1 = time.perf_counter()
        Parser(tokens, "m").parse()
        t2 = time.perf_counter()
        return t1 - t0, t2 - t1

    # Steady measurement: best-of-3, interleaved so machine noise hits
    # both variants alike.
    lex_runs, hand_runs = [], []
    for _ in range(3):
        lex_runs.append(front_end(LexScanner))
        hand_runs.append(front_end(Scanner))
    lex_scan = min(scan for scan, _ in lex_runs)
    lex_parse = min(parse for _, parse in lex_runs)
    hand_scan = min(scan for scan, _ in hand_runs)
    hand_parse = min(parse for _, parse in hand_runs)

    lex_total = lex_scan + lex_parse
    hand_total = hand_scan + hand_parse
    lex_share = lex_scan / lex_total
    reduction = 1 - hand_total / lex_total

    report("E3 scanner comparison", [
        ("variant", "scan (s)", "parse (s)", "scanner share"),
        ("lex-style DFA", f"{lex_scan:.4f}", f"{lex_parse:.4f}",
         f"{lex_share:.0%}"),
        ("hand-rolled", f"{hand_scan:.4f}", f"{hand_parse:.4f}",
         f"{hand_scan / hand_total:.0%}"),
        ("total reduction", f"{reduction:.0%}",
         "(paper: 40%)", ""),
    ])

    # Shape assertions: scanner dominates the lex front end (paper:
    # ~half); the hand scanner is the faster scanner and cuts total
    # front-end time (paper: 40%; exact margin is machine-dependent).
    assert lex_share > 0.40
    assert hand_scan < lex_scan
    assert reduction > 0.10

    benchmark.extra_info.update({
        "lex_scanner_share": round(lex_share, 3),
        "total_reduction": round(reduction, 3),
    })
    # Give pytest-benchmark something representative to time.
    benchmark.pedantic(
        lambda: Scanner(big_map_text, "m").tokens(),
        rounds=2, iterations=1)
