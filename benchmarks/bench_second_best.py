"""E9 — the motown example and the second-best-path algorithm.

Paper artifact (PROBLEMS): the 5-node figure where the shortest-path
tree commits motown to a domain route costing "425 + infinity" while the
right branch costs 500; and the proposed fix, "a modified algorithm that
maintains the 'second-best' path when the shortest path to a host goes
by way of a domain".  The bench verifies both numbers and measures what
the extra label costs at scale.
"""

from repro import HeuristicConfig, Pathalias
from repro.config import INF
from repro.core.mapper import Mapper
from repro.graph.build import build_graph
from repro.parser.grammar import parse_text

from benchmarks.conftest import report
from tests.conftest import MOTOWN_MAP


def test_motown_figure_numbers(benchmark):
    def both_modes():
        tree = Pathalias().run_text(MOTOWN_MAP, localhost="princeton")
        dag = Pathalias(
            heuristics=HeuristicConfig(second_best=True)
        ).run_text(MOTOWN_MAP, localhost="princeton")
        return tree, dag

    tree, dag = benchmark(both_modes)

    tree_motown = tree.lookup("motown")
    dag_motown = dag.lookup("motown")
    report("E9 the motown example", [
        ("algorithm", "motown cost", "route"),
        ("tree (historical)", tree_motown.cost, tree_motown.route),
        ("second-best", dag_motown.cost, dag_motown.route),
        ("paper", "425 + infinity vs 500", ""),
    ])

    # Tree mode: 425 plus the essentially-infinite relay penalty.
    assert tree_motown.cost >= 425 + INF
    # Second-best: the right branch, exactly 500.
    assert dag_motown.cost == 500
    assert dag_motown.route == "topaz!motown!%s"

    benchmark.extra_info["tree_cost"] = tree_motown.cost
    benchmark.extra_info["second_best_cost"] = dag_motown.cost


def test_second_best_overhead_at_scale(benchmark, medium_generated):
    """The fix doubles the worst-case label count; measure the real
    overhead on a realistic map with domains."""
    import time

    generated = medium_generated
    files = generated.files

    def run(second_best: bool) -> float:
        graph = build_graph([(n, parse_text(t, n)) for n, t in files])
        cfg = HeuristicConfig(second_best=second_best)
        t0 = time.perf_counter()
        Mapper(graph, cfg).run(generated.localhost)
        return time.perf_counter() - t0

    tree_time = min(run(False) for _ in range(3))
    dag_time = min(run(True) for _ in range(3))
    overhead = dag_time / tree_time

    report("E9 second-best overhead (medium map)", [
        ("mode", "map time (s)"),
        ("tree", f"{tree_time:.4f}"),
        ("second-best", f"{dag_time:.4f}"),
        ("overhead", f"{overhead:.2f}x"),
    ])
    # At most ~2x by construction (two labels per node), usually less.
    assert overhead < 2.5

    benchmark.extra_info["overhead"] = round(overhead, 2)
    graph = build_graph([(n, parse_text(t, n)) for n, t in files])
    benchmark(lambda: Mapper(
        graph, HeuristicConfig(second_best=True)
    ).run(generated.localhost))
