#!/usr/bin/env python
"""Measure the serving tier and record it in BENCH_routing.json.

Three numbers the ROADMAP cares about:

* snapshot build time (the offline cost of the store);
* incremental update vs full rebuild after a single link-cost change
  (the paper's monthly-revision scenario) — with the byte-identity
  guarantee asserted while we are at it;
* daemon lookup throughput over real sockets, with hot-swap reloads
  happening mid-traffic.

The map is a deterministic ring-with-chords (explicit numeric costs,
no symbol table) so a one-link revision is easy to synthesize and its
affected-source set is a stable fraction of the whole.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py \
        --hosts 200 --clients 8 --requests 500
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.pathalias import Pathalias  # noqa: E402
from repro.service.daemon import RouteService, serve  # noqa: E402
from repro.service.incremental import update_snapshot  # noqa: E402
from repro.service.store import (  # noqa: E402
    SnapshotReader,
    build_snapshot,
)


def ring_map(hosts: int, changed_cost: int | None = None) -> str:
    """A ring with +7 chords; optionally reprice one ring link."""
    lines = []
    for i in range(hosts):
        right = (i + 1) % hosts
        left = (i - 1) % hosts
        chord = (i + 7) % hosts
        cost = 100
        if changed_cost is not None and i == 10:
            cost = changed_cost
        lines.append(f"h{i:03d}\th{right:03d}({cost}), "
                     f"h{left:03d}(100), h{chord:03d}(300)")
    return "\n".join(lines) + "\n"


def build(text: str):
    return Pathalias().build([("d.ring", text)])


def bench_store(tmp: Path, hosts: int) -> dict:
    graph = build(ring_map(hosts))
    base = tmp / "base.snap"
    t0 = time.perf_counter()
    info = build_snapshot(graph, base)
    build_s = time.perf_counter() - t0

    revised = build(ring_map(hosts, changed_cost=140))
    t0 = time.perf_counter()
    report = update_snapshot(base, revised, tmp / "inc.snap")
    incremental_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    build_snapshot(revised, tmp / "full.snap",
                   heuristics=report.heuristics)
    full_s = time.perf_counter() - t0
    identical = (tmp / "inc.snap").read_bytes() == \
        (tmp / "full.snap").read_bytes()
    assert identical, "incremental update diverged from full rebuild!"
    assert report.mode == "incremental", report.reason
    return {
        "hosts": hosts,
        "sources": len(info.sources),
        "snapshot_bytes": info.size,
        "build_sec": round(build_s, 3),
        "incremental": {
            "mode": report.mode,
            "remapped_sources": len(report.remapped),
            "reused_sources": report.reused,
            "update_sec": round(incremental_s, 3),
            "full_rebuild_sec": round(full_s, 3),
            "speedup_vs_full": round(full_s / incremental_s, 2)
            if incremental_s > 0 else None,
            "byte_identical_to_full": identical,
        },
    }


def bench_daemon(tmp: Path, clients: int, requests: int,
                 reloads: int) -> dict:
    base, alt = str(tmp / "base.snap"), str(tmp / "inc.snap")

    async def scenario() -> dict:
        service = RouteService(base)
        server = await serve(service)
        port = server.sockets[0].getsockname()[1]
        reader = SnapshotReader.open(base)
        destinations = [name for _, name, _ in
                        reader.table(reader.sources()[0]).records()]

        async def client(i: int) -> int:
            r, w = await asyncio.open_connection("127.0.0.1", port)
            count = 0
            for k in range(requests):
                dest = destinations[(i + k * 13) % len(destinations)]
                w.write(f"ROUTE {dest} u{k}\n".encode())
                await w.drain()
                reply = await r.readline()
                assert reply.startswith(b"OK "), reply
                count += 1
            w.write(b"QUIT\n")
            await w.drain()
            w.close()
            return count

        async def reloader() -> None:
            r, w = await asyncio.open_connection("127.0.0.1", port)
            for k in range(reloads):
                target = alt if k % 2 == 0 else base
                w.write(f"RELOAD {target}\n".encode())
                await w.drain()
                reply = await r.readline()
                assert reply.startswith(b"OK reloaded"), reply
                await asyncio.sleep(0.01)
            w.close()

        t0 = time.perf_counter()
        answered = await asyncio.gather(
            *(client(i) for i in range(clients)), reloader())
        elapsed = time.perf_counter() - t0
        server.close()
        await server.wait_closed()
        total = sum(a for a in answered if a is not None)
        return {
            "clients": clients,
            "requests": total,
            "reloads_mid_traffic": reloads,
            "seconds": round(elapsed, 3),
            "lookups_per_sec": round(total / elapsed, 1),
            "dropped": 0,  # every request asserted OK above
        }

    return asyncio.run(scenario())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the route service tier")
    parser.add_argument("--hosts", type=int, default=120)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=400,
                        help="lookups per client")
    parser.add_argument("--reloads", type=int, default=20)
    parser.add_argument("--out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_routing.json"))
    args = parser.parse_args(argv)

    import tempfile

    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        print("benchmarking snapshot store + incremental update...",
              file=sys.stderr)
        store = bench_store(tmp, args.hosts)
        print("benchmarking daemon throughput under reload...",
              file=sys.stderr)
        daemon = bench_daemon(tmp, args.clients, args.requests,
                              args.reloads)

    section = {"store": store, "daemon": daemon}
    out = Path(args.out)
    document = json.loads(out.read_text()) if out.exists() else {
        "benchmark": "BENCH_routing"}
    document["service"] = section
    out.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote service section -> {out}", file=sys.stderr)
    print(json.dumps(section, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
