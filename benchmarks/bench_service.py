#!/usr/bin/env python
"""Measure the serving tier and record it in BENCH_routing.json.

Seven numbers the ROADMAP cares about:

* snapshot build time (the offline cost of the store);
* incremental update vs full rebuild after a single link-cost change
  (the paper's monthly-revision scenario) — with the byte-identity
  guarantee asserted while we are at it;
* daemon lookup throughput over real sockets, with hot-swap reloads
  happening mid-traffic;
* federated throughput over sharded regional maps — cross-shard
  stitched lookups under load — plus the cost of refreshing ONE
  region (incremental update + single-shard RELOAD) against
  rebuilding every region from scratch;
* what snapshot format v2 costs and buys: the per-state-record byte
  overhead vs v1, and incremental-update *coverage* on revisions
  touching nets/domains/private nodes and on second-best snapshots
  over the ``tests/data/d.*`` fixture suite — cases where a v1
  snapshot always fell back to a full remap (target: zero fallbacks
  on v2);
* **fan-out throughput**: the same stitched-lookup workload answered
  by the in-process federation front end vs the remote-backend front
  end (one spawned shard-daemon *process* per region, whole lookups
  pushed down over sockets) — measured both over the lockstep wire
  (one request in flight per connection) and the pipelined wire
  (tagged frames + speculative stitch), each with its round trips
  per lookup.  On a single-core runner the socket hop is pure
  overhead; the ratio is the price paid for sharding the CPU, and on
  multicore hosts the per-shard daemons buy it back.
* **multi-worker serving**: lookup throughput against the same
  snapshot at 1, 2, and 4 ``SO_REUSEPORT`` workers (one process per
  worker, the kernel balancing connections), plus the cold-open cost
  of the mmap reader vs the read-everything reader — together the
  case for ``serve --workers N`` on a multicore host.
* **compiled dispatch**: the suffix-automaton matcher vs the
  per-suffix dict walk, at 10k/100k/1M synthetic domain entries —
  raw suffix lookups and ``FederationView`` ownership dispatch,
  plus what the automaton costs to build/serialize/load/inflate and
  how its per-lookup cost scales with the entry count (the O(labels)
  claim).

The maps are deterministic rings-with-chords (explicit numeric costs,
no symbol table) so a one-link revision is easy to synthesize and its
affected-source set is a stable fraction of the whole; the federated
regions are rings chained through shared gateway hosts.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py \
        --hosts 200 --clients 8 --requests 500 --regions 4
    PYTHONPATH=src python benchmarks/bench_service.py \
        --only fanout --out fanout.json --min-fanout-ratio 0.9
    PYTHONPATH=src python benchmarks/bench_service.py \
        --only workers --out workers.json
    PYTHONPATH=src python benchmarks/bench_service.py \
        --only dispatch --min-dispatch-speedup 3.0
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.pathalias import Pathalias  # noqa: E402
from repro.service.daemon import RouteService, serve  # noqa: E402
from repro.service.incremental import update_snapshot  # noqa: E402
from repro.service.store import (  # noqa: E402
    SnapshotReader,
    build_snapshot,
)


def ring_map(hosts: int, changed_cost: int | None = None) -> str:
    """A ring with +7 chords; optionally reprice one ring link."""
    lines = []
    for i in range(hosts):
        right = (i + 1) % hosts
        left = (i - 1) % hosts
        chord = (i + 7) % hosts
        cost = 100
        if changed_cost is not None and i == 10:
            cost = changed_cost
        lines.append(f"h{i:03d}\th{right:03d}({cost}), "
                     f"h{left:03d}(100), h{chord:03d}(300)")
    return "\n".join(lines) + "\n"


def build(text: str):
    return Pathalias().build([("d.ring", text)])


def bench_store(tmp: Path, hosts: int) -> dict:
    graph = build(ring_map(hosts))
    base = tmp / "base.snap"
    t0 = time.perf_counter()
    info = build_snapshot(graph, base)
    build_s = time.perf_counter() - t0

    revised = build(ring_map(hosts, changed_cost=140))
    t0 = time.perf_counter()
    report = update_snapshot(base, revised, tmp / "inc.snap")
    incremental_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    build_snapshot(revised, tmp / "full.snap",
                   heuristics=report.heuristics)
    full_s = time.perf_counter() - t0
    identical = (tmp / "inc.snap").read_bytes() == \
        (tmp / "full.snap").read_bytes()
    assert identical, "incremental update diverged from full rebuild!"
    assert report.mode == "incremental", report.reason
    return {
        "hosts": hosts,
        "sources": len(info.sources),
        "snapshot_bytes": info.size,
        "build_sec": round(build_s, 3),
        "incremental": {
            "mode": report.mode,
            "remapped_sources": len(report.remapped),
            "reused_sources": report.reused,
            "update_sec": round(incremental_s, 3),
            "full_rebuild_sec": round(full_s, 3),
            "speedup_vs_full": round(full_s / incremental_s, 2)
            if incremental_s > 0 else None,
            "byte_identical_to_full": identical,
        },
    }


def bench_daemon(tmp: Path, clients: int, requests: int,
                 reloads: int) -> dict:
    base, alt = str(tmp / "base.snap"), str(tmp / "inc.snap")

    async def scenario() -> dict:
        service = RouteService(base, cache_size=0)
        server = await serve(service)
        port = server.sockets[0].getsockname()[1]
        reader = SnapshotReader.open(base)
        destinations = [name for _, name, _ in
                        reader.table(reader.sources()[0]).records()]

        async def client(i: int) -> int:
            r, w = await asyncio.open_connection("127.0.0.1", port)
            count = 0
            for k in range(requests):
                dest = destinations[(i + k * 13) % len(destinations)]
                w.write(f"ROUTE {dest} u{k}\n".encode())
                await w.drain()
                reply = await r.readline()
                assert reply.startswith(b"OK "), reply
                count += 1
            w.write(b"QUIT\n")
            await w.drain()
            w.close()
            return count

        async def reloader() -> None:
            r, w = await asyncio.open_connection("127.0.0.1", port)
            for k in range(reloads):
                target = alt if k % 2 == 0 else base
                w.write(f"RELOAD {target}\n".encode())
                await w.drain()
                reply = await r.readline()
                assert reply.startswith(b"OK reloaded"), reply
                await asyncio.sleep(0.01)
            w.close()

        t0 = time.perf_counter()
        answered = await asyncio.gather(
            *(client(i) for i in range(clients)), reloader())
        elapsed = time.perf_counter() - t0
        server.close()
        await server.wait_closed()
        total = sum(a for a in answered if a is not None)
        return {
            "clients": clients,
            "requests": total,
            "reloads_mid_traffic": reloads,
            "seconds": round(elapsed, 3),
            "lookups_per_sec": round(total / elapsed, 1),
            "dropped": 0,  # every request asserted OK above
        }

    return asyncio.run(scenario())


def regional_map(region: int, hosts: int,
                 changed_cost: int | None = None) -> str:
    """Ring region ``r<region>``, chained to its neighbors through
    shared gateway hosts ``gw<region-1>`` / ``gw<region>``."""
    def host(i: int) -> str:
        return f"r{region}h{i:03d}"

    lines = []
    for i in range(hosts):
        cost = 100
        if changed_cost is not None and i == 3:
            cost = changed_cost
        lines.append(f"{host(i)}\t{host((i + 1) % hosts)}({cost}), "
                     f"{host((i - 1) % hosts)}(100), "
                     f"{host((i + 7) % hosts)}(300)")
    # The inbound gateway (shared with region-1) hangs off host 0,
    # the outbound gateway (shared with region+1) off the last host;
    # both hosts appear in this map AND the neighbor's, which is what
    # makes them federation gateways.
    lines.append(f"gw{region - 1}\t{host(0)}(50)")
    lines.append(f"{host(0)}\tgw{region - 1}(50)")
    lines.append(f"gw{region}\t{host(hosts - 1)}(50)")
    lines.append(f"{host(hosts - 1)}\tgw{region}(50)")
    return "\n".join(lines) + "\n"


def bench_federation(tmp: Path, regions: int, hosts: int,
                     clients: int, requests: int,
                     reloads: int) -> dict:
    """Federated throughput + the single-shard-reload advantage."""
    from repro.service.federation import FederationService
    from repro.service.incremental import update_snapshot
    from repro.service.shard import FederationView, Shard

    paths = {}
    graphs = {}
    t0 = time.perf_counter()
    for r in range(regions):
        name = f"region{r}"
        graphs[name] = build(regional_map(r, hosts))
        paths[name] = str(tmp / f"{name}.snap")
        build_snapshot(graphs[name], paths[name])
    all_build_s = time.perf_counter() - t0

    view = FederationView(
        [Shard.open(name, path) for name, path in paths.items()])
    gateway_pairs = sum(
        1 for i, a in enumerate(view.shard_names())
        for b in view.shard_names()[i + 1:] if view.gateways(a, b))

    # One region's monthly revision: incremental update + the bytes a
    # RELOAD would swap, vs rebuilding every region.
    revised = build(regional_map(1, hosts, changed_cost=140))
    t0 = time.perf_counter()
    report = update_snapshot(paths["region1"], revised,
                             tmp / "region1.rev.snap")
    single_shard_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for r in range(regions):
        name = f"region{r}"
        graph = revised if r == 1 else graphs[name]
        build_snapshot(graph, tmp / f"{name}.rebuild.snap",
                       heuristics=report.heuristics)
    all_rebuild_s = time.perf_counter() - t0

    # Cross-region traffic: sources in region 0, destinations spread
    # over every region (the far ones stitch through every shard).
    far_dests = [f"r{r}h{(7 * k) % hosts:03d}"
                 for k in range(requests)
                 for r in (k % regions,)]

    async def scenario() -> dict:
        service = FederationService(paths,
                                    default_source="r0h000",
                                    cache_size=0)
        server = await serve(service)
        port = server.sockets[0].getsockname()[1]

        async def client(i: int) -> int:
            r, w = await asyncio.open_connection("127.0.0.1", port)
            count = 0
            for k in range(requests):
                dest = far_dests[(i + k) % len(far_dests)]
                w.write(f"ROUTE {dest} u{k}\n".encode())
                await w.drain()
                reply = await r.readline()
                assert reply.startswith(b"OK "), reply
                count += 1
            w.write(b"QUIT\n")
            await w.drain()
            w.close()
            return count

        async def reloader() -> None:
            r, w = await asyncio.open_connection("127.0.0.1", port)
            alt = str(tmp / "region1.rev.snap")
            for k in range(reloads):
                target = alt if k % 2 == 0 else paths["region1"]
                w.write(f"RELOAD region1 {target}\n".encode())
                await w.drain()
                reply = await r.readline()
                assert reply.startswith(b"OK reloaded"), reply
                await asyncio.sleep(0.01)
            w.close()

        t0 = time.perf_counter()
        answered = await asyncio.gather(
            *(client(i) for i in range(clients)), reloader())
        elapsed = time.perf_counter() - t0
        stats = service.stats_line()
        server.close()
        await server.wait_closed()
        total = sum(a for a in answered if a is not None)
        federated = int(stats.split("federated=")[1].split()[0])
        return {
            "regions": regions,
            "hosts_per_region": hosts,
            "gateway_pairs": gateway_pairs,
            "clients": clients,
            "requests": total,
            "federated_answers": federated,
            "shard_reloads_mid_traffic": reloads,
            "seconds": round(elapsed, 3),
            "lookups_per_sec": round(total / elapsed, 1),
            "build_all_shards_sec": round(all_build_s, 3),
            "single_shard_refresh": {
                "update_sec": round(single_shard_s, 3),
                "all_shards_rebuild_sec": round(all_rebuild_s, 3),
                "speedup_vs_rebuild_all": round(
                    all_rebuild_s / single_shard_s, 2)
                if single_shard_s > 0 else None,
                "update_mode": report.mode,
            },
        }

    return asyncio.run(scenario())


def _spawn_shard_daemon(snapshot_path: str,
                        extra_args: tuple = ()):
    """One `pathalias serve` subprocess on an ephemeral port; returns
    ``(proc, "host:port")`` parsed from its startup line.

    Spawned daemons serve with ``--no-cache`` so the bench legs keep
    measuring the raw dispatch path; the cache has its own leg.
    """
    import os
    import subprocess

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", snapshot_path,
         "--port", "0", "--no-cache", *extra_args],
        stderr=subprocess.PIPE, text=True, env=env)
    # scan for the listening line (warnings may precede it); EOF
    # means the child died and is the only startup failure
    chatter = []
    while True:
        line = proc.stderr.readline()
        if not line:
            proc.terminate()
            raise RuntimeError(
                "shard daemon failed to start: "
                + (" / ".join(c.strip() for c in chatter)
                   or "no output"))
        if "listening on" in line:
            return proc, line.rsplit("listening on", 1)[1].strip()
        chatter.append(line)


def bench_fanout(tmp: Path, regions: int, hosts: int,
                 clients: int, requests: int) -> dict:
    """Stitched-lookup throughput: in-process front end vs socket
    fan-out to per-shard daemon processes, same workload.

    The fan-out pass runs twice — once forced lockstep (one request
    in flight per backend connection, the pre-pipelining wire) and
    once pipelined (tagged frames, speculative stitch) — and each
    pass records *round trips per lookup* (total backend requests /
    lookups answered), so the mechanism of any speedup — fewer
    awaited socket hops — is in the numbers, not just the rate.
    """
    import subprocess

    from repro.service.federation import FederationService

    paths = {}
    for r in range(regions):
        name = f"region{r}"
        paths[name] = str(tmp / f"fan-{name}.snap")
        build_snapshot(build(regional_map(r, hosts)), paths[name])

    far_dests = [f"r{r}h{(7 * k) % hosts:03d}"
                 for k in range(requests)
                 for r in (k % regions,)]

    async def hammer(service) -> tuple[int, float]:
        """The shared workload: `clients` connections, `requests`
        cross-region ROUTEs each, against an already-built service."""
        server = await serve(service)
        port = server.sockets[0].getsockname()[1]

        async def client(i: int) -> int:
            r, w = await asyncio.open_connection("127.0.0.1", port)
            count = 0
            for k in range(requests):
                dest = far_dests[(i + k) % len(far_dests)]
                w.write(f"ROUTE {dest} u{k}\n".encode())
                await w.drain()
                reply = await r.readline()
                assert reply.startswith(b"OK "), reply
                count += 1
            w.write(b"QUIT\n")
            await w.drain()
            w.close()
            return count

        t0 = time.perf_counter()
        answered = await asyncio.gather(
            *(client(i) for i in range(clients)))
        elapsed = time.perf_counter() - t0
        server.close()
        await server.wait_closed()
        return sum(answered), elapsed

    async def run_inprocess():
        return await hammer(
            FederationService(paths, default_source="r0h000",
                              cache_size=0))

    in_total, in_seconds = asyncio.run(run_inprocess())
    in_rate = in_total / in_seconds if in_seconds > 0 else 0.0

    procs = []
    try:
        backends = {}
        for name, snap in paths.items():
            proc, addr = _spawn_shard_daemon(snap)
            procs.append(proc)
            backends[name] = addr

        async def run_fanout(pipeline: bool):
            service = await FederationService.create(
                backends=backends, default_source="r0h000",
                pipeline=pipeline, cache_size=0)
            total, elapsed = await hammer(service)
            shards = service.view.shards.values()
            roundtrips = sum(s.backend.requests for s in shards)
            health = [s.backend.health() for s in shards]
            rate = total / elapsed if elapsed > 0 else 0.0
            return total, {
                "lookups_per_sec": round(rate, 1),
                "vs_inprocess": round(rate / in_rate, 3)
                if in_rate > 0 else None,
                "roundtrips_per_lookup": round(roundtrips / total, 2)
                if total else None,
                "backend_health": health,
            }

        # lockstep first so the pipelined pass (the headline number)
        # runs against warmed daemon processes, not cold ones
        lock_total, lockstep = asyncio.run(run_fanout(False))
        fan_total, pipelined = asyncio.run(run_fanout(True))
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()

    return {
        "regions": regions,
        "hosts_per_region": hosts,
        "clients": clients,
        "requests": in_total,
        "backend_daemons": len(procs),
        "inprocess_lookups_per_sec": round(in_rate, 1),
        "lockstep": lockstep,
        "pipelined": pipelined,
        # the headline pair tracked across PRs: the pipelined wire
        "fanout_lookups_per_sec": pipelined["lookups_per_sec"],
        "fanout_vs_inprocess": pipelined["vs_inprocess"],
        "all_answered": fan_total == in_total == lock_total,
    }


def bench_workers(tmp: Path, hosts: int, clients: int,
                  requests: int) -> dict:
    """Multicore serving: the same snapshot behind 1, 2, and 4
    ``SO_REUSEPORT`` worker processes, plus the cold-open cost of the
    mmap reader vs the read-everything reader.

    The client side is plain blocking sockets on threads — mostly
    parked in recv, so the GIL does not serialize the *daemon* side,
    which is where the worker processes earn their scaling.  On a
    platform without ``SO_REUSEPORT`` only the single-worker tier
    runs.
    """
    import socket as socketlib
    import threading

    snap = str(tmp / "workers.snap")
    build_snapshot(build(ring_map(hosts)), snap)

    def best_open_ms(use_mmap: bool, rounds: int = 30) -> float:
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            SnapshotReader.open(snap, use_mmap=use_mmap).close()
            best = min(best, time.perf_counter() - t0)
        return round(best * 1000, 3)

    mmap_ms = best_open_ms(True)
    read_ms = best_open_ms(False)

    reader = SnapshotReader.open(snap)
    destinations = [name for _, name, _ in
                    reader.table(reader.sources()[0]).records()]
    reader.close()

    def hammer(addr, idx: int, counts: dict) -> None:
        with socketlib.create_connection(addr) as conn:
            stream = conn.makefile("rwb")
            done = 0
            for k in range(requests):
                dest = destinations[(idx + k * 13) % len(destinations)]
                stream.write(f"ROUTE {dest} u{k}\n".encode())
                stream.flush()
                reply = stream.readline()
                assert reply.startswith(b"OK "), reply
                done += 1
            stream.write(b"QUIT\n")
            stream.flush()
        counts[idx] = done

    tiers = [1]
    if hasattr(socketlib, "SO_REUSEPORT"):
        tiers += [2, 4]
    throughput = {}
    for workers in tiers:
        extra = ("--workers", str(workers)) if workers > 1 else ()
        proc, addr_str = _spawn_shard_daemon(snap, extra)
        host, _, port = addr_str.rpartition(":")
        addr = (host, int(port))
        try:
            counts: dict = {}
            threads = [threading.Thread(target=hammer,
                                        args=(addr, i, counts))
                       for i in range(clients)]
            t0 = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - t0
            total = sum(counts.values())
            throughput[str(workers)] = {
                "requests": total,
                "seconds": round(elapsed, 3),
                "lookups_per_sec": round(total / elapsed, 1)
                if elapsed > 0 else None,
            }
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    base = throughput["1"]["lookups_per_sec"] or 0.0
    for tier in throughput.values():
        rate = tier["lookups_per_sec"] or 0.0
        tier["vs_one_worker"] = round(rate / base, 2) if base else None
    return {
        "hosts": hosts,
        "clients": clients,
        "requests_per_client": requests,
        "reuseport_available": hasattr(socketlib, "SO_REUSEPORT"),
        "cold_open": {
            "snapshot_bytes": Path(snap).stat().st_size,
            "mmap_ms": mmap_ms,
            "read_ms": read_ms,
            "read_vs_mmap": round(read_ms / mmap_ms, 2)
            if mmap_ms > 0 else None,
        },
        "throughput": throughput,
    }


def bench_format_v2(tmp: Path, hosts: int) -> dict:
    """Format v2's costs (bytes) and wins (incremental coverage)."""
    import pickle

    from repro.config import HeuristicConfig
    from repro.core.pathalias import Pathalias as PathaliasTool
    from repro.graph.compact import CompactGraph, K_NORMAL
    from repro.service.incremental import _link_owner

    graph = build(ring_map(hosts))
    v1, v2 = tmp / "fmt1.snap", tmp / "fmt2.snap"
    v1_bytes = build_snapshot(graph, v1, fmt=1).size
    v2_bytes = build_snapshot(graph, v2).size

    def candidates(cg):
        """NORMAL links touching nets/domains/private nodes — the
        revisions v1 had to remap fully — else any NORMAL link."""
        touching = [j for j in range(cg.link_count)
                    if cg.kind[j] == K_NORMAL and cg.cost[j] > 8
                    and (cg.netlike[_link_owner(cg, j)]
                         or cg.private[_link_owner(cg, j)]
                         or cg.netlike[cg.to[j]]
                         or cg.private[cg.to[j]])]
        if touching:
            return touching[:3]
        return [j for j in range(cg.link_count)
                if cg.kind[j] == K_NORMAL and cg.cost[j] > 8][:3]

    fixtures = sorted(
        (Path(__file__).resolve().parent.parent / "tests" / "data"
         ).glob("d.*"))
    revisions = 0
    fallbacks = {1: 0, 2: 0}
    for path in fixtures:
        for second in (False, True):
            cfg = HeuristicConfig(second_best=second)
            fixture_graph = PathaliasTool(heuristics=cfg).build(
                [(path.name, path.read_text())])
            cg = CompactGraph.compile(fixture_graph)
            snaps = {}
            for fmt in (1, 2):
                snaps[fmt] = tmp / f"cover-{path.name}-{second}-{fmt}"
                build_snapshot(cg, snaps[fmt], heuristics=cfg,
                               fmt=fmt)
            for j in candidates(cg):
                for delta in (7, -7):
                    revised = pickle.loads(pickle.dumps(cg))
                    revised.cost[j] += delta
                    revisions += 1
                    for fmt in (1, 2):
                        report = update_snapshot(
                            snaps[fmt], revised, tmp / "cover-out",
                            full_threshold=1.0)
                        if report.mode == "full":
                            fallbacks[fmt] += 1
    return {
        "hosts": hosts,
        "snapshot_bytes_v1": v1_bytes,
        "snapshot_bytes_v2": v2_bytes,
        "state_record_overhead_pct": round(
            100.0 * (v2_bytes - v1_bytes) / v1_bytes, 1),
        "fixture_coverage": {
            "fixtures": [p.name for p in fixtures],
            "revisions": revisions,
            "full_fallbacks_v1": fallbacks[1],
            "full_fallbacks_v2": fallbacks[2],
        },
    }


class _IndexShard:
    """A synthetic federation shard: a name and an ownership index —
    the only surface :class:`FederationView`'s owner dispatch consumes.
    Lets the dispatch bench scale to 10^6 entries without building
    10^6-record snapshots."""

    remote = False

    def __init__(self, name: str, index: list):
        self.name = name
        self._index = index
        self.source_set = frozenset(
            n for n, is_domain in index if not is_domain)

    def routing_index(self) -> list:
        return list(self._index)


def _dispatch_keys(entries: int) -> list:
    """A synthetic internet-scale name inventory: one leading-dot
    domain key per ~50 hosts, hosts spread under them — sorted the way
    every compile site sorts (UTF-8 bytes)."""
    tlds = ("edu", "com", "org", "net")
    doms = max(1, entries // 50)
    keys = {f".dept{d}.univ{d % 97}.{tlds[d % 4]}"
            for d in range(doms)}
    i = 0
    while len(keys) < entries:
        d = i % doms
        keys.add(f"host{i}.dept{d}.univ{d % 97}.{tlds[d % 4]}")
        i += 1
    return sorted(keys, key=lambda k: k.encode("utf-8"))


def _dispatch_probes(keys: list, count: int) -> list:
    """The churn-motivated probe mix: exact hosts, deep ephemeral
    aliases under known domains (the walk must probe every suffix;
    the automaton stops at the first unknown label), and misses.

    Host draws are power-law skewed the way mail traffic actually
    concentrates — a few popular domains take most of the lookups
    while the long tail still gets probed — so per-lookup timings
    reflect routing traffic, not a uniform sweep of the keyspace.
    """
    import random as _random

    rng = _random.Random(7)
    hosts = [k for k in keys if not k.startswith(".")]
    nhosts = len(hosts)
    out = []
    for _ in range(count):
        r = rng.random()
        host = hosts[int(nhosts * rng.random() ** 3)]
        if r < 0.2:
            out.append(host)
        elif r < 0.85:
            depth = rng.randint(4, 16)
            alias = ".".join(f"alias{rng.randrange(1000)}"
                             for _ in range(depth))
            out.append(alias + host[host.index("."):])
        else:
            out.append(".".join(
                f"x{j}" for j in range(rng.randint(4, 16)))
                + ".nowhere.xyz")
    return out


def bench_dispatch(sizes: list, probes: int) -> dict:
    """Compiled suffix-automaton dispatch vs the per-suffix dict walk.

    Two legs per entry count: the raw suffix-lookup primitive
    (automaton ``match`` vs the :func:`domain_suffixes` probe walk
    over a dict) and the real ownership surface
    (``FederationView.owners_of`` in fsm vs dict mode, over synthetic
    shards).  Also records what the automaton costs to build,
    serialize, load, and inflate — the price paid once per
    snapshot/update — and the per-lookup scaling across sizes (the
    O(labels) claim: cost must not grow with the entry count).
    """
    from repro.service.fsm import compile_keys, load
    from repro.service.resolver import domain_suffixes
    from repro.service.shard import FederationView

    def best_of(fn, rounds: int = 3) -> float:
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    out: dict = {"probes": probes, "sizes": {}}
    fsm_ns: dict = {}
    for entries in sizes:
        keys = _dispatch_keys(entries)
        targets = _dispatch_probes(keys, probes)

        t0 = time.perf_counter()
        auto = compile_keys(keys)
        build_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        blob = auto.to_bytes()
        serialize_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        flat = load(blob)
        load_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        flat.inflate()
        inflate_s = time.perf_counter() - t0

        table = {k: i for i, k in enumerate(keys)}

        def walk_lookup(target, _get=table.get,
                        _suffixes=domain_suffixes):
            for key in _suffixes(target):
                hit = _get(key)
                if hit is not None:
                    return hit
            return -1

        match = auto.matcher()
        fsm_s = best_of(lambda: [match(t) for t in targets])
        dict_s = best_of(lambda: [walk_lookup(t) for t in targets])

        # the ownership surface: one view per mode over 3 synthetic
        # shards splitting the same index
        index = [(k, k.startswith(".")) for k in keys]

        def shards_of() -> list:
            return [_IndexShard(f"s{i}", index[i::3])
                    for i in range(3)]

        fsm_view = FederationView(shards_of())
        dict_view = FederationView(shards_of(), dispatch="dict")
        fsm_view.owners_of("warm.up")  # build the cached automaton
        fsm_owner = fsm_view.owners_of
        dict_owner = dict_view.owners_of
        own_fsm_s = best_of(lambda: [fsm_owner(t) for t in targets])
        own_dict_s = best_of(lambda: [dict_owner(t) for t in targets])

        # the O(labels) scaling leg: a small probe set repeated until
        # warm, so the number isolates the automaton's per-label walk
        # from how much of a uniform 20k-probe sweep happens to fit in
        # cache at each entry count (a DRAM-residency question, not an
        # algorithmic one — the throughput legs above keep the full
        # mixed workload)
        warm = _dispatch_probes(keys, 512)
        warm_s = best_of(lambda: [match(t) for t in warm], rounds=15)
        fsm_ns[entries] = warm_s / len(warm) * 1e9
        out["sizes"][str(entries)] = {
            "entries": entries,
            "automaton": {
                "states": auto.state_count,
                "edges": auto.edge_count,
                "blob_bytes": len(blob),
                "build_sec": round(build_s, 3),
                "serialize_sec": round(serialize_s, 3),
                "load_sec": round(load_s, 6),
                "inflate_sec": round(inflate_s, 3),
            },
            "suffix_lookup": {
                "fsm_per_sec": round(probes / fsm_s, 1),
                "dict_per_sec": round(probes / dict_s, 1),
                "speedup": round(dict_s / fsm_s, 2),
            },
            "ownership": {
                "fsm_per_sec": round(probes / own_fsm_s, 1),
                "dict_per_sec": round(probes / own_dict_s, 1),
                "speedup": round(own_dict_s / own_fsm_s, 2),
            },
        }
    lo, hi = min(fsm_ns), max(fsm_ns)
    out["scaling"] = {
        "fsm_ns_per_lookup": {str(n): round(v, 1)
                              for n, v in fsm_ns.items()},
        # the O(labels) claim: per-lookup cost at the largest entry
        # count over the smallest (acceptance bar: <= 1.5)
        "largest_vs_smallest": round(fsm_ns[hi] / fsm_ns[lo], 3)
        if fsm_ns[lo] > 0 else None,
    }
    return out


def bench_cache(tmp: Path, nodes: int, probes: int) -> dict:
    """The generation-stamped result cache: hot-pair speedup, hit
    ratio under power-law skew, and invalidation cost.

    One churn-shaped federation (the soak generator's topology, so
    destinations include cross-shard stitches and domain-suffix
    matches) serves the same traffic twice — uncached
    (``cache_size=0``, the differential-oracle configuration) and
    through the default bounded cache:

    * **hot pair** — one (source, dest) hammered through
      ``handle_line``; the cached-over-uncached speedup is the CI
      gate (``--min-cache-speedup``), reproducing the paper-era
      observation that query traffic concentrates while tables
      change rarely.
    * **skew** — ``probes`` power-law-skewed draws over the whole
      destination inventory (the shape mail traffic actually has):
      served hit ratio and per-lookup time with the default-sized
      cache, versus the same draws uncached.
    * **invalidation** — the O(1) generation bump timed over a cache
      filled to capacity (no key scanning: the time must not scale
      with the entry count), plus the first post-bump (refill)
      lookup.
    """
    import random as _random

    from repro.netsim.churn import ChurnParams, ChurnScenario
    from repro.service.federation import FederationService

    scenario = ChurnScenario(ChurnParams(nodes=nodes, events=1,
                                         seed=11))
    graphs = scenario.build_graphs()
    paths: dict[str, str] = {}
    t0 = time.perf_counter()
    for name in scenario.shard_names:
        paths[name] = str(tmp / f"cache-{name}.snap")
        build_snapshot(graphs[name], paths[name])
    build_s = time.perf_counter() - t0

    async def measure() -> dict:
        uncached = FederationService(dict(paths), cache_size=0)
        cached = FederationService(dict(paths))
        rng = _random.Random(5)
        src, dst = next(iter(scenario.sample_pairs(rng, 1)))

        async def hammer(svc, lines, warm: int = 10) -> float:
            state = svc.initial_state()
            await svc.handle_line(f"SOURCE {src}", state)
            for line in lines[:warm]:
                reply = await svc.handle_line(line, state)
                assert reply.startswith("OK"), reply
            t0 = time.perf_counter()
            for line in lines:
                await svc.handle_line(line, state)
            return time.perf_counter() - t0

        # -- hot pair ----------------------------------------------
        hot = [f"ROUTE {dst} u"] * probes
        unc_s = await hammer(uncached, hot)
        hit_s = await hammer(cached, hot)

        # -- power-law skew over the whole inventory ---------------
        dests = scenario.destinations
        draws = [f"ROUTE {dests[int(len(dests) * rng.random() ** 3)]}"
                 for _ in range(probes)]
        skew_unc_s = await hammer(uncached, draws, warm=0)
        cache = cached.cache
        h0, m0 = cache.hits, cache.misses
        skew_hit_s = await hammer(cached, draws, warm=0)
        dh, dm = cache.hits - h0, cache.misses - m0

        # -- invalidation ------------------------------------------
        # fill to capacity, then time the bump: an O(1) counter
        # increment, never a scan of the 4096 live entries
        state = cached.initial_state()
        await cached.handle_line(f"SOURCE {src}", state)
        for name in dests[:cache.size]:
            await cached.handle_line(f"ROUTE {name}", state)
        rounds = 1000
        t0 = time.perf_counter()
        for _ in range(rounds):
            cache.bump()
        bump_s = (time.perf_counter() - t0) / rounds
        t0 = time.perf_counter()
        await cached.handle_line(f"ROUTE {dst} u", state)
        refill_s = time.perf_counter() - t0

        return {
            "nodes": nodes,
            "shards": scenario.regions,
            "probes": probes,
            "cache_entries": cache.size,
            "build_gen0_sec": round(build_s, 3),
            "hot_pair": {
                "uncached_us": round(unc_s / probes * 1e6, 2),
                "cached_us": round(hit_s / probes * 1e6, 2),
                "uncached_per_sec": round(probes / unc_s, 1),
                "cached_per_sec": round(probes / hit_s, 1),
                "speedup": round(unc_s / hit_s, 2)
                if hit_s > 0 else None,
            },
            "skew": {
                "hit_ratio": round(dh / (dh + dm), 4)
                if dh + dm else None,
                "uncached_us": round(skew_unc_s / probes * 1e6, 2),
                "cached_us": round(skew_hit_s / probes * 1e6, 2),
                "speedup": round(skew_unc_s / skew_hit_s, 2)
                if skew_hit_s > 0 else None,
            },
            "invalidation": {
                "bump_us": round(bump_s * 1e6, 3),
                "refill_lookup_us": round(refill_s * 1e6, 2),
            },
        }

    return asyncio.run(measure())


def bench_churn(tmp: Path, nodes: int, events: int) -> dict:
    """Churn replay: revision events/s applied end to end, and lookup
    latency measured *during* the replay.

    The scenario is :class:`repro.netsim.churn.ChurnScenario` — the
    soak harness's generator — replayed through the real pipeline:
    apply → ``update_snapshot`` (``full_threshold=1.0``; a full
    fallback is counted and would fail the soak) → per-shard RELOAD
    into a live federation front end.  Between events, sampled
    SOURCE+ROUTE/EXACT probes time the service's answer path, so the
    p99 includes lookups that landed next to a snapshot swap.
    """
    import random as _random

    from repro.netsim.churn import ChurnParams, ChurnScenario
    from repro.service.federation import FederationService

    scenario = ChurnScenario(ChurnParams(nodes=nodes, events=events,
                                         seed=42))
    graphs = scenario.build_graphs()
    paths: dict[str, str] = {}
    t0 = time.perf_counter()
    for name in scenario.shard_names:
        paths[name] = str(tmp / f"churn-{name}.g0.snap")
        build_snapshot(graphs[name], paths[name])
    build_s = time.perf_counter() - t0

    async def replay():
        service = FederationService(dict(paths), cache_size=0)
        rng = _random.Random(99)
        latencies: list[float] = []
        fallbacks = 0
        reloads = 0
        t0 = time.perf_counter()
        for event in scenario.stream:
            for name in scenario.apply(event):
                new_path = str(
                    tmp / f"churn-{name}.g{event.gen + 1}.snap")
                report = update_snapshot(paths[name], graphs[name],
                                         new_path,
                                         full_threshold=1.0)
                if report.mode != "incremental":
                    fallbacks += 1
                await service.reload_shard(name, new_path)
                old = paths[name]
                paths[name] = new_path
                reloads += 1
                if not old.endswith(".g0.snap"):
                    Path(old).unlink()
            state = service.initial_state()
            for n, (src, dst) in enumerate(
                    scenario.sample_pairs(rng, 4)):
                verb = "ROUTE" if n % 2 else "EXACT"
                t = time.perf_counter()
                await service.handle_line(f"SOURCE {src}", state)
                reply = await service.handle_line(f"{verb} {dst}",
                                                  state)
                latencies.append(time.perf_counter() - t)
                assert reply.startswith("OK"), reply
        return (time.perf_counter() - t0, latencies, fallbacks,
                reloads)

    elapsed, latencies, fallbacks, reloads = asyncio.run(replay())
    latencies.sort()
    return {
        "nodes": nodes,
        "shards": scenario.regions,
        "events": events,
        "reloads": reloads,
        "full_fallbacks": fallbacks,
        "build_gen0_sec": round(build_s, 3),
        "replay_sec": round(elapsed, 3),
        "events_per_sec": round(events / elapsed, 2),
        "p50_lookup_ms": round(
            latencies[len(latencies) // 2] * 1000, 3),
        "p99_lookup_ms": round(
            latencies[int(len(latencies) * 0.99)] * 1000, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the route service tier")
    parser.add_argument("--hosts", type=int, default=120)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=400,
                        help="lookups per client")
    parser.add_argument("--reloads", type=int, default=20)
    parser.add_argument("--regions", type=int, default=3,
                        help="federation shards (chained rings)")
    parser.add_argument("--region-hosts", type=int, default=40,
                        help="hosts per federated region")
    parser.add_argument("--out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_routing.json"))
    parser.add_argument("--only", choices=("fanout", "workers",
                                           "churn", "dispatch",
                                           "cache"),
                        default=None,
                        help="run a single section (the CI cluster "
                             "job measures just the fan-out tier; "
                             "the multicore leg just the workers; "
                             "the soak job just the churn replay; "
                             "the dispatch leg just the compiled "
                             "suffix automaton vs the dict walk; "
                             "the cache leg just the generation-"
                             "stamped result cache)")
    parser.add_argument("--dispatch-entries",
                        default="10000,100000,1000000",
                        metavar="N,N,...",
                        help="entry counts for the dispatch section "
                             "(default 10000,100000,1000000)")
    parser.add_argument("--dispatch-probes", type=int, default=20000,
                        help="lookups per dispatch measurement")
    parser.add_argument("--min-dispatch-speedup", type=float,
                        default=None, metavar="X",
                        help="exit nonzero unless fsm ownership "
                             "dispatch beats the dict walk by X at "
                             "100000 entries (the CI dispatch gate)")
    parser.add_argument("--churn-nodes", type=int, default=20000,
                        help="churn scenario size (nodes)")
    parser.add_argument("--churn-events", type=int, default=100,
                        help="churn revision events to replay")
    parser.add_argument("--cache-nodes", type=int, default=20000,
                        help="cache-section scenario size (nodes; "
                             "the CI gate runs 100000)")
    parser.add_argument("--cache-probes", type=int, default=20000,
                        help="lookups per cache measurement")
    parser.add_argument("--min-cache-speedup", type=float,
                        default=None, metavar="X",
                        help="exit nonzero unless the cached hot-pair "
                             "lookup beats the uncached daemon path "
                             "by X (the CI cache gate)")
    parser.add_argument("--min-fanout-ratio", type=float, default=None,
                        metavar="X",
                        help="exit nonzero unless pipelined fan-out "
                             "throughput reaches X times the "
                             "in-process front end (the CI cluster "
                             "job's throughput gate)")
    args = parser.parse_args(argv)

    import tempfile

    section: dict = {}
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        if args.only is None:
            print("benchmarking snapshot store + incremental "
                  "update...", file=sys.stderr)
            section["store"] = bench_store(tmp, args.hosts)
            print("benchmarking daemon throughput under reload...",
                  file=sys.stderr)
            section["daemon"] = bench_daemon(
                tmp, args.clients, args.requests, args.reloads)
            print("benchmarking federated throughput + single-shard "
                  "reload...", file=sys.stderr)
            section["federation"] = bench_federation(
                tmp, args.regions, args.region_hosts, args.clients,
                args.requests, args.reloads)
        if args.only in (None, "fanout"):
            print("benchmarking fan-out (per-shard daemon processes) "
                  "vs in-process front end...", file=sys.stderr)
            section["fanout"] = bench_fanout(
                tmp, args.regions, args.region_hosts, args.clients,
                args.requests)
        if args.only in (None, "workers"):
            print("benchmarking multi-worker serving + cold-open "
                  "mmap vs read...", file=sys.stderr)
            section["workers"] = bench_workers(
                tmp, args.hosts, args.clients, args.requests)
        if args.only is None:
            print("benchmarking format v2 overhead + incremental "
                  "coverage...", file=sys.stderr)
            section["format_v2"] = bench_format_v2(tmp, args.hosts)
        if args.only in (None, "churn"):
            print("benchmarking churn replay (revision stream -> "
                  "incremental update -> RELOAD)...", file=sys.stderr)
            section["churn"] = bench_churn(
                tmp, args.churn_nodes, args.churn_events)
        if args.only in (None, "dispatch"):
            print("benchmarking compiled suffix-automaton dispatch "
                  "vs dict walk...", file=sys.stderr)
            sizes = [int(s) for s in
                     args.dispatch_entries.split(",") if s]
            section["dispatch"] = bench_dispatch(
                sizes, args.dispatch_probes)
        if args.only in (None, "cache"):
            print("benchmarking generation-stamped result cache vs "
                  "uncached lookups...", file=sys.stderr)
            section["cache"] = bench_cache(
                tmp, args.cache_nodes, args.cache_probes)

    out = Path(args.out)
    document = json.loads(out.read_text()) if out.exists() else {
        "benchmark": "BENCH_routing"}
    document.setdefault("service", {}).update(section)
    out.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote service section -> {out}", file=sys.stderr)
    print(json.dumps(section, indent=2))
    if args.min_fanout_ratio is not None and "fanout" in section:
        ratio = section["fanout"]["fanout_vs_inprocess"]
        if ratio is None or ratio < args.min_fanout_ratio:
            print(f"FAIL: pipelined fan-out at {ratio}x in-process "
                  f"is below the {args.min_fanout_ratio}x floor",
                  file=sys.stderr)
            return 1
    if args.min_cache_speedup is not None and "cache" in section:
        speedup = section["cache"]["hot_pair"]["speedup"]
        if speedup is None or speedup < args.min_cache_speedup:
            print(f"FAIL: cached hot-pair lookup at {speedup}x the "
                  f"uncached daemon path is below the "
                  f"{args.min_cache_speedup}x floor",
                  file=sys.stderr)
            return 1
    if args.min_dispatch_speedup is not None and \
            "dispatch" in section:
        sizes = section["dispatch"]["sizes"]
        gate_at = "100000" if "100000" in sizes else max(
            sizes, key=int)
        speedup = sizes[gate_at]["ownership"]["speedup"]
        if speedup < args.min_dispatch_speedup:
            print(f"FAIL: fsm ownership dispatch at {speedup}x dict "
                  f"({gate_at} entries) is below the "
                  f"{args.min_dispatch_speedup}x floor",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
