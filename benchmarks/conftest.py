"""Shared fixtures for the benchmark harness.

Each bench module reproduces one experiment from DESIGN.md's index
(E1..E12) and asserts the *shape* of the paper's claim — who wins, by
roughly what factor — not absolute 1986 VAX numbers.  Measured values
are attached to ``benchmark.extra_info`` so ``--benchmark-json`` runs
preserve them, and printed for human eyes.
"""

from __future__ import annotations

import pytest

from repro.netsim.mapgen import MapParams, generate_map

from tests.conftest import PAPER_1981_MAP  # noqa: F401  (re-exported)


@pytest.fixture(scope="session")
def small_generated():
    return generate_map(MapParams.small(seed=1986))


@pytest.fixture(scope="session")
def medium_generated():
    return generate_map(MapParams.medium(seed=1986))


@pytest.fixture(scope="session")
def usenet_generated():
    """The published 1986 scale (~8.5k nodes, ~28k links)."""
    return generate_map(MapParams.usenet_1986(seed=1986))


def report(title: str, rows: list[tuple]) -> None:
    """Print a small aligned table; visible with ``pytest -s``."""
    print(f"\n== {title} ==")
    widths = [max(len(str(row[col])) for row in rows)
              for col in range(len(rows[0]))]
    for row in rows:
        print("  " + "  ".join(str(cell).ljust(width)
                               for cell, width in zip(row, widths)))
