#!/usr/bin/env python
"""Record the routing-performance trajectory in BENCH_routing.json.

Standalone (no pytest): generates the published-scale 1986 map, then
measures

* full-map time — reference ``Mapper`` vs compiled ``CompactMapper``,
  mapping only and mapping + route-table construction;
* batch throughput — route tables per second over a source sample,
  serial and with a process pool at each requested worker count.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py \
        --scale medium --jobs 1,2,4,8 --batch-sources 64 --out my.json

The JSON lands at the repo root by default so successive PRs can track
the numbers.  Results include the visible CPU count: parallel scaling
is only meaningful where the hardware can actually run workers
side by side.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.batch import BatchMapper, default_jobs  # noqa: E402
from repro.core.fastmap import (  # noqa: E402
    CompactMapper,
    compact_route_table,
)
from repro.core.mapper import Mapper  # noqa: E402
from repro.core.printer import print_routes  # noqa: E402
from repro.graph.build import build_graph  # noqa: E402
from repro.graph.compact import CompactGraph  # noqa: E402
from repro.netsim.mapgen import MapParams, generate_map  # noqa: E402
from repro.parser.grammar import parse_text  # noqa: E402

SCALES = {
    "small": MapParams.small,
    "medium": MapParams.medium,
    "usenet_1986": MapParams.usenet_1986,
}


def best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_fullmap(graph, cgraph, localhost: str, rounds: int) -> dict:
    fast_mapper = CompactMapper(cgraph)

    def reference_run():
        result = Mapper(graph).run(localhost)
        for owner, link in result.inferred:
            owner.links.remove(link)
        return result

    def reference_table():
        result = Mapper(graph).run(localhost)
        table = print_routes(result)
        for owner, link in result.inferred:
            owner.links.remove(link)
        return table

    t_ref = best_of(reference_run, rounds)
    t_fast = best_of(lambda: fast_mapper.run(localhost), rounds)
    t_ref_table = best_of(reference_table, rounds)
    t_fast_table = best_of(
        lambda: compact_route_table(fast_mapper.run(localhost)), rounds)

    # Equivalence check rides along: the numbers only count if the
    # output is byte-identical.
    assert compact_route_table(
        fast_mapper.run(localhost)).format_tab() == \
        reference_table().format_tab(), "engines disagree!"

    return {
        "source": localhost,
        "reference_map_ms": round(t_ref * 1e3, 2),
        "compact_map_ms": round(t_fast * 1e3, 2),
        "map_speedup": round(t_ref / t_fast, 2),
        "reference_map_and_table_ms": round(t_ref_table * 1e3, 2),
        "compact_map_and_table_ms": round(t_fast_table * 1e3, 2),
        "map_and_table_speedup": round(t_ref_table / t_fast_table, 2),
    }


def bench_batch(graph, n_sources: int, jobs_list: list[int],
                rounds: int) -> dict:
    sources = BatchMapper(graph).sources()[:n_sources]
    out: dict = {"sources": len(sources), "runs": []}
    serial_seconds = None
    reference_text = None
    for jobs in jobs_list:
        mapper = BatchMapper(graph, jobs=jobs)
        mapper.compiled  # compile outside the timed region
        seconds = best_of(lambda: mapper.run(sources), rounds)
        batch = mapper.run(sources)
        text = {s: batch[s].format_tab() for s in batch}
        if reference_text is None:
            reference_text = text
        else:
            assert text == reference_text, f"jobs={jobs} changed output!"
        if jobs <= 1:
            serial_seconds = seconds
        out["runs"].append({
            "jobs": jobs,
            "engine": batch.engine,
            "seconds": round(seconds, 3),
            "tables_per_sec": round(len(sources) / seconds, 2),
            "speedup_vs_serial": (round(serial_seconds / seconds, 2)
                                  if serial_seconds else None),
        })
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="measure routing-engine performance and write "
                    "BENCH_routing.json")
    parser.add_argument("--scale", choices=sorted(SCALES),
                        default="usenet_1986")
    parser.add_argument("--seed", type=int, default=1986)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--batch-sources", type=int, default=32)
    parser.add_argument("--jobs", default="1,4",
                        help="comma-separated worker counts to measure "
                             "(default: 1,4)")
    parser.add_argument("--out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_routing.json"))
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="X",
                        help="exit nonzero unless the compact engine "
                             "maps at least X times faster than the "
                             "reference Mapper (the CI regression "
                             "gate)")
    args = parser.parse_args(argv)

    jobs_list = [int(j) for j in args.jobs.split(",")]
    print(f"generating {args.scale} map (seed {args.seed})...",
          file=sys.stderr)
    generated = generate_map(SCALES[args.scale](seed=args.seed))
    graph = build_graph([(n, parse_text(t, n))
                         for n, t in generated.files])

    t0 = time.perf_counter()
    cgraph = CompactGraph.compile(graph)
    compile_ms = (time.perf_counter() - t0) * 1e3

    print("benchmarking full-map engines...", file=sys.stderr)
    fullmap = bench_fullmap(graph, cgraph, generated.localhost,
                            args.rounds)
    print("benchmarking batch throughput...", file=sys.stderr)
    batch = bench_batch(graph, args.batch_sources, jobs_list,
                        max(1, args.rounds - 1))

    document = {
        "benchmark": "BENCH_routing",
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "visible_cpus": default_jobs(),
        },
        "map": {
            "scale": args.scale,
            "seed": args.seed,
            "nodes": len(graph.nodes),
            "links": graph.link_count,
            "compile_ms": round(compile_ms, 2),
        },
        "fullmap": fullmap,
        "batch": batch,
    }
    Path(args.out).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)
    print(json.dumps(document, indent=2))
    if args.min_speedup is not None \
            and fullmap["map_speedup"] < args.min_speedup:
        print(f"FAIL: compact engine speedup "
              f"{fullmap['map_speedup']}x is below the "
              f"{args.min_speedup}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
