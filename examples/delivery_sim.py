#!/usr/bin/env python3
"""Does the mail actually get through?  A store-and-forward simulation.

Pathalias's philosophy is "get the mail through, reliably and
efficiently".  This example builds a small internetwork, computes routes
with and without the mixed-syntax penalty, and then *simulates* message
forwarding where every relay applies its own parsing convention
(bang-rigid UUCP, rigid RFC822, or the Honeyman-Parseghian heuristic).
The penalized routes survive; the unpenalized mixed routes die at rigid
relays — the measured version of the paper's ambiguity argument.

Run:  python examples/delivery_sim.py
"""

from repro import HeuristicConfig, Pathalias
from repro.graph.build import build_graph
from repro.mailer.address import MailerStyle
from repro.mailer.delivery import Network
from repro.parser.grammar import parse_text

MAP = """\
# an ARPANET shortcut (user@arpagw) competing with a slow UUCP chain
src\t@arpagw(DEDICATED), uucp1(DAILY)
arpagw\tmidsite(DEDICATED)
uucp1\tmidsite(DAILY)
midsite\tdest(LOCAL)
dest\tmidsite(LOCAL)
"""


def deliver_and_report(net: Network, origin: str, route: str,
                       label: str) -> None:
    report = net.deliver_route(origin, route, user="honey")
    if report.delivered:
        outcome = (f"delivered to {report.user!r} at "
                   f"{report.final_host} via {' -> '.join(report.hops)}"
                   if report.hops else
                   f"delivered locally at {report.final_host}")
    else:
        outcome = f"FAILED: {report.failure}"
    print(f" * [{label}] {route!r}\n     {outcome}")


def main() -> None:
    graph = build_graph([("map", parse_text(MAP))])
    bang_world = Network(graph, default_style=MailerStyle.BANG_RIGID)

    print("routes computed WITH the mixed-syntax penalty (default):")
    safe = Pathalias().run_text(MAP, localhost="src")
    deliver_and_report(bang_world, "src", safe.route("dest"), "dest")

    print("\nroutes computed WITHOUT the penalty (ablated):")
    risky = Pathalias(
        heuristics=HeuristicConfig(mixed_penalty=0)
    ).run_text(MAP, localhost="src")
    deliver_and_report(bang_world, "src", risky.route("dest"), "dest")

    print("\nthe same risky route works only if the *origin* parses "
          "@-first (an ARPANET-style src):")
    arpanet_origin = Network(
        graph, styles={"src": MailerStyle.RFC822_RIGID},
        default_style=MailerStyle.BANG_RIGID)
    deliver_and_report(arpanet_origin, "src", risky.route("dest"),
                       "dest")

    print("\ncost of safety: the penalized route is longer but pure:")
    print(f" * with penalty:    cost {safe.lookup('dest').cost:>6} "
          f"route {safe.route('dest')}")
    print(f" * without penalty: cost {risky.lookup('dest').cost:>6} "
          f"route {risky.route('dest')}")

    print("\nper-style parsing of one ambiguous address "
          "('a!user@b' at a relay):")
    from repro.mailer.address import next_hop

    for style in MailerStyle:
        hop, rest = next_hop("a!user@b", style)
        print(f" * {style.value:10s} -> next hop {hop!r}, "
              f"remainder {rest!r}")


if __name__ == "__main__":
    main()
