#!/usr/bin/env python3
"""Federated routing: three regional maps, one front end.

Builds one snapshot shard per regional map (the backbone, the
east-coast universities, and the ARPA world from ``tests/data``),
serves them behind a single federation daemon, and routes
cross-region addresses end to end — then hot-reloads just the
universities shard with a revised map and shows the stitched route
change while the other regions keep serving untouched.

Run:  PYTHONPATH=src python examples/federated_routing.py
"""

from __future__ import annotations

import asyncio
import sys
import tempfile
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.pathalias import Pathalias  # noqa: E402
from repro.service.daemon import serve  # noqa: E402
from repro.service.federation import (  # noqa: E402
    FederatedRouteDatabase,
    FederationService,
)
from repro.service.incremental import update_snapshot  # noqa: E402
from repro.service.store import build_snapshot  # noqa: E402

DATA = Path(__file__).resolve().parent.parent / "tests" / "data"
REGIONS = ("backbone", "universities", "arpa")


def build_shards(tmp: Path) -> dict:
    """One snapshot per regional map file."""
    paths = {}
    for name in REGIONS:
        text = (DATA / f"d.{name}").read_text()
        path = tmp / f"{name}.snap"
        info = build_snapshot(
            Pathalias().build([(f"d.{name}", text)]), path)
        print(f"  shard {name:13s} {len(info.sources):3d} sources  "
              f"{info.size:6d} bytes  <- d.{name}")
        paths[name] = str(path)
    return paths


def revised_universities(tmp: Path) -> Path:
    """The monthly revision: the princeton<->rutgers LOCAL link is
    repriced to DEMAND.  Rebuilt incrementally from the old shard."""
    text = (DATA / "d.universities").read_text().replace(
        "rutgers-ru(LOCAL)", "rutgers-ru(DEMAND)")
    out = tmp / "universities2.snap"
    report = update_snapshot(
        tmp / "universities.snap",
        Pathalias().build([("d.universities", text)]), out)
    print(f"  incremental update: {report.summary()}")
    return out


class DaemonThread:
    """The federation daemon on a background thread, so the example's
    synchronous client reads naturally (mirrors how a delivery agent
    talks to a long-running daemon)."""

    def __init__(self, service: FederationService):
        self.service = service
        self.port = None
        self._ready = threading.Event()
        self._stop = None
        self._loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def amain():
            server = await serve(self.service)
            self.port = server.sockets[0].getsockname()[1]
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            server.close()
            await server.wait_closed()

        asyncio.run(amain())

    def __enter__(self):
        self._thread.start()
        self._ready.wait(10)
        return self

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(10)


def main() -> int:
    """Run the whole federated story over a real socket."""
    tmp = Path(tempfile.mkdtemp(prefix="pathalias-fed-"))
    print("building one snapshot shard per regional map:")
    paths = build_shards(tmp)

    service = FederationService(paths, default_source="ihnp4")
    view = service.view
    print("\ngateways (hosts with a table in both shards):")
    names = view.shard_names()
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            gates = view.gateways(a, b)
            print(f"  {a:12s} <-> {b:12s} "
                  f"{', '.join(gates) if gates else '(none)'}")

    def show(db, target, user):
        cost, res = db.resolve_with_cost(target, user)
        print(f"  {target:22s} -> {res.address}  (cost {cost})")

    with DaemonThread(service) as daemon:
        print(f"\nfederation daemon on 127.0.0.1:{daemon.port} "
              f"(shards: {', '.join(names)})")
        with FederatedRouteDatabase(("127.0.0.1",
                                     daemon.port)) as db:
            print("cross-region routes from ihnp4 (backbone):")
            show(db, "topaz", "sam")               # -> universities
            show(db, "caip.rutgers.edu", "honey")  # -> arpa via .edu
            show(db, "mcvax", "piet")              # stays in-shard

            print("\nhot-reload ONLY the universities shard "
                  "(repriced princeton<->rutgers link):")
            revised = revised_universities(tmp)
            db.reload_shard("universities", str(revised))
            print("after the reload:")
            show(db, "topaz", "sam")               # stitched route moved
            show(db, "caip.rutgers.edu", "honey")  # untouched shards,
            show(db, "mcvax", "piet")              # unchanged answers
            stats = db.stats()
            print(f"\ndaemon stats: {stats['lookups']} lookups, "
                  f"{stats['federated']} stitched across shards, "
                  f"{stats['reloads']} shard reload(s), "
                  f"{stats['shards']} shards serving")
    return 0


if __name__ == "__main__":
    sys.exit(main())
