#!/usr/bin/env python3
"""Mailer integration: domains, gateways, and the route database.

Recreates the paper's Domains walkthrough — seismo gatewaying .edu,
caip under .rutgers under .edu — builds the route database a delivery
agent would query, and performs the exact lookup sequence the paper
describes for mail to caip.rutgers.edu!pleasant.  Then shows route
optimization of a "hideously long UUCP path" and the loop-test escape
hatch.

Run:  python examples/mailer_gateway.py
"""

from repro import Pathalias
from repro.mailer.routedb import RouteDatabase, domain_suffixes
from repro.mailer.rewrite import OptimizeMode, RouteOptimizer

MAP = """\
# the Domains-section figure, as input
local\tseismo(DEDICATED)
seismo\tlocal(DEDICATED), .edu(DEDICATED)
.edu = {.rutgers}
.rutgers = {caip}
caip\tblue(LOCAL)
blue\tcaip(LOCAL)
"""


def main() -> None:
    table = Pathalias().run_text(MAP, localhost="local")
    print("routes from 'local':\n")
    print(table.format_paper())

    db = RouteDatabase.from_table(table)

    print("\n-- the paper's lookup procedure -------------------")
    target, user = "caip.rutgers.edu", "pleasant"
    print(f"mail to {target}!{user} searches, in order: "
          f"{domain_suffixes(target)}")

    resolution = db.resolve(target, user)
    print(f" * full database: matched {resolution.matched!r} "
          f"-> {resolution.address}")

    stripped = RouteDatabase({".edu": db.route(".edu")})
    fallback = stripped.resolve(target, user)
    print(f" * only '.edu' known: matched {fallback.matched!r} "
          f"-> {fallback.address}")
    print(f" * identical, 'as before': "
          f"{resolution.address == fallback.address}")

    print("\n-- route optimization ------------------------------")
    optimizer = RouteOptimizer(db, localhost="local")
    ugly = "seismo!caip!blue!user"  # a USENET-reply-style path
    optimized = optimizer.optimize(ugly)
    print(f"user wrote:   {ugly}")
    print(f"rightmost-known-host optimization -> {optimized.address} "
          f"(pivot {optimized.pivot}, {optimized.savings} hops saved)")

    loop = "seismo!local!seismo!local!user"
    kept = optimizer.optimize(loop)
    print(f"loop test:    {loop}")
    print(f"preserved untouched -> {kept.address}  (loop tests are a "
          f"time-honored UUCP tradition)")

    first_hop = RouteOptimizer(db, localhost="local",
                               mode=OptimizeMode.FIRST_HOP)
    conservative = first_hop.optimize("seismo!caip.rutgers.edu!pleasant")
    print(f"first-hop mode: seismo!caip.rutgers.edu!pleasant -> "
          f"{conservative.address}")


if __name__ == "__main__":
    main()
