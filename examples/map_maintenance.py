#!/usr/bin/env python3
"""The map maintainer's toolkit: check, diff, explain, export, batch.

The paper's HISTORY section is a story about *data quality*: contradictory
error-filled maps, manual inspection, and finally the USENIX mapping
project's monthly postings.  This example plays a month in the life of a
map coordinator:

1. run consistency checks over this month's map;
2. diff it against last month's issue and measure route impact;
3. explain a surprising route, hop by hop, penalties included;
4. export the route tree as Graphviz DOT;
5. regenerate per-host paths files for the region.

Run:  python examples/map_maintenance.py
"""

import tempfile
from pathlib import Path

from repro import Pathalias
from repro.core.batch import BatchMapper
from repro.core.explain import explain_route
from repro.core.mapper import Mapper
from repro.graph.build import build_graph
from repro.graph.check import check_map
from repro.graph.export import tree_to_dot
from repro.netsim.mapdiff import diff_map_texts, route_impact_for_source
from repro.parser.grammar import parse_text

LAST_MONTH = [("d.region", """\
# last month's posting
gateway\tseismo(DEMAND), downhill(HOURLY)
downhill\tgateway(HOURLY), valley(EVENING)
valley\tdownhill(EVENING)
seismo\tgateway(DEMAND)
passive\tgateway(POLLED)
""")]

THIS_MONTH = [("d.region", """\
# this month's posting: valley got an autodialer, a newcomer appeared,
# and someone declared a suspicious one-way bargain link
gateway\tseismo(DEMAND), downhill(HOURLY)
downhill\tgateway(HOURLY), valley(EVENING)
valley\tdownhill(DEMAND), newcomer(DAILY)
newcomer\tvalley(DAILY)
seismo\tgateway(DEMAND)
passive\tgateway(POLLED)
bargain\tgateway(0)
""")]


def main() -> None:
    graph = build_graph([(n, parse_text(t, n)) for n, t in THIS_MONTH])

    print("== 1. consistency checks ==========================")
    findings = check_map(graph)
    for finding in findings:
        print(f"  {finding}")
    print(f"  summary: {findings.summary()}")

    print("\n== 2. diff against last month =====================")
    diff = diff_map_texts(LAST_MONTH, THIS_MONTH)
    print(f"  structural: {diff.summary()}")
    for change in diff.cost_changes:
        print(f"  cost change: {change[0]} -> {change[1]}: "
              f"{change[2]} becomes {change[3]}")
    impact = route_impact_for_source(LAST_MONTH, THIS_MONTH, "gateway")
    print(f"  route impact from gateway: {impact.unchanged} unchanged, "
          f"{len(impact.rerouted)} rerouted, "
          f"{len(impact.recosted)} recosted, "
          f"{len(impact.gained)} gained "
          f"(stability {impact.stability():.0%})")

    print("\n== 3. explain a route =============================")
    result = Mapper(graph).run("gateway")
    explanation = explain_route(result, "newcomer")
    print("  " + explanation.describe().replace("\n", "\n  "))

    print("\n== 4. export the route tree as DOT ================")
    dot = tree_to_dot(result, title="routes from gateway")
    print("  " + "\n  ".join(dot.splitlines()[:6]))
    print(f"  ... ({len(dot.splitlines())} lines total)")

    print("\n== 5. regenerate paths files ======================")
    with tempfile.TemporaryDirectory() as tmp:
        count = BatchMapper(graph).write_paths_files(
            tmp, sources=["gateway", "downhill", "valley"])
        print(f"  wrote {count} paths files:")
        for path in sorted(Path(tmp).iterdir()):
            first = path.read_text().splitlines()[0]
            print(f"    {path.name}: {first} ...")

    print("\n== done ===========================================")
    table = Pathalias().run_text(THIS_MONTH[0][1], localhost="gateway")
    print(f"  {len(table)} routes live; "
          f"{len(table.unreachable)} unreachable")


if __name__ == "__main__":
    main()
