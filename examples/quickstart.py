#!/usr/bin/env python3
"""Quickstart: the paper's own worked example, start to finish.

Feeds the "simplified portion of the map from 1981" to pathalias and
prints the route table — which reproduces the paper's OUTPUT section
exactly, including the observations the paper makes about it.

Run:  python examples/quickstart.py
"""

from repro import Pathalias

MAP_1981 = """\
# A simplified portion of the UUCP map from 1981 (paper, OUTPUT section)
unc\tduke(HOURLY), phs(HOURLY*4)
duke\tunc(DEMAND), research(DAILY/2), phs(DEMAND)
phs\tunc(HOURLY*4), duke(HOURLY)
research\tduke(DEMAND), ucbvax(DEMAND)
ucbvax\tresearch(DAILY)
ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)
"""


def main() -> None:
    table = Pathalias().run_text(MAP_1981, localhost="unc")

    print("If run from unc, the following output is produced:\n")
    print(table.format_paper())

    print("\nPoints worth noting (straight from the paper):")
    print(f" * mail to phs relays through duke: "
          f"{table.route('phs')!r} — the direct unc-phs link costs "
          f"HOURLY*4, duke costs HOURLY")
    print(f" * ARPANET routes mix syntaxes: "
          f"{table.route('mit-ai')!r} — UUCP '!' on the left, "
          f"ARPANET '@' on the right")
    print(f" * the ARPA network node itself never appears in the "
          f"output: lookup('ARPA') -> {table.lookup('ARPA')}")

    print("\nA mailer instantiates the %s format string:")
    print(f" * mail to honey at phs      -> "
          f"{table.address('phs', 'honey')}")
    print(f" * mail to minsky at mit-ai  -> "
          f"{table.address('mit-ai', 'minsky')}")


if __name__ == "__main__":
    main()
