#!/usr/bin/env python3
"""Route the (synthetic) 1986 USENET.

Generates a map with the paper's published shape — ~5,700 USENET hosts
with 20,000 links plus ~2,800 ARPANET/CSNET/BITNET hosts with 8,000
links, backbone sites, regional cliques, gatewayed nets, domains,
aliases, private name collisions and passive polled leaves — then runs
the full pathalias pipeline over it and reports what the paper's
engineering sections talk about: scale, sparsity, phase timings, and
how the heuristics fired.

Run:  python examples/usenet_routing.py [--small]
"""

import sys

from repro import Pathalias, compute_stats
from repro.netsim.mapgen import MapParams, generate_map


def main() -> None:
    small = "--small" in sys.argv
    params = MapParams.small() if small else MapParams.usenet_1986()
    print(f"generating {'small' if small else '1986-scale'} map "
          f"(seed {params.seed})...")
    generated = generate_map(params)

    tool = Pathalias()
    result = tool.run_detailed(generated.files, generated.localhost)
    table = result.table
    stats = compute_stats(result.graph)
    times = result.times

    print(f"\n-- the network ------------------------------------")
    print(f"   nodes: {stats.nodes}  (hosts {stats.hosts}, "
          f"nets {stats.nets}, domains {stats.domains})")
    print(f"   links: {stats.links}  (e/v = {stats.sparsity:.2f} — "
          f"sparse, as the paper requires)")
    print(f"   input files: {len(generated.files)}")

    print(f"\n-- the run ----------------------------------------")
    print(f"   scan {times.scan:.3f}s  parse {times.parse:.3f}s  "
          f"build {times.build:.3f}s  map {times.map:.3f}s  "
          f"print {times.print:.3f}s")
    mapping = result.mapping.stats
    print(f"   heap pops {mapping.pops}, relaxations "
          f"{mapping.relaxations}, decrease-keys "
          f"{mapping.decrease_keys}")
    print(f"   back links invented: {mapping.inferred_links} "
          f"(in {mapping.back_link_rounds} rounds) — passive polled "
          f"sites routed by implication")
    print(f"   routes printed: {len(table)}   unreachable: "
          f"{len(table.unreachable)}")

    print(f"\n-- sample routes from {generated.localhost} ---------")
    records = list(table)
    samples = [records[1], records[len(records) // 2], records[-1]]
    for record in samples:
        print(f"   {record.format_paper()}")
    domain_record = next((r for r in records if r.name.startswith(".")),
                         None)
    if domain_record:
        print(f"   {domain_record.format_paper()}   <- a top-level "
              f"domain, routed via its gateway")
    qualified = next((r for r in records if "." in r.name
                      and not r.name.startswith(".")), None)
    if qualified:
        print(f"   {qualified.format_paper()}   <- a host under a "
              f"domain, name built during traversal")

    print(f"\n-- the longest route ------------------------------")
    longest = max(records, key=lambda r: r.route.count("!"))
    print(f"   {longest.format_paper()}")


if __name__ == "__main__":
    main()
