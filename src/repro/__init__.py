"""repro — a reproduction of *pathalias* (Honeyman & Bellovin, USENIX 1986).

Pathalias computes electronic-mail routes in environments that mix
explicit and implicit routing, as well as syntax styles.  Quickstart::

    from repro import Pathalias

    MAP = '''
    unc     duke(HOURLY), phs(HOURLY*4)
    duke    unc(DEMAND), research(DAILY/2), phs(DEMAND)
    phs     unc(HOURLY*4), duke(HOURLY)
    research duke(DEMAND), ucbvax(DEMAND)
    ucbvax  research(DAILY)
    ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)
    '''
    table = Pathalias().run_text(MAP, localhost="unc")
    print(table.format_paper())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.config import (
    COST_SYMBOLS,
    DEAD,
    DEFAULT_LINK_COST,
    HeuristicConfig,
    INF,
)
from repro.core.batch import BatchMapper, BatchResult
from repro.core.dense import dense_dijkstra
from repro.core.fastmap import (
    CompactMapper,
    CompactMapResult,
    compact_route_table,
    map_routes,
)
from repro.core.mapper import Mapper, MapResult, MapStats
from repro.core.pathalias import Pathalias, PhaseTimes, RunResult
from repro.core.printer import RouteTable
from repro.core.route import RouteRecord
from repro.errors import (
    AddressError,
    CostExpressionError,
    GraphError,
    InputError,
    MappingError,
    ParseError,
    PathaliasError,
    RouteError,
    ScanError,
)
from repro.graph.build import Graph, GraphBuilder, build_graph
from repro.graph.compact import CompactGraph
from repro.graph.node import Link, LinkKind, Node
from repro.graph.stats import GraphStats, compute_stats
from repro.parser.ast import Direction
from repro.parser.costexpr import evaluate_cost
from repro.parser.grammar import parse_text

__version__ = "1.0.0"

__all__ = [
    "COST_SYMBOLS", "DEAD", "DEFAULT_LINK_COST", "HeuristicConfig", "INF",
    "dense_dijkstra", "Mapper", "MapResult", "MapStats",
    "BatchMapper", "BatchResult",
    "CompactGraph", "CompactMapper", "CompactMapResult",
    "compact_route_table", "map_routes",
    "Pathalias", "PhaseTimes", "RunResult", "RouteTable", "RouteRecord",
    "AddressError", "CostExpressionError", "GraphError", "InputError",
    "MappingError", "ParseError", "PathaliasError", "RouteError",
    "ScanError",
    "Graph", "GraphBuilder", "build_graph",
    "Link", "LinkKind", "Node", "GraphStats", "compute_stats",
    "Direction", "evaluate_cost", "parse_text",
    "__version__",
]
