"""Data-structure substrates described by the paper.

These are not conveniences: the parser's symbol table *is*
:class:`~repro.adt.hashtable.HashTable` and the mapper's priority queue
*is* :class:`~repro.adt.heap.BinaryHeap`, mirroring how the original C
program was built from exactly these pieces.
"""

from repro.adt.arena import ArenaAllocator
from repro.adt.freelist import FreeListAllocator
from repro.adt.hashtable import GrowthPolicy, HashTable, SecondaryHash
from repro.adt.heap import BinaryHeap
from repro.adt.primes import is_prime, next_prime, fibonacci_primes
from repro.adt.quickfit import QuickFitAllocator
from repro.adt.trace import AllocationTrace, TraceEvent

__all__ = [
    "ArenaAllocator",
    "FreeListAllocator",
    "QuickFitAllocator",
    "GrowthPolicy",
    "HashTable",
    "SecondaryHash",
    "BinaryHeap",
    "is_prime",
    "next_prime",
    "fibonacci_primes",
    "AllocationTrace",
    "TraceEvent",
]
