"""Buffered-sbrk arena allocator (the winner of the paper's shoot-out).

"We discovered that a buffered sbrk scheme for allocation, with no
attempt to re-use freed space, gives superior performance in both time
and space."  The scheme: grab large segments from the system (the
original used ``malloc`` for segment acquisition, for portability to
64 kbyte-segment machines), and bump-allocate within the current
segment.  ``free`` is (nearly) a no-op.  Retired hash tables may be
donated back as segments (``donate``), the one reuse opportunity the
paper mentions.

This is a discrete simulator: it tracks the same cost model the paper
reasons about — operation work (a time proxy counted in elementary
steps) and space (bytes requested from the system vs. bytes usefully
allocated) — without owning real memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adt.trace import AllocationTrace

#: Default segment size: 4 kbytes, the paper's lower bound for a retired
#: hash table, and a typical VAX page multiple.
SEGMENT_SIZE = 4096

#: Alignment of returned blocks (original aligned to worst-case boundary).
ALIGN = 8


@dataclass
class ArenaStats:
    """Observable costs of a run, comparable across allocators."""

    steps: int = 0            # elementary operations (time proxy)
    system_bytes: int = 0     # bytes obtained from the system
    allocated_bytes: int = 0  # bytes handed to the caller
    wasted_bytes: int = 0     # alignment + segment-tail waste
    segments: int = 0         # sbrk/malloc calls for fresh segments
    donations: int = 0        # segments recycled from retired tables

    @property
    def space_overhead(self) -> float:
        """System bytes per usefully allocated byte (1.0 is perfect)."""
        if not self.allocated_bytes:
            return 0.0
        return self.system_bytes / self.allocated_bytes


class ArenaAllocator:
    """Bump allocator over buffered segments; frees are deferred.

    The API is trace-oriented: :meth:`alloc` and :meth:`free` mirror
    ``malloc``/``free`` and update :class:`ArenaStats`.
    """

    def __init__(self, segment_size: int = SEGMENT_SIZE):
        if segment_size < ALIGN:
            raise ValueError("segment size too small")
        self.segment_size = segment_size
        self.stats = ArenaStats()
        self._remaining = 0          # bytes left in the current segment
        self._donated: list[int] = []  # sizes of donated segments
        self._block_sizes: dict[int, int] = {}

    def alloc(self, block: int, size: int) -> None:
        """Allocate ``size`` bytes for ``block``."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        rounded = (size + ALIGN - 1) & ~(ALIGN - 1)
        self.stats.steps += 1  # bump pointer: constant work
        if rounded > self._remaining:
            # Tail of the current segment is abandoned.
            self.stats.wasted_bytes += self._remaining
            if self._donated:
                seg = self._donated.pop()
                self.stats.donations += 1
            else:
                seg = max(self.segment_size, rounded)
                self.stats.system_bytes += seg
                self.stats.segments += 1
            self.stats.steps += 3  # segment acquisition bookkeeping
            self._remaining = seg
        self._remaining -= rounded
        self.stats.allocated_bytes += size
        self.stats.wasted_bytes += rounded - size
        self._block_sizes[block] = size

    def free(self, block: int) -> None:
        """Constant-time no-op: the arena never reuses freed space."""
        self.stats.steps += 1
        self._block_sizes.pop(block, None)

    def donate(self, size: int) -> None:
        """Recycle a retired hash table's storage as a future segment."""
        self._donated.append(size)

    def run(self, trace: AllocationTrace) -> ArenaStats:
        """Replay a whole trace and return the accumulated stats."""
        for event in trace:
            if event.op == "alloc":
                self.alloc(event.block, event.size)
            else:
                self.free(event.block)
        return self.stats
