"""First-fit free-list allocator with boundary-tag coalescing.

The baseline the paper's arena beat: a classical ``malloc`` that keeps
freed blocks on a list, searches it first-fit on allocation, splits
over-large blocks, and coalesces adjacent free blocks on ``free``.
On pathalias's allocate-heavily/free-late pattern the coalescing work
is pure overhead — "memory allocators that attempt to coalesce when
space is freed simply waste time (and space)".

Like :class:`~repro.adt.arena.ArenaAllocator` this is a discrete
simulator over a virtual address space; it counts elementary steps
(time proxy) and bytes (space) so the two are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adt.arena import ALIGN, ArenaStats
from repro.adt.trace import AllocationTrace

#: Per-block header holding size + boundary tags.
HEADER = 8


@dataclass
class _Block:
    addr: int
    size: int  # payload size, excluding header


class FreeListAllocator:
    """First-fit allocator with address-ordered free list and coalescing."""

    def __init__(self, sbrk_chunk: int = 4096):
        self.sbrk_chunk = sbrk_chunk
        self.stats = ArenaStats()
        self._break = 0  # top of the simulated heap
        self._free: list[_Block] = []  # address-ordered
        self._live: dict[int, _Block] = {}  # block id -> block

    # -- allocation --------------------------------------------------------

    def alloc(self, block: int, size: int) -> None:
        if size <= 0:
            raise ValueError("allocation size must be positive")
        rounded = (size + ALIGN - 1) & ~(ALIGN - 1)
        need = rounded + HEADER
        placed = self._first_fit(need)
        if placed is None:
            placed = self._extend(need)
        self._live[block] = placed
        self.stats.allocated_bytes += size
        self.stats.wasted_bytes += placed.size - size
        # A boundary-tag block with a larger payload than requested keeps
        # the excess (internal fragmentation) until freed.

    def _first_fit(self, need: int) -> _Block | None:
        """Scan the free list; split the first block big enough."""
        for i, candidate in enumerate(self._free):
            self.stats.steps += 1  # one comparison per list node visited
            total = candidate.size + HEADER
            if total >= need:
                remainder = total - need
                if remainder > HEADER + ALIGN:
                    # Split: tail stays free.
                    self._free[i] = _Block(candidate.addr + need,
                                           remainder - HEADER)
                    self.stats.steps += 2
                else:
                    del self._free[i]
                    need = total  # caller keeps the slack
                return _Block(candidate.addr, need - HEADER)
        return None

    def _extend(self, need: int) -> _Block:
        """Grow the heap break by at least one chunk."""
        grow = ((need + self.sbrk_chunk - 1)
                // self.sbrk_chunk) * self.sbrk_chunk
        addr = self._break
        self._break += grow
        self.stats.system_bytes += grow
        self.stats.segments += 1
        self.stats.steps += 3
        slack = grow - need
        if slack > HEADER + ALIGN:
            self._free_insert(_Block(addr + need, slack - HEADER))
        else:
            need = grow
        return _Block(addr, need - HEADER)

    # -- freeing -----------------------------------------------------------

    def free(self, block: int) -> None:
        released = self._live.pop(block)
        idx = self._free_insert(released)
        self._coalesce(released, idx)

    def _free_insert(self, blk: _Block) -> int:
        """Insert into the address-ordered free list (binary search)."""
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            self.stats.steps += 1
            if self._free[mid].addr < blk.addr:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, blk)
        self.stats.steps += 1
        return lo

    def _coalesce(self, blk: _Block, idx: int) -> None:
        """Merge ``blk`` with free neighbours (boundary-tag style)."""
        self.stats.steps += 1
        # Merge with successor.
        if idx + 1 < len(self._free):
            nxt = self._free[idx + 1]
            if blk.addr + blk.size + HEADER == nxt.addr:
                blk.size += nxt.size + HEADER
                del self._free[idx + 1]
                self.stats.steps += 2
        # Merge with predecessor.
        if idx > 0:
            prev = self._free[idx - 1]
            if prev.addr + prev.size + HEADER == blk.addr:
                prev.size += blk.size + HEADER
                del self._free[idx]
                self.stats.steps += 2

    # -- driver -------------------------------------------------------------

    def run(self, trace: AllocationTrace) -> ArenaStats:
        for event in trace:
            if event.op == "alloc":
                self.alloc(event.block, event.size)
            else:
                self.free(event.block)
        return self.stats
