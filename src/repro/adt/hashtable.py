"""Open-addressing, double-hashing string hash table.

This reproduces the paper's "Hash table management" section:

* keys are host names; an integer key ``k`` is computed "using bit-level
  shifts and exclusive-ors";
* the primary hash is ``k mod T`` for prime table size ``T``;
* the secondary hash is **not** the textbook ``1 + (k mod (T-2))`` — the
  authors observed anomalous behaviour with it — but its inverse
  ``(T-2) - (k mod (T-2))``;
* when the load factor exceeds the high-water mark α_H = 0.79 (predicted
  2 probes per access at full load), the table is rehashed into the next
  size from a growth schedule.  Three historical schedules are provided:
  geometric δ=2 (rejected: wastes space), arithmetic with a low-water
  mark α_L = 0.49 (δ = α_H/α_L ≈ golden ratio), and the "current"
  Fibonacci-primes schedule (equivalent behaviour, simpler computation).

The table stores (name -> value) pairs; deletion is not supported, which
matches the original (pathalias never removes a host name once interned).
Probe statistics are tracked so experiment E5 can measure the claims.
"""

from __future__ import annotations

import enum
from typing import Any, Iterator

from repro.adt.primes import next_prime

#: Paper's high-water load factor: rehash above this.
ALPHA_HIGH = 0.79
#: Paper's (abandoned, but benchmarkable) low-water target after rehash.
ALPHA_LOW = 0.49


class SecondaryHash(enum.Enum):
    """Which secondary probe-step function to use."""

    #: The oft-suggested textbook function the authors found anomalous.
    TEXTBOOK = "1 + (k mod (T-2))"
    #: The inverse the paper uses.
    INVERSE = "(T-2) - (k mod (T-2))"


class GrowthPolicy(enum.Enum):
    """How the next table size is chosen on rehash."""

    DOUBLING = "geometric, delta=2"
    ARITHMETIC = "arithmetic scan to alpha < alpha_low"
    FIBONACCI = "Fibonacci primes (current implementation)"


def string_key(name: str) -> int:
    """Fold a host name to a non-negative integer key.

    Shift-and-xor folding in the spirit of the original ``hash()``:
    a 31-bit running key, each byte xor-ed in after a 7-bit rotate.
    Deterministic across runs (unlike Python's ``hash``), which the
    probe-count experiments rely on.
    """
    k = 0
    for ch in name.encode("utf-8", "replace"):
        k = ((k << 7) | (k >> 24)) & 0x7FFFFFFF
        k ^= ch
    return k


class HashTable:
    """Open-addressing double-hashing table mapping names to values.

    Supports ``tbl[name] = value``, ``tbl[name]``, ``name in tbl``,
    ``len(tbl)``, and iteration over names.  ``lookup`` exposes the
    find-or-insert-slot primitive the parser uses for interning.
    """

    __slots__ = ("_size", "_count", "_names", "_values", "_keys",
                 "secondary", "growth", "probes", "accesses", "rehashes",
                 "retired_slots")

    def __init__(self, initial_size: int = 31,
                 secondary: SecondaryHash = SecondaryHash.INVERSE,
                 growth: GrowthPolicy = GrowthPolicy.FIBONACCI):
        self._size = next_prime(max(initial_size, 5))
        self._count = 0
        self._names: list[str | None] = [None] * self._size
        self._values: list[Any] = [None] * self._size
        self._keys: list[int] = [0] * self._size
        self.secondary = secondary
        self.growth = growth
        #: total probe slots examined, for E5
        self.probes = 0
        #: total lookup operations, for E5
        self.accesses = 0
        #: number of rehash events
        self.rehashes = 0
        #: total slots across discarded tables (space-waste accounting);
        #: the original recycled these pages into its arena allocator
        self.retired_slots = 0

    # -- hashing ----------------------------------------------------------

    def _step(self, k: int, size: int) -> int:
        """Secondary hash: probe stride (never 0, coprime to prime size)."""
        if self.secondary is SecondaryHash.TEXTBOOK:
            return 1 + (k % (size - 2))
        return (size - 2) - (k % (size - 2))

    def _probe(self, name: str) -> int:
        """Index of ``name``'s slot, or of the empty slot where it goes.

        Double hashing: start at ``k mod T``, step by the secondary hash.
        With prime ``T`` the sequence visits every slot, so as long as the
        load factor stays below 1 an empty slot is always found.
        """
        k = string_key(name)
        size = self._size
        idx = k % size
        step = self._step(k, size)
        self.accesses += 1
        probes = 1
        while True:
            slot_name = self._names[idx]
            if slot_name is None or slot_name == name:
                self.probes += probes
                return idx
            idx = (idx + step) % size
            probes += 1

    # -- growth -----------------------------------------------------------

    def _next_size(self) -> int:
        if self.growth is GrowthPolicy.DOUBLING:
            return next_prime(self._size * 2)
        if self.growth is GrowthPolicy.ARITHMETIC:
            # Scan an arithmetic sequence of candidates for the first
            # prime bringing the load factor under ALPHA_LOW.
            candidate = self._size + 2
            while True:
                candidate = next_prime(candidate)
                if self._count / candidate < ALPHA_LOW:
                    return candidate
                candidate += 2
        # FIBONACCI: advance by the golden ratio and take the next prime,
        # which is what the Fibonacci-primes schedule amounts to.
        return next_prime(int(self._size * 1.618) + 1)

    def _rehash(self) -> None:
        old_names, old_values = self._names, self._values
        self.retired_slots += self._size
        self.rehashes += 1
        self._size = self._next_size()
        self._names = [None] * self._size
        self._values = [None] * self._size
        self._count = 0
        for name, value in zip(old_names, old_values):
            if name is not None:
                self._insert(name, value)

    def _insert(self, name: str, value: Any) -> None:
        idx = self._probe(name)
        if self._names[idx] is None:
            self._names[idx] = name
            self._count += 1
        self._values[idx] = value

    # -- public api ---------------------------------------------------------

    def lookup(self, name: str, default: Any = None) -> Any:
        """Return the value stored for ``name`` (or ``default``)."""
        idx = self._probe(name)
        if self._names[idx] is None:
            return default
        return self._values[idx]

    def insert(self, name: str, value: Any) -> None:
        """Insert or overwrite ``name``, growing past α_H as needed."""
        if (self._count + 1) / self._size > ALPHA_HIGH:
            self._rehash()
        self._insert(name, value)

    def setdefault(self, name: str, value: Any) -> Any:
        """Intern: return existing value, or insert ``value`` and return it."""
        existing = self.lookup(name, _MISSING)
        if existing is not _MISSING:
            return existing
        self.insert(name, value)
        return value

    @property
    def load_factor(self) -> float:
        return self._count / self._size

    @property
    def size(self) -> int:
        """Current table capacity (a prime)."""
        return self._size

    def mean_probes(self) -> float:
        """Average probes per access so far — the paper predicts ~2 at
        full (α=0.79) load."""
        return self.probes / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.probes = 0
        self.accesses = 0

    def __len__(self) -> int:
        return self._count

    def __contains__(self, name: str) -> bool:
        return self.lookup(name, _MISSING) is not _MISSING

    def __getitem__(self, name: str) -> Any:
        value = self.lookup(name, _MISSING)
        if value is _MISSING:
            raise KeyError(name)
        return value

    def __setitem__(self, name: str, value: Any) -> None:
        self.insert(name, value)

    def __iter__(self) -> Iterator[str]:
        for name in self._names:
            if name is not None:
                yield name

    def items(self) -> Iterator[tuple[str, Any]]:
        for name, value in zip(self._names, self._values):
            if name is not None:
                yield name, value


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return "<missing>"


_MISSING = _Missing()
