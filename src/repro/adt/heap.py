"""Implicit binary min-heap with decrease-key.

The mapping phase performs "a modified breadth-first search ... using a
priority queue and extracting vertices in increasing order of path cost";
when a cheaper candidate path to an already-queued vertex is found, the
cost is reduced in place and the heap property restored.  ``heapq`` can't
reduce a key in place, so — exactly like the original — we keep our own
implicit binary heap plus a position index per item.

Items may be any hashable objects; priorities are integers (path costs).
The original reused the retired hash table's memory for the heap array;
that C-ism has no Python equivalent and is merely documented here.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterator, TypeVar

T = TypeVar("T", bound=Hashable)


class BinaryHeap(Generic[T]):
    """Min-heap of (priority, item) supporting ``decrease_key``.

    Each item may appear at most once; ``insert`` on a present item is an
    error (use ``decrease_key``).  Ties are broken by insertion order so
    extraction is deterministic — route output must be reproducible.
    """

    __slots__ = ("_heap", "_pos", "_serial")

    def __init__(self) -> None:
        # Each entry is [priority, serial, item]; serial breaks ties FIFO.
        self._heap: list[list] = []
        self._pos: dict[T, int] = {}
        self._serial = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, item: T) -> bool:
        return item in self._pos

    def __bool__(self) -> bool:
        return bool(self._heap)

    def insert(self, item: T, priority: int) -> None:
        """Add ``item`` with ``priority``; item must not be present."""
        if item in self._pos:
            raise ValueError(f"item already queued: {item!r}")
        entry = [priority, self._serial, item]
        self._serial += 1
        self._heap.append(entry)
        self._pos[item] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def priority(self, item: T) -> int:
        """Current priority of a queued item."""
        return self._heap[self._pos[item]][0]

    def decrease_key(self, item: T, priority: int) -> None:
        """Lower a queued item's priority and restore the heap property."""
        idx = self._pos[item]
        entry = self._heap[idx]
        if priority > entry[0]:
            raise ValueError(
                f"decrease_key would increase priority of {item!r}: "
                f"{entry[0]} -> {priority}")
        entry[0] = priority
        self._sift_up(idx)

    def extract_min(self) -> tuple[T, int]:
        """Remove and return ``(item, priority)`` with smallest priority."""
        if not self._heap:
            raise IndexError("extract_min from empty heap")
        top = self._heap[0]
        last = self._heap.pop()
        del self._pos[top[2]]
        if self._heap:
            self._heap[0] = last
            self._pos[last[2]] = 0
            self._sift_down(0)
        return top[2], top[0]

    def peek(self) -> tuple[T, int]:
        if not self._heap:
            raise IndexError("peek at empty heap")
        top = self._heap[0]
        return top[2], top[0]

    def __iter__(self) -> Iterator[T]:
        """Iterate queued items in arbitrary (heap) order."""
        for entry in self._heap:
            yield entry[2]

    # -- sifting ----------------------------------------------------------

    def _less(self, a: int, b: int) -> bool:
        ea, eb = self._heap[a], self._heap[b]
        return (ea[0], ea[1]) < (eb[0], eb[1])

    def _swap(self, a: int, b: int) -> None:
        heap, pos = self._heap, self._pos
        heap[a], heap[b] = heap[b], heap[a]
        pos[heap[a][2]] = a
        pos[heap[b][2]] = b

    def _sift_up(self, idx: int) -> None:
        while idx > 0:
            parent = (idx - 1) >> 1
            if self._less(idx, parent):
                self._swap(idx, parent)
                idx = parent
            else:
                break

    def _sift_down(self, idx: int) -> None:
        n = len(self._heap)
        while True:
            left = 2 * idx + 1
            right = left + 1
            smallest = idx
            if left < n and self._less(left, smallest):
                smallest = left
            if right < n and self._less(right, smallest):
                smallest = right
            if smallest == idx:
                return
            self._swap(idx, smallest)
            idx = smallest

    def check_invariant(self) -> None:
        """Verify heap order and position index; used by property tests."""
        for idx in range(1, len(self._heap)):
            parent = (idx - 1) >> 1
            if self._less(idx, parent):
                raise AssertionError(f"heap order violated at {idx}")
        for item, idx in self._pos.items():
            if self._heap[idx][2] is not item and self._heap[idx][2] != item:
                raise AssertionError(f"position index stale for {item!r}")
