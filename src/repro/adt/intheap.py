"""Int-keyed binary min-heap with a flat-list position index.

The compiled routing engine (:mod:`repro.core.fastmap`) identifies every
mapping state by a small dense integer, so the general
:class:`repro.adt.heap.BinaryHeap` — whose position index is a dict of
hashable items — pays for hashing it never needs.  This heap restricts
items to ``0 <= state < size`` and keeps the position index in a plain
list, turning every bookkeeping step into an integer index operation.

Semantics match :class:`BinaryHeap` exactly, because the two engines
must produce identical shortest-path trees:

* ties break FIFO on an insertion serial, so extraction order (and
  therefore route output) is deterministic;
* ``decrease_key`` keeps the item's original serial, as the reference
  heap does — a requeued priority does not rejuvenate its tie-break.

Priority and serial are packed into one integer (``priority << SHIFT |
serial``), so heap comparisons are single int compares instead of tuple
comparisons.  Python ints are arbitrary precision: pathological cost
sums merely grow the int, they never overflow the packing.
"""

from __future__ import annotations

import heapq

#: Bits reserved for the insertion serial.  2^40 insertions is far
#: beyond any single mapping run (serials count inserts, not states).
SERIAL_BITS = 40
SERIAL_MASK = (1 << SERIAL_BITS) - 1

#: Packing layout for :class:`LazyPackedHeap` entries.
PACK_STATE_BITS = 28
PACK_STATE_MASK = (1 << PACK_STATE_BITS) - 1
PACK_SERIAL_BITS = 36
PACK_KEY_SHIFT = PACK_STATE_BITS + PACK_SERIAL_BITS  # cost starts here


class IntHeap:
    """Min-heap over integer states ``0..size-1`` with decrease-key.

    Each state may appear at most once; ``insert`` on a present state is
    an error (use ``decrease_key``).
    """

    __slots__ = ("_keys", "_states", "_pos", "_serial")

    def __init__(self, size: int) -> None:
        # Parallel arrays: packed (priority, serial) key and the state.
        self._keys: list[int] = []
        self._states: list[int] = []
        # state -> heap index, -1 when absent.  Flat list, no hashing.
        self._pos: list[int] = [-1] * size
        self._serial = 0

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def __contains__(self, state: int) -> bool:
        return self._pos[state] >= 0

    def clear(self) -> None:
        """Empty the heap, resetting the position index for reuse."""
        pos = self._pos
        for state in self._states:
            pos[state] = -1
        self._keys.clear()
        self._states.clear()
        self._serial = 0

    def grow(self, size: int) -> None:
        """Widen the position index to admit states up to ``size - 1``."""
        if size > len(self._pos):
            self._pos.extend([-1] * (size - len(self._pos)))

    def insert(self, state: int, priority: int) -> None:
        """Add ``state`` with ``priority``; state must not be present."""
        if self._pos[state] >= 0:
            raise ValueError(f"state already queued: {state}")
        key = (priority << SERIAL_BITS) | self._serial
        self._serial += 1
        idx = len(self._keys)
        self._keys.append(key)
        self._states.append(state)
        self._pos[state] = idx
        self._sift_up(idx)

    def priority(self, state: int) -> int:
        """Current priority of a queued state."""
        idx = self._pos[state]
        if idx < 0:
            raise KeyError(state)
        return self._keys[idx] >> SERIAL_BITS

    def decrease_key(self, state: int, priority: int) -> None:
        """Lower a queued state's priority, keeping its serial."""
        idx = self._pos[state]
        if idx < 0:
            raise KeyError(state)
        old = self._keys[idx]
        if priority > old >> SERIAL_BITS:
            raise ValueError(
                f"decrease_key would increase priority of {state}: "
                f"{old >> SERIAL_BITS} -> {priority}")
        self._keys[idx] = (priority << SERIAL_BITS) | (old & SERIAL_MASK)
        self._sift_up(idx)

    def extract_min(self) -> tuple[int, int]:
        """Remove and return ``(state, priority)`` with smallest key."""
        keys = self._keys
        if not keys:
            raise IndexError("extract_min from empty heap")
        states = self._states
        pos = self._pos
        top_key = keys[0]
        top_state = states[0]
        pos[top_state] = -1
        last_key = keys.pop()
        last_state = states.pop()
        if keys:
            keys[0] = last_key
            states[0] = last_state
            pos[last_state] = 0
            self._sift_down(0)
        return top_state, top_key >> SERIAL_BITS

    def peek(self) -> tuple[int, int]:
        if not self._keys:
            raise IndexError("peek at empty heap")
        return self._states[0], self._keys[0] >> SERIAL_BITS

    # -- sifting ----------------------------------------------------------

    def _sift_up(self, idx: int) -> None:
        keys, states, pos = self._keys, self._states, self._pos
        key = keys[idx]
        state = states[idx]
        while idx > 0:
            parent = (idx - 1) >> 1
            pkey = keys[parent]
            if key >= pkey:
                break
            keys[idx] = pkey
            states[idx] = states[parent]
            pos[states[idx]] = idx
            idx = parent
        keys[idx] = key
        states[idx] = state
        pos[state] = idx

    def _sift_down(self, idx: int) -> None:
        keys, states, pos = self._keys, self._states, self._pos
        n = len(keys)
        key = keys[idx]
        state = states[idx]
        while True:
            left = 2 * idx + 1
            if left >= n:
                break
            right = left + 1
            child = left
            ckey = keys[left]
            if right < n and keys[right] < ckey:
                child = right
                ckey = keys[right]
            if key <= ckey:
                break
            keys[idx] = ckey
            states[idx] = states[child]
            pos[states[idx]] = idx
            idx = child
        keys[idx] = key
        states[idx] = state
        pos[state] = idx

    def check_invariant(self) -> None:
        """Verify heap order and position index; used by tests."""
        keys = self._keys
        for idx in range(1, len(keys)):
            if keys[idx] < keys[(idx - 1) >> 1]:
                raise AssertionError(f"heap order violated at {idx}")
        seen = 0
        for state, idx in enumerate(self._pos):
            if idx < 0:
                continue
            seen += 1
            if self._states[idx] != state:
                raise AssertionError(f"position index stale for {state}")
        if seen != len(keys):
            raise AssertionError("position index size mismatch")


class LazyPackedHeap:
    """Lazy-deletion min-queue over packed integers, for the hot loop.

    :class:`IntHeap` is the faithful decrease-key ADT; this is the
    engine-room variant the compiled mapper's drain loop actually
    drives, because ``heapq``'s C sifting beats any pure-Python heap by
    an order of magnitude.  Each entry packs ``(cost, serial, state)``
    into one int::

        entry = cost << PACK_KEY_SHIFT | serial << PACK_STATE_BITS | state

    so C-level int comparison orders by cost, then FIFO serial, then
    state (state is unreachable as a tie-break: serials are unique).

    There is no decrease-key: lowering a state's cost pushes a *new*
    entry carrying the state's original serial — exactly the ordering
    ``BinaryHeap.decrease_key`` produces, since a decrease there keeps
    the item's serial too.  The superseded entry remains queued with a
    strictly larger cost; the consumer must skip entries whose state
    was already extracted (its ``mapped`` flag, or a cost comparison).
    The consumer owns the serial-per-state bookkeeping; hot loops may
    bypass these methods and drive ``entries`` with ``heapq`` directly.
    """

    __slots__ = ("entries", "serial")

    def __init__(self) -> None:
        self.entries: list[int] = []
        self.serial = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def clear(self) -> None:
        self.entries.clear()
        self.serial = 0

    def next_serial(self) -> int:
        serial = self.serial
        self.serial = serial + 1
        return serial

    def push(self, state: int, cost: int, serial: int) -> None:
        heapq.heappush(
            self.entries,
            (cost << PACK_KEY_SHIFT) | (serial << PACK_STATE_BITS)
            | state)

    def pop(self) -> tuple[int, int]:
        """Remove and return ``(state, cost)``; caller discards stale
        states (already extracted at a lower cost)."""
        entry = heapq.heappop(self.entries)
        return entry & PACK_STATE_MASK, entry >> PACK_KEY_SHIFT
