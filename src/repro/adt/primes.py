"""Prime-number helpers for hash-table sizing.

The paper's hash table requires prime table sizes (the double-hashing
probe sequence only covers the whole table when the size is prime) and
grows them along a "Fibonacci sequence of primes (more or less)", which
follows the golden ratio — the growth factor the authors settled on after
finding doubling too wasteful.
"""

from __future__ import annotations


def is_prime(n: int) -> bool:
    """Deterministic primality test, fine for table-size magnitudes."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0 or n % 3 == 0:
        return False
    f = 5
    while f * f <= n:
        if n % f == 0 or n % (f + 2) == 0:
            return False
        f += 6
    return True


def next_prime(n: int) -> int:
    """Smallest prime >= ``n``."""
    if n <= 2:
        return 2
    candidate = n | 1  # first odd >= n
    while not is_prime(candidate):
        candidate += 2
    return candidate


def fibonacci_primes(count: int, start: int = 31) -> list[int]:
    """The table-size schedule: primes tracking a Fibonacci sequence.

    Mirrors the paper's "current implementation": seed a Fibonacci pair,
    and at each step take the smallest prime at or above the next
    Fibonacci number.  Successive sizes therefore grow by roughly the
    golden ratio (≈1.618), the growth rate the authors found neither
    "too large" (δ=2 wastes space) nor too small (rehashing too often).

    Args:
        count: how many table sizes to produce.
        start: lower bound for the first size.

    Returns:
        Strictly increasing list of ``count`` primes.
    """
    if count < 1:
        return []
    a, b = start, start + start // 2 + 1  # seed pair, ratio ~1.5 to start
    sizes = [next_prime(a)]
    while len(sizes) < count:
        a, b = b, a + b
        p = next_prime(a)
        if p <= sizes[-1]:  # primes can collide for tiny seeds
            p = next_prime(sizes[-1] + 1)
        sizes.append(p)
    return sizes


def geometric_primes(count: int, start: int = 31, factor: float = 2.0) -> list[int]:
    """Prime schedule for a geometric growth policy (e.g. the δ=2 policy
    the paper rejects as space-hungry).  Used by the E5 experiment."""
    if count < 1:
        return []
    sizes = [next_prime(start)]
    while len(sizes) < count:
        target = int(sizes[-1] * factor) + 1
        sizes.append(next_prime(target))
    return sizes
