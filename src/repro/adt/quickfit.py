"""Quick-fit allocator: the third contender in the malloc shoot-out.

The paper evaluated "implementations f, b, s, and d described in
D.G. Korn and K-P Vo, 'In Search of a Better Malloc'" — a spectrum of
time-space trade-offs.  Quick fit is the classic fast point on that
spectrum: segregated free lists ("quick lists") for small size classes
serve most requests in O(1) without coalescing; large or unmatched
requests fall back to a first-fit tail.  It beats the coalescing free
list on time but hoards memory in its size-class lists — which is why
the arena still wins both dimensions on pathalias's trace (E4 measures
all three).
"""

from __future__ import annotations

from repro.adt.arena import ALIGN, ArenaStats
from repro.adt.freelist import FreeListAllocator
from repro.adt.trace import AllocationTrace

#: Size classes served by quick lists (bytes, post-alignment).  Chosen
#: to cover the node/link/name sizes that dominate pathalias traffic.
QUICK_CLASSES = (8, 16, 24, 32, 40, 48, 56, 64)


class QuickFitAllocator:
    """Segregated quick lists over a first-fit backing allocator."""

    def __init__(self, sbrk_chunk: int = 4096):
        self._backing = FreeListAllocator(sbrk_chunk=sbrk_chunk)
        self.stats: ArenaStats = self._backing.stats
        # size class -> list of recycled block capacities (sizes only;
        # the simulation does not track addresses for quick blocks)
        self._quick: dict[int, list[int]] = {
            cls: [] for cls in QUICK_CLASSES}
        self._live_class: dict[int, int] = {}  # block id -> class
        #: bytes parked on quick lists (the hoarding the paper's arena
        #: avoids by never recycling at all)
        self.parked_bytes = 0
        self._next_quick_id = -1  # synthetic ids for backing blocks

    def _class_for(self, size: int) -> int | None:
        rounded = (size + ALIGN - 1) & ~(ALIGN - 1)
        return rounded if rounded in self._quick else None

    def alloc(self, block: int, size: int) -> None:
        if size <= 0:
            raise ValueError("allocation size must be positive")
        cls = self._class_for(size)
        if cls is None:
            self._backing.alloc(block, size)
            return
        queue = self._quick[cls]
        self.stats.steps += 1  # size-class dispatch
        if queue:
            queue.pop()
            self.parked_bytes -= cls
            self.stats.allocated_bytes += size
            self.stats.wasted_bytes += cls - size
        else:
            # Carve a fresh block from the backing allocator; it will
            # live on the quick list forever after its first free.
            self._backing.alloc(self._next_quick_id, cls)
            self._backing._live.pop(self._next_quick_id)
            self._next_quick_id -= 1
            # Account the payload to the caller's request.
            self.stats.allocated_bytes += size - cls
            self.stats.wasted_bytes += cls - size
        self._live_class[block] = cls

    def free(self, block: int) -> None:
        cls = self._live_class.pop(block, None)
        self.stats.steps += 1
        if cls is None:
            self._backing.free(block)
            return
        self._quick[cls].append(cls)
        self.parked_bytes += cls

    def run(self, trace: AllocationTrace) -> ArenaStats:
        for event in trace:
            if event.op == "alloc":
                self.alloc(event.block, event.size)
            else:
                self.free(event.block)
        return self.stats
