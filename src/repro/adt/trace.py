"""Allocation traces: the workload for the allocator experiment (E4).

The paper ("Memory allocation woes") explains *why* the buffered-sbrk
arena won: "Most allocation takes place during the parsing phase, with
very little space freed.  After parsing, only minuscule amounts of space
are allocated, while just about everything is freed."  We reproduce that
allocation/free pattern as an explicit event trace, either synthesized
from node/link counts (the shape above) or in an adversarial
interleaved-free pattern used as a control.

Sizes mirror the original structs: a node is "a structure consisting
mostly of pointers and flags", a link holds four fields, and names are
short strings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

#: Simulated struct sizes in bytes (order-of-magnitude VAX-era values).
NODE_SIZE = 40
LINK_SIZE = 16
MEAN_NAME_SIZE = 8


@dataclass(frozen=True)
class TraceEvent:
    """One allocator operation.

    Attributes:
        op: ``"alloc"`` or ``"free"``.
        block: identifier tying a free to its allocation.
        size: bytes (only meaningful for allocs).
    """

    op: str
    block: int
    size: int = 0


class AllocationTrace:
    """An ordered list of alloc/free events with integrity checking."""

    def __init__(self, events: list[TraceEvent] | None = None):
        self.events: list[TraceEvent] = events or []

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def total_allocated(self) -> int:
        return sum(e.size for e in self.events if e.op == "alloc")

    def live_bytes_peak(self) -> int:
        """High-water mark of live bytes — the lower bound any allocator
        must reach; waste is measured against this."""
        sizes: dict[int, int] = {}
        live = peak = 0
        for event in self.events:
            if event.op == "alloc":
                sizes[event.block] = event.size
                live += event.size
                peak = max(peak, live)
            else:
                live -= sizes.pop(event.block)
        return peak

    def validate(self) -> None:
        """Every free matches a prior alloc; no double frees."""
        live: set[int] = set()
        for event in self.events:
            if event.op == "alloc":
                if event.block in live:
                    raise ValueError(f"block {event.block} allocated twice")
                live.add(event.block)
            elif event.op == "free":
                if event.block not in live:
                    raise ValueError(f"free of dead block {event.block}")
                live.remove(event.block)
            else:
                raise ValueError(f"bad op {event.op!r}")


def pathalias_trace(nodes: int, links: int, seed: int = 0,
                    churn: float = 0.02) -> AllocationTrace:
    """Synthesize the pathalias allocation pattern.

    Phase 1 (parse): allocate ``nodes`` node structs, ``links`` link
    structs and a name string per node, interleaved the way declarations
    arrive; a small fraction ``churn`` of blocks is freed mid-phase
    (duplicate declarations, discarded hash tables).

    Phase 2 (map+print): a trickle of allocations (the heap / route
    buffers), then everything still live is freed.
    """
    rng = random.Random(seed)
    trace = AllocationTrace()
    block = 0
    live: list[int] = []

    def alloc(size: int) -> None:
        nonlocal block
        trace.append(TraceEvent("alloc", block, size))
        live.append(block)
        block += 1

    # Phase 1: one node + name, then a burst of links, repeated.
    links_per_node = max(1, links // max(nodes, 1))
    for _ in range(nodes):
        alloc(NODE_SIZE)
        alloc(max(2, int(rng.gauss(MEAN_NAME_SIZE, 2))))
        for _ in range(links_per_node):
            alloc(LINK_SIZE)
        if live and rng.random() < churn:
            victim = live.pop(rng.randrange(len(live)))
            trace.append(TraceEvent("free", victim))

    # Phase 2: minuscule allocation, then free just about everything.
    for _ in range(max(1, nodes // 100)):
        alloc(LINK_SIZE)
    rng.shuffle(live)
    for victim in live:
        trace.append(TraceEvent("free", victim))
    live.clear()
    return trace


def churning_trace(operations: int, seed: int = 0) -> AllocationTrace:
    """Adversarial control: allocations and frees fully interleaved, the
    pattern where coalescing *should* pay off.  Keeps roughly half the
    blocks live at any time."""
    rng = random.Random(seed)
    trace = AllocationTrace()
    live: list[int] = []
    block = 0
    for _ in range(operations):
        if live and rng.random() < 0.5:
            victim = live.pop(rng.randrange(len(live)))
            trace.append(TraceEvent("free", victim))
        else:
            size = rng.choice((NODE_SIZE, LINK_SIZE, MEAN_NAME_SIZE))
            trace.append(TraceEvent("alloc", block, size))
            live.append(block)
            block += 1
    for victim in live:
        trace.append(TraceEvent("free", victim))
    return trace
