"""Command-line interface mirroring the historical tool.

Usage::

    pathalias -l localhost [options] [file ...]

Reads map files (or standard input), computes routes from the local
host, and writes one route per line to standard output.  Options follow
the original where the paper documents them (``-l``, ``-c``, ``-i``)
plus reproduction-specific switches for the experiments.

The serving tier lives behind subcommands (the flat form above stays
the default when the first argument is not one of them)::

    pathalias snapshot -o routes.snap [map ...]     build a snapshot
    pathalias snapshot --upgrade OLD NEW            rewrite v1 as v2
    pathalias update old.snap -o new.snap [map ...] diff-driven update
    pathalias lookup routes.snap dest [user]        one-shot query
    pathalias lookup --connect HOST:PORT dest       ... against a daemon
    pathalias serve routes.snap [--port N]          the lookup daemon
    pathalias serve routes.snap --workers N         ... as N SO_REUSEPORT
                                                    workers sharing one
                                                    mmapped snapshot
    pathalias federate NAME=MAP ... -o DIR          per-region snapshots
    pathalias federate ... --spawn                  one-command cluster
    pathalias serve --shard NAME=SNAP ...           the federation daemon
    pathalias serve --backend NAME=HOST:PORT ...    ... fanning out to
                                                    per-shard daemons
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.config import HeuristicConfig
from repro.core.pathalias import Pathalias
from repro.errors import PathaliasError
from repro.parser.lexgen import LexScanner
from repro.parser.scanner import Scanner


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pathalias",
        description="compute electronic-mail routes from connectivity "
                    "maps (Honeyman & Bellovin, USENIX 1986)")
    parser.add_argument("files", nargs="*",
                        help="map files (default: standard input)")
    parser.add_argument("-l", "--localhost", default="localhost",
                        help="name of the local host (route source)")
    parser.add_argument("-c", "--costs", action="store_true",
                        help="print costs (the paper's output layout)")
    parser.add_argument("-i", "--ignore-case", action="store_true",
                        help="fold host names to lower case")
    parser.add_argument("-s", "--second-best", action="store_true",
                        help="maintain second-best (domain-free) paths")
    parser.add_argument("--no-back-links", action="store_true",
                        help="do not invent links to unreachable hosts")
    parser.add_argument("--engine", choices=("compact", "reference"),
                        default="compact",
                        help="mapping engine: the compiled flat-array "
                             "engine (default) or the paper-shaped "
                             "reference implementation")
    parser.add_argument("--batch", metavar="DIR",
                        help="precompute a paths.<host> file for every "
                             "eligible source into DIR instead of "
                             "printing one table")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        metavar="N",
                        help="worker processes for --batch (0 = all "
                             "available CPUs; default 1; the "
                             "reference engine is always serial)")
    parser.add_argument("--lex", action="store_true",
                        help="use the table-driven (lex-style) scanner")
    parser.add_argument("--stats", action="store_true",
                        help="report phase timings and graph statistics "
                             "on standard error")
    parser.add_argument("--warnings", action="store_true",
                        help="report input warnings on standard error")
    parser.add_argument("--dot", metavar="FILE",
                        help="also write the shortest-path tree as "
                             "Graphviz DOT to FILE ('-' for stdout)")
    parser.add_argument("--check", action="store_true",
                        help="run map consistency checks and report "
                             "findings on standard error")
    parser.add_argument("--report", action="store_true",
                        help="print a full run report on standard "
                             "error (stats, timings, load, checks)")
    parser.add_argument("--trace", metavar="HOST",
                        help="explain the chosen route to HOST hop by "
                             "hop on standard error")
    return parser


def _run_batch(tool: Pathalias, named: list[tuple[str, str]],
               heuristics: HeuristicConfig, args) -> int:
    """Precompute route tables for every source (``--batch DIR``)."""
    import time

    from repro.core.batch import BatchMapper, default_jobs

    try:
        graph = tool.build(named)
        jobs = default_jobs() if args.jobs == 0 else max(1, args.jobs)
        if args.engine == "reference" and jobs > 1:
            print("pathalias: batch: the reference engine is always "
                  "serial; ignoring --jobs", file=sys.stderr)
            jobs = 1
        mapper = BatchMapper(graph, heuristics, jobs=jobs,
                             engine=args.engine)
        t0 = time.perf_counter()
        batch = mapper.run()
        count = mapper.write_paths_files(args.batch, batch=batch)
        elapsed = time.perf_counter() - t0
    except (PathaliasError, OSError) as exc:
        print(f"pathalias: {exc}", file=sys.stderr)
        return 1
    rate = count / elapsed if elapsed > 0 else float("inf")
    # batch.engine reports what actually ran ("compact/4", or the
    # serial-fallback note), not merely what was requested.
    print(f"pathalias: batch: {count} route tables -> {args.batch} "
          f"in {elapsed:.2f}s ({rate:.1f} tables/s, jobs={jobs}, "
          f"engine={batch.engine})", file=sys.stderr)
    return 0


#: First arguments that route into the service sub-CLI instead of the
#: historical flat option set.
SERVICE_COMMANDS = ("snapshot", "update", "lookup", "serve",
                    "federate", "inspect")


def build_service_parser(command: str) -> argparse.ArgumentParser:
    """One standalone parser per service command.

    Standalone (rather than argparse subparsers) so map files can
    follow ``-o``/``-j`` between the positionals via
    ``parse_intermixed_args``, which subparsers do not support.
    """
    if command == "snapshot":
        snap = argparse.ArgumentParser(
            prog="pathalias snapshot",
            description="precompute every source's routes into a "
                        "binary snapshot, or rewrite an existing "
                        "snapshot as format v2 (--upgrade)")
        snap.add_argument("files", nargs="*",
                          help="map files (default: standard input)")
        snap.add_argument("-o", "--out", metavar="FILE",
                          help="snapshot file to write "
                               "(atomic replace)")
        snap.add_argument("--upgrade", nargs=2,
                          metavar=("OLD", "NEW"),
                          help="instead of mapping: rewrite snapshot "
                               "OLD as format v2 at NEW, backfilling "
                               "per-state costs by remapping the "
                               "stored graph (no map files needed)")
        snap.add_argument("--format", type=int, choices=(1, 2),
                          default=2, dest="fmt",
                          help="snapshot format to write (default 2; "
                               "1 = the legacy layout without "
                               "per-state costs)")
        snap.add_argument("-j", "--jobs", type=int, default=1,
                          metavar="N",
                          help="worker processes (0 = all CPUs)")
        snap.add_argument("-s", "--second-best", action="store_true",
                          help="maintain second-best (domain-free) "
                               "paths")
        snap.add_argument("--no-back-links", action="store_true",
                          help="do not invent links to unreachable "
                               "hosts")
        snap.add_argument("-i", "--ignore-case", action="store_true",
                          help="fold host names to lower case")
        return snap

    if command == "update":
        upd = argparse.ArgumentParser(
            prog="pathalias update",
            description="rebuild a snapshot for a revised map, "
                        "remapping only the sources the revision can "
                        "affect")
        upd.add_argument("snapshot", help="the previous snapshot")
        upd.add_argument("files", nargs="*",
                         help="revised map files (default: standard "
                              "input)")
        upd.add_argument("-o", "--out", required=True, metavar="FILE",
                         help="snapshot file to write")
        upd.add_argument("-j", "--jobs", type=int, default=1,
                         metavar="N",
                         help="worker processes (0 = all CPUs)")
        upd.add_argument("--full-threshold", type=float, default=0.5,
                         metavar="F",
                         help="affected-source fraction beyond which "
                              "a full rebuild is cheaper (default "
                              "0.5)")
        upd.add_argument("--format", type=int, choices=(1, 2),
                         default=None, dest="fmt",
                         help="snapshot format to write (default: "
                              "keep the old snapshot's format, so "
                              "incremental splicing stays possible; "
                              "asking for the other format migrates "
                              "with one full rebuild)")
        upd.add_argument("-i", "--ignore-case", action="store_true",
                         help="fold host names to lower case")
        return upd

    if command == "lookup":
        look = argparse.ArgumentParser(
            prog="pathalias lookup",
            description="one-shot route lookup against a snapshot "
                        "file, or (--connect) against a running "
                        "daemon — same output either way")
        look.add_argument("snapshot", nargs="?",
                          help="snapshot file (omit with --connect)")
        look.add_argument("destination")
        look.add_argument("user", nargs="?",
                          help="instantiate the route for this user")
        look.add_argument("-l", "--localhost", metavar="HOST",
                          help="source table to search (default: the "
                               "snapshot's/daemon's first source)")
        look.add_argument("--connect", metavar="HOST:PORT",
                          help="query a running route or federation "
                               "daemon instead of opening a snapshot")
        return look

    if command == "inspect":
        ins = argparse.ArgumentParser(
            prog="pathalias inspect",
            description="print a snapshot's block map: per-source "
                        "section tags, offsets, sizes, and the "
                        "compiled dispatch automaton's shape")
        ins.add_argument("snapshot", help="snapshot file to inspect")
        ins.add_argument("-l", "--localhost", metavar="HOST",
                         help="inspect only this source's table "
                              "(default: every source)")
        return ins

    if command == "federate":
        fed = argparse.ArgumentParser(
            prog="pathalias federate",
            description="build one snapshot per regional map and "
                        "report the gateway picture between them")
        fed.add_argument("regions", nargs="+", metavar="NAME=MAPFILE",
                         help="a shard name and its regional map file")
        fed.add_argument("-o", "--out-dir", required=True,
                         metavar="DIR",
                         help="directory for the NAME.snap files")
        fed.add_argument("-j", "--jobs", type=int, default=1,
                         metavar="N",
                         help="worker processes per snapshot (0 = "
                              "all CPUs)")
        fed.add_argument("-s", "--second-best", action="store_true",
                         help="maintain second-best (domain-free) "
                              "paths")
        fed.add_argument("--no-back-links", action="store_true",
                         help="do not invent links to unreachable "
                              "hosts")
        fed.add_argument("-i", "--ignore-case", action="store_true",
                         help="fold host names to lower case")
        fed.add_argument("--spawn", action="store_true",
                         help="after building the snapshots, spawn "
                              "one route daemon per shard and run the "
                              "fan-out front end over them — a "
                              "one-command local cluster")
        fed.add_argument("--host", default="127.0.0.1",
                         help="bind address for --spawn daemons "
                              "(default 127.0.0.1)")
        fed.add_argument("--port", type=int, default=4176,
                         help="front-end TCP port for --spawn "
                              "(default 4176; shard daemons always "
                              "take ephemeral ports)")
        fed.add_argument("--workers", type=int, default=1,
                         metavar="N",
                         help="run each --spawn shard daemon as N "
                              "SO_REUSEPORT workers sharing one "
                              "mmapped snapshot (default 1)")
        return fed

    srv = argparse.ArgumentParser(
        prog="pathalias serve",
        description="run the route lookup daemon on a snapshot, or "
                    "the federation daemon over named shards "
                    "(--shard)")
    srv.add_argument("snapshot", nargs="?",
                     help="snapshot file (single-snapshot mode; omit "
                          "when using --shard)")
    srv.add_argument("--shard", action="append", default=[],
                     metavar="NAME=SNAPSHOT",
                     help="serve this snapshot as a named federation "
                          "shard (repeatable; switches to the "
                          "federation daemon)")
    srv.add_argument("--backend", action="append", default=[],
                     metavar="NAME=HOST:PORT",
                     help="federate this shard from a remote route "
                          "daemon instead of a local snapshot — whole "
                          "lookups fan out to it over sockets "
                          "(repeatable; mixes with --shard)")
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    srv.add_argument("--port", type=int, default=4176,
                     help="TCP port (default 4176; 0 = ephemeral)")
    srv.add_argument("--source", metavar="HOST",
                     help="default source table (default: the "
                          "snapshot's first source)")
    srv.add_argument("--workers", type=int, default=1, metavar="N",
                     help="serve from N SO_REUSEPORT worker processes "
                          "sharing one mmapped snapshot copy (default "
                          "1; single-snapshot mode only)")
    srv.add_argument("--format", type=int, choices=(1, 2),
                     default=None, dest="fmt",
                     help="require the served snapshot(s) to be this "
                          "format version (default: serve either)")
    srv.add_argument("--no-pipeline", action="store_false",
                     dest="pipeline",
                     help="talk lockstep to --backend daemons even "
                          "when they support tagged pipelining "
                          "(federation mode only)")
    srv.add_argument("--dispatch", choices=("fsm", "dict"),
                     default="fsm",
                     help="suffix-lookup dispatch: the compiled "
                          "automaton (fsm, default) or the original "
                          "per-suffix dict walk (dict — the "
                          "differential oracle; forces --no-cache)")
    srv.add_argument("--cache", type=int, default=None, metavar="SIZE",
                     help="bound the generation-stamped (source, "
                          "dest) result cache at SIZE hot pairs "
                          "(default 4096); invalidated O(1) on every "
                          "RELOAD/ATTACH/DETACH/NOTIFY")
    srv.add_argument("--no-cache", action="store_true",
                     help="serve every lookup uncached (pins a "
                          "differential oracle; implied by "
                          "--dispatch dict)")
    return srv


def _parse_named_pairs(pairs: list[str], form: str) -> dict[str, str]:
    """Split ``NAME=VALUE`` shard arguments, rejecting malformed or
    duplicate names."""
    out: dict[str, str] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name or not value:
            raise PathaliasError(
                f"{pair!r} is not of the form {form}")
        if name in out:
            raise PathaliasError(f"duplicate shard name {name!r}")
        out[name] = value
    return out


def _read_named(files: list[str]) -> list[tuple[str, str]] | None:
    """Read map inputs; None (after reporting) on I/O failure."""
    if not files:
        return [("<stdin>", sys.stdin.read())]
    named = []
    for path in files:
        try:
            with open(path, "r") as handle:
                named.append((path, handle.read()))
        except OSError as exc:
            print(f"pathalias: {exc}", file=sys.stderr)
            return None
    return named


def _effective_jobs(jobs: int) -> int:
    from repro.core.batch import default_jobs

    return default_jobs() if jobs == 0 else max(1, jobs)


def _daemon_lookup(args) -> int:
    """``pathalias lookup --connect HOST:PORT dest [user]`` — the
    snapshot-file lookup's output, answered by a running daemon.

    The snapshot positional is unused, so argparse may have parked the
    destination in its slot; the non-empty positionals, in order, are
    the destination and the optional user.
    """
    from repro.service.backend import parse_backend_spec
    from repro.service.daemon import DaemonRouteDatabase

    addr = parse_backend_spec(args.connect)
    if addr is None:
        raise PathaliasError(
            f"--connect {args.connect!r} is not of the form HOST:PORT")
    positionals = [p for p in (args.snapshot, args.destination,
                               args.user) if p is not None]
    if not 1 <= len(positionals) <= 2:
        raise PathaliasError(
            "lookup --connect takes <destination> [user]")
    destination = positionals[0]
    user = positionals[1] if len(positionals) == 2 else "%s"
    with DaemonRouteDatabase(addr, source=args.localhost) as db:
        cost, resolution = db.resolve_with_cost(destination, user)
    print(f"{cost}\t{resolution.matched}\t{resolution.address}")
    return 0


def _run_cluster(shard_snaps: dict, host: str, port: int,
                 require_format: int | None = None,
                 workers: int = 1) -> int:
    """``pathalias federate --spawn``: one daemon process per shard
    snapshot (ephemeral ports, parsed from their startup line), then
    the fan-out front end over them, in the foreground.  Children are
    terminated when the front end exits — SIGTERM is translated into
    the same clean shutdown SIGINT gets, so a supervisor's terminate
    never orphans the shard daemons.  ``workers > 1`` spawns each
    shard daemon as that many SO_REUSEPORT workers (they mmap one
    shared snapshot copy), which the front end fans out to like any
    other backend.
    """
    import signal
    import subprocess
    import threading

    from repro.service.federation import run_federation_daemon

    def _terminated(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminated)

    def _forward_stderr(name: str, stream) -> None:
        # Keep draining the child's stderr pipe for its whole life —
        # a full 64 KiB pipe would block the daemon's next stderr
        # write inside its event loop and stall the shard — and
        # forward the lines so operators see the daemons' diagnostics.
        for line in stream:
            sys.stderr.write(f"[{name}] {line}")
            sys.stderr.flush()

    procs = []
    backends = {}
    try:
        for name, snap in shard_snaps.items():
            cmd = [sys.executable, "-m", "repro.cli", "serve", snap,
                   "--host", host, "--port", "0"]
            if workers > 1:
                cmd += ["--workers", str(workers)]
            proc = subprocess.Popen(
                cmd, stderr=subprocess.PIPE, text=True)
            procs.append(proc)
            # scan stderr for the listening line — warnings or other
            # chatter may precede it, and EOF (child died) is the
            # only failure signal, so a healthy-but-chatty daemon is
            # never misdiagnosed and a dead one never blocks us
            chatter: list[str] = []
            while True:
                line = proc.stderr.readline()
                if not line:
                    detail = " / ".join(
                        c.strip() for c in chatter) or "no output"
                    raise PathaliasError(
                        f"shard daemon {name} failed to start: "
                        f"{detail}")
                if "listening on" in line:
                    break
                chatter.append(line)
                sys.stderr.write(f"[{name}] {line}")
            backends[name] = line.rsplit("listening on", 1)[1].strip()
            threading.Thread(target=_forward_stderr,
                             args=(name, proc.stderr),
                             daemon=True).start()
            print(f"pathalias: federate: spawned shard daemon {name} "
                  f"(pid {proc.pid}) on {backends[name]}",
                  file=sys.stderr, flush=True)
        return run_federation_daemon(
            {}, host=host, port=port, backends=backends,
            require_format=require_format)
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()


def service_main(argv: list[str]) -> int:
    """Entry point for the snapshot/update/lookup/serve subcommands."""
    import time

    from repro.errors import PathaliasError

    command = argv[0]
    # parse_intermixed_args: map files may follow -o/-j between the
    # positionals, e.g. ``pathalias update old.snap -o new.snap *.map``.
    args = build_service_parser(command).parse_intermixed_args(argv[1:])
    args.command = command

    try:
        if args.command == "snapshot":
            from repro.service.store import (
                build_snapshot,
                upgrade_snapshot,
            )

            if args.upgrade:
                if args.files or args.out:
                    raise PathaliasError(
                        "--upgrade rewrites an existing snapshot; it "
                        "takes no map files and no -o")
                if args.fmt != 2:
                    raise PathaliasError(
                        "--upgrade always writes format v2 (to write "
                        "v1, rebuild from the map with --format 1)")
                if args.ignore_case or args.second_best \
                        or args.no_back_links:
                    raise PathaliasError(
                        "--upgrade takes no build options (-i/-s/"
                        "--no-back-links): the old snapshot's header "
                        "already records how its tables were mapped")
                old_path, new_path = args.upgrade
                t0 = time.perf_counter()
                info = upgrade_snapshot(
                    old_path, new_path,
                    jobs=_effective_jobs(args.jobs))
                elapsed = time.perf_counter() - t0
                print(f"pathalias: snapshot: upgraded {old_path} -> "
                      f"{info.path} (format v{info.format}, "
                      f"{len(info.sources)} sources, {info.size} "
                      f"bytes) in {elapsed:.2f}s", file=sys.stderr)
                return 0
            if not args.out:
                raise PathaliasError("snapshot needs -o FILE (or "
                                     "--upgrade OLD NEW)")
            named = _read_named(args.files)
            if named is None:
                return 2
            heuristics = HeuristicConfig(
                second_best=args.second_best,
                infer_back_links=not args.no_back_links)
            tool = Pathalias(heuristics=heuristics,
                             case_fold=args.ignore_case)
            t0 = time.perf_counter()
            graph = tool.build(named)
            info = build_snapshot(graph, args.out, heuristics,
                                  jobs=_effective_jobs(args.jobs),
                                  case_fold=args.ignore_case,
                                  fmt=args.fmt)
            elapsed = time.perf_counter() - t0
            print(f"pathalias: snapshot: {len(info.sources)} sources "
                  f"-> {info.path} ({info.size} bytes, format "
                  f"v{info.format}) in {elapsed:.2f}s "
                  f"(engine={info.engine})", file=sys.stderr)
            return 0

        if args.command == "update":
            from repro.service.incremental import update_snapshot
            from repro.service.store import SnapshotReader

            named = _read_named(args.files)
            if named is None:
                return 2
            # The old snapshot knows how its map was parsed: honour
            # its case-folding flag (or the explicit -i) so the
            # revision diffs cleanly, and tell update_snapshot which
            # folding actually applied so the new header is truthful.
            reader = SnapshotReader.open(args.snapshot)
            case_fold = args.ignore_case or reader.case_fold
            tool = Pathalias(case_fold=case_fold)
            graph = tool.build(named)
            report = update_snapshot(
                reader, graph, args.out,
                jobs=_effective_jobs(args.jobs),
                full_threshold=args.full_threshold,
                case_fold=case_fold, fmt=args.fmt)
            print(f"pathalias: update: {report.summary()} -> "
                  f"{report.out_path} in {report.seconds:.2f}s",
                  file=sys.stderr)
            return 0

        if args.command == "lookup":
            if args.connect:
                return _daemon_lookup(args)
            from repro.service.store import (
                SnapshotError,
                SnapshotReader,
            )

            if args.snapshot is None:
                raise PathaliasError(
                    "lookup needs a snapshot file (or --connect "
                    "HOST:PORT)")
            reader = SnapshotReader.open(args.snapshot)
            source = args.localhost
            if source is None:
                sources = reader.sources()
                if not sources:
                    raise SnapshotError(
                        f"{args.snapshot}: snapshot has no source "
                        f"tables")
                source = sources[0]
            cost, resolution = reader.table(source).resolve_with_cost(
                args.destination,
                args.user if args.user is not None else "%s")
            print(f"{cost}\t{resolution.matched}\t"
                  f"{resolution.address}")
            return 0

        if args.command == "inspect":
            from repro.service.store import SnapshotReader

            reader = SnapshotReader.open(args.snapshot)
            sources = ([args.localhost] if args.localhost
                       else reader.sources())
            print(f"{args.snapshot}: format v{reader.version}, "
                  f"{len(reader.sources())} sources")
            for source in sources:
                table = reader.table(source)
                blocks = table.block_map()
                if not blocks:
                    print(f"source {source}: v1 layout "
                          f"({len(table)} records, no tagged blocks)")
                    continue
                print(f"source {source}: {len(table)} records, "
                      f"{len(blocks)} blocks")
                for tag, off, length in blocks:
                    line = (f"  {tag}  off={off:<10d} "
                            f"len={length:d}")
                    if tag == "DFSM":
                        auto = table.flat_automaton()
                        line += (f"  states={auto.state_count} "
                                 f"edges={auto.edge_count}")
                    print(line)
            return 0

        if args.command == "federate":
            from repro.service.shard import FederationView, Shard
            from repro.service.store import build_snapshot

            regions = _parse_named_pairs(args.regions, "NAME=MAPFILE")
            heuristics = HeuristicConfig(
                second_best=args.second_best,
                infer_back_links=not args.no_back_links)
            tool = Pathalias(heuristics=heuristics,
                             case_fold=args.ignore_case)
            out_dir = Path(args.out_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            shards = []
            shard_args = []
            for name, map_file in regions.items():
                named = _read_named([map_file])
                if named is None:
                    return 2
                out = out_dir / f"{name}.snap"
                info = build_snapshot(
                    tool.build(named), out, heuristics,
                    jobs=_effective_jobs(args.jobs),
                    case_fold=args.ignore_case)
                print(f"pathalias: federate: {name}: "
                      f"{len(info.sources)} sources -> {info.path} "
                      f"({info.size} bytes)", file=sys.stderr)
                shards.append(Shard.open(name, out))
                shard_args.append(f"--shard {name}={out}")
            view = FederationView(shards)
            names = view.shard_names()
            for i, a in enumerate(names):
                for b in names[i + 1:]:
                    gates = view.gateways(a, b)
                    print(f"pathalias: federate: gateways {a}<->{b}: "
                          f"{', '.join(gates) if gates else '(none)'}",
                          file=sys.stderr)
            print(f"pathalias: federate: serve with: pathalias serve "
                  f"{' '.join(shard_args)}", file=sys.stderr)
            if args.spawn:
                return _run_cluster(
                    {shard.name: str(shard.path) for shard in shards},
                    host=args.host, port=args.port,
                    workers=args.workers)
            if args.workers != 1:
                print("pathalias: federate: --workers only applies "
                      "with --spawn; ignored", file=sys.stderr)
            return 0

        if args.command == "serve":
            if args.shard or args.backend:
                from repro.service.federation import (
                    run_federation_daemon,
                )

                if args.snapshot is not None:
                    raise PathaliasError(
                        "give either a snapshot or --shard/--backend "
                        "pairs, not both")
                if args.workers != 1:
                    raise PathaliasError(
                        "--workers applies to single-snapshot serving; "
                        "scale a federation by giving each --backend "
                        "daemon its own --workers instead")
                shards = _parse_named_pairs(args.shard,
                                            "NAME=SNAPSHOT")
                backends = _parse_named_pairs(args.backend,
                                              "NAME=HOST:PORT")
                both = sorted(set(shards) & set(backends))
                if both:
                    raise PathaliasError(
                        f"shard name(s) {', '.join(both)} given as "
                        f"both --shard and --backend")
                return run_federation_daemon(
                    shards, host=args.host, port=args.port,
                    source=args.source, require_format=args.fmt,
                    backends=backends, pipeline=args.pipeline,
                    dispatch=args.dispatch,
                    cache_size=0 if args.no_cache else args.cache)
            if args.snapshot is None:
                raise PathaliasError(
                    "serve needs a snapshot file or --shard/--backend "
                    "pairs")
            from repro.service.daemon import run_daemon

            return run_daemon(args.snapshot, host=args.host,
                              port=args.port, source=args.source,
                              require_format=args.fmt,
                              workers=args.workers,
                              dispatch=args.dispatch,
                              cache_size=0 if args.no_cache else
                              args.cache)
    except PathaliasError as exc:
        print(f"pathalias: {args.command}: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SERVICE_COMMANDS:
        return service_main(argv)
    args = build_arg_parser().parse_args(argv)

    heuristics = HeuristicConfig(
        second_best=args.second_best,
        infer_back_links=not args.no_back_links,
    )
    tool = Pathalias(
        heuristics=heuristics,
        case_fold=args.ignore_case,
        scanner_class=LexScanner if args.lex else Scanner,
        engine=args.engine,
    )

    named = _read_named(args.files)
    if named is None:
        return 2

    if args.batch:
        return _run_batch(tool, named, heuristics, args)

    try:
        result = tool.run_detailed(named, args.localhost)
    except PathaliasError as exc:
        print(f"pathalias: {exc}", file=sys.stderr)
        return 1

    table = result.table
    print(table.format_paper() if args.costs else table.format_tab())

    if args.dot:
        from repro.graph.export import tree_to_dot

        dot_text = tree_to_dot(result.mapping,
                               title=f"routes from {args.localhost}")
        if args.dot == "-":
            print(dot_text, end="")
        else:
            with open(args.dot, "w") as handle:
                handle.write(dot_text)

    if args.check:
        from repro.graph.check import check_map

        findings = check_map(result.graph)
        for finding in findings:
            print(f"pathalias: check: {finding}", file=sys.stderr)
        print(f"pathalias: check: {findings.summary()}",
              file=sys.stderr)

    if args.report:
        from repro.core.report import run_report

        print(run_report(result), file=sys.stderr)

    if args.trace:
        from repro.core.explain import explain_route
        from repro.errors import RouteError

        try:
            explanation = explain_route(result.mapping, args.trace,
                                        heuristics)
            print(explanation.describe(), file=sys.stderr)
        except RouteError as exc:
            print(f"pathalias: trace: {exc}", file=sys.stderr)

    if args.warnings:
        for warning in table.warnings:
            print(f"pathalias: warning: {warning}", file=sys.stderr)
    for name in table.unreachable:
        print(f"pathalias: {name}: unreachable", file=sys.stderr)

    if args.stats:
        from repro.graph.stats import compute_stats

        stats = compute_stats(result.graph)
        times = result.times
        print(f"pathalias: {stats.nodes} nodes, {stats.links} links "
              f"(e/v = {stats.sparsity:.2f})", file=sys.stderr)
        print(f"pathalias: scan {times.scan:.3f}s parse {times.parse:.3f}s"
              f" build {times.build:.3f}s map {times.map:.3f}s "
              f"print {times.print:.3f}s", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
