"""Command-line interface mirroring the historical tool.

Usage::

    pathalias -l localhost [options] [file ...]

Reads map files (or standard input), computes routes from the local
host, and writes one route per line to standard output.  Options follow
the original where the paper documents them (``-l``, ``-c``, ``-i``)
plus reproduction-specific switches for the experiments.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import HeuristicConfig
from repro.core.pathalias import Pathalias
from repro.errors import PathaliasError
from repro.parser.lexgen import LexScanner
from repro.parser.scanner import Scanner


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pathalias",
        description="compute electronic-mail routes from connectivity "
                    "maps (Honeyman & Bellovin, USENIX 1986)")
    parser.add_argument("files", nargs="*",
                        help="map files (default: standard input)")
    parser.add_argument("-l", "--localhost", default="localhost",
                        help="name of the local host (route source)")
    parser.add_argument("-c", "--costs", action="store_true",
                        help="print costs (the paper's output layout)")
    parser.add_argument("-i", "--ignore-case", action="store_true",
                        help="fold host names to lower case")
    parser.add_argument("-s", "--second-best", action="store_true",
                        help="maintain second-best (domain-free) paths")
    parser.add_argument("--no-back-links", action="store_true",
                        help="do not invent links to unreachable hosts")
    parser.add_argument("--engine", choices=("compact", "reference"),
                        default="compact",
                        help="mapping engine: the compiled flat-array "
                             "engine (default) or the paper-shaped "
                             "reference implementation")
    parser.add_argument("--batch", metavar="DIR",
                        help="precompute a paths.<host> file for every "
                             "eligible source into DIR instead of "
                             "printing one table")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        metavar="N",
                        help="worker processes for --batch (0 = all "
                             "available CPUs; default 1; the "
                             "reference engine is always serial)")
    parser.add_argument("--lex", action="store_true",
                        help="use the table-driven (lex-style) scanner")
    parser.add_argument("--stats", action="store_true",
                        help="report phase timings and graph statistics "
                             "on standard error")
    parser.add_argument("--warnings", action="store_true",
                        help="report input warnings on standard error")
    parser.add_argument("--dot", metavar="FILE",
                        help="also write the shortest-path tree as "
                             "Graphviz DOT to FILE ('-' for stdout)")
    parser.add_argument("--check", action="store_true",
                        help="run map consistency checks and report "
                             "findings on standard error")
    parser.add_argument("--report", action="store_true",
                        help="print a full run report on standard "
                             "error (stats, timings, load, checks)")
    parser.add_argument("--trace", metavar="HOST",
                        help="explain the chosen route to HOST hop by "
                             "hop on standard error")
    return parser


def _run_batch(tool: Pathalias, named: list[tuple[str, str]],
               heuristics: HeuristicConfig, args) -> int:
    """Precompute route tables for every source (``--batch DIR``)."""
    import time

    from repro.core.batch import BatchMapper, default_jobs

    try:
        graph = tool.build(named)
        jobs = default_jobs() if args.jobs == 0 else max(1, args.jobs)
        if args.engine == "reference" and jobs > 1:
            print("pathalias: batch: the reference engine is always "
                  "serial; ignoring --jobs", file=sys.stderr)
            jobs = 1
        mapper = BatchMapper(graph, heuristics, jobs=jobs,
                             engine=args.engine)
        t0 = time.perf_counter()
        batch = mapper.run()
        count = mapper.write_paths_files(args.batch, batch=batch)
        elapsed = time.perf_counter() - t0
    except (PathaliasError, OSError) as exc:
        print(f"pathalias: {exc}", file=sys.stderr)
        return 1
    rate = count / elapsed if elapsed > 0 else float("inf")
    # batch.engine reports what actually ran ("compact/4", or the
    # serial-fallback note), not merely what was requested.
    print(f"pathalias: batch: {count} route tables -> {args.batch} "
          f"in {elapsed:.2f}s ({rate:.1f} tables/s, jobs={jobs}, "
          f"engine={batch.engine})", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)

    heuristics = HeuristicConfig(
        second_best=args.second_best,
        infer_back_links=not args.no_back_links,
    )
    tool = Pathalias(
        heuristics=heuristics,
        case_fold=args.ignore_case,
        scanner_class=LexScanner if args.lex else Scanner,
        engine=args.engine,
    )

    if args.files:
        named = []
        for path in args.files:
            try:
                with open(path, "r") as handle:
                    named.append((path, handle.read()))
            except OSError as exc:
                print(f"pathalias: {exc}", file=sys.stderr)
                return 2
    else:
        named = [("<stdin>", sys.stdin.read())]

    if args.batch:
        return _run_batch(tool, named, heuristics, args)

    try:
        result = tool.run_detailed(named, args.localhost)
    except PathaliasError as exc:
        print(f"pathalias: {exc}", file=sys.stderr)
        return 1

    table = result.table
    print(table.format_paper() if args.costs else table.format_tab())

    if args.dot:
        from repro.graph.export import tree_to_dot

        dot_text = tree_to_dot(result.mapping,
                               title=f"routes from {args.localhost}")
        if args.dot == "-":
            print(dot_text, end="")
        else:
            with open(args.dot, "w") as handle:
                handle.write(dot_text)

    if args.check:
        from repro.graph.check import check_map

        findings = check_map(result.graph)
        for finding in findings:
            print(f"pathalias: check: {finding}", file=sys.stderr)
        print(f"pathalias: check: {findings.summary()}",
              file=sys.stderr)

    if args.report:
        from repro.core.report import run_report

        print(run_report(result), file=sys.stderr)

    if args.trace:
        from repro.core.explain import explain_route
        from repro.errors import RouteError

        try:
            explanation = explain_route(result.mapping, args.trace,
                                        heuristics)
            print(explanation.describe(), file=sys.stderr)
        except RouteError as exc:
            print(f"pathalias: trace: {exc}", file=sys.stderr)

    if args.warnings:
        for warning in table.warnings:
            print(f"pathalias: warning: {warning}", file=sys.stderr)
    for name in table.unreachable:
        print(f"pathalias: {name}: unreachable", file=sys.stderr)

    if args.stats:
        from repro.graph.stats import compute_stats

        stats = compute_stats(result.graph)
        times = result.times
        print(f"pathalias: {stats.nodes} nodes, {stats.links} links "
              f"(e/v = {stats.sparsity:.2f})", file=sys.stderr)
        print(f"pathalias: scan {times.scan:.3f}s parse {times.parse:.3f}s"
              f" build {times.build:.3f}s map {times.map:.3f}s "
              f"print {times.print:.3f}s", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
