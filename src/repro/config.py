"""Cost symbols, global constants, and heuristic configuration.

The paper (INPUT section) publishes the symbolic link-cost table that the
authors tuned "until, in the estimation of experienced users, the paths
produced were reasonable".  The values here are copied verbatim from that
table.  ``HIGH``, ``LOW``, ``DEAD`` and ``INF`` come from the historical
tool and are documented as extensions in DESIGN.md.

Heuristic penalties (mixed-syntax, gateway, domain relay) are *not* given
numeric values in the paper — only described as "heavy" or "essentially
infinite" — so they live in :class:`HeuristicConfig` where every
experiment can set or ablate them.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Effectively-infinite cost.  Chosen (like the original's ``INF``) to be
#: large enough that no realistic path sum reaches it, yet small enough
#: that adding a handful of them never overflows anything meaningful.
INF = 30_000_000

#: Cost of a link declared dead: used only when nothing else works.
DEAD = INF // 2

#: The paper's cost table, verbatim ("INPUT", table on page 3).
COST_SYMBOLS: dict[str, int] = {
    "LOCAL": 25,
    "DEDICATED": 95,
    "DIRECT": 200,
    "DEMAND": 300,
    "HOURLY": 500,
    "EVENING": 1800,
    "POLLED": 5000,
    "DAILY": 5000,
    "WEEKLY": 30000,
    # Historical extensions (pathalias 9.x), documented in DESIGN.md:
    "DEAD": DEAD,
    "HIGH": -5,   # administrator nudge: make a link slightly more attractive
    "LOW": 5,     # ... or slightly less attractive
    "FAST": -80,  # high-speed link discount
}

#: Cost of a link whose declaration names no cost.  The historical tool
#: used 4000 (between DAILY and the polled grades) so that unannotated
#: map entries neither dominate nor disappear.
DEFAULT_LINK_COST = 4000

#: Characters accepted as routing operators.  Position relative to the
#: host name determines direction: prefix => host on the RIGHT of the
#: operator in addresses (``%s@host``), postfix => host on the LEFT
#: (``host!%s``).
ROUTING_OPERATORS = frozenset("!@:%")

#: Default routing operator when a link declaration names none.
DEFAULT_OPERATOR = "!"


@dataclass
class HeuristicConfig:
    """Tunable knobs for the mapping-phase cost heuristics.

    The defaults reproduce the behaviour the paper describes; each knob
    exists so the benchmark harness can ablate a single heuristic.

    Attributes:
        mixed_penalty: added when a LEFT (``!``-style) link extends a path
            that already contains a RIGHT (``@``-style) link.  The paper's
            own 1981 example shows the benign direction (``!...!%s@host``)
            unpenalized, so only ``!``-after-``@`` pays.  "Heavy": an order
            of magnitude above the most expensive normal link.
        gateway_penalty: added when a path enters a gatewayed network
            through a host that is not a declared gateway ("severely
            penalized").
        domain_relay_penalty: added to any real (non-structural) link that
            extends a path which has already traversed a domain — the
            ARPANET "don't use us as a relay" restriction.
        subdomain_up_penalty: cost of the child-domain -> parent-domain
            edge ("essentially infinite"), preventing routes like
            ``caip!seismo.css.gov.edu.rutgers!%s``.
        infer_back_links: invent reverse links toward unreachable hosts
            that declared outbound connections, then continue mapping.
        back_link_factor: multiplier applied to the declared forward cost
            when inventing the reverse link (1 = reuse the forward cost).
        second_best: maintain the best *domain-free* path alongside the
            best path, and continue routes beyond a host from whichever is
            usable — the algorithm the paper reports experimenting with
            (PROBLEMS section).
        tree_only: historical strict-tree behaviour (ignores second_best).
    """

    mixed_penalty: int = 10 * COST_SYMBOLS["WEEKLY"]
    gateway_penalty: int = DEAD
    domain_relay_penalty: int = INF
    subdomain_up_penalty: int = INF
    infer_back_links: bool = True
    back_link_factor: int = 1
    second_best: bool = False

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical settings."""
        for name in ("mixed_penalty", "gateway_penalty",
                     "domain_relay_penalty", "subdomain_up_penalty"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.back_link_factor < 1:
            raise ValueError("back_link_factor must be >= 1")


#: Shared immutable default used when callers pass no config.
DEFAULT_HEURISTICS = HeuristicConfig()
