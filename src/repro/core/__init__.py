"""The paper's primary contribution: mapping and route printing.

``mapper`` implements the priority-queue variant of Dijkstra's algorithm
with the cost heuristics; ``dense`` is the textbook O(v^2) baseline it is
benchmarked against; ``route``/``printer`` implement the preorder
traversal that turns the shortest-path tree into printf-style routes;
``pathalias`` is the three-phase facade.
"""

from repro.core.alternates import (
    AlternateRoute,
    alternate_routes,
    resilience,
)
from repro.core.batch import (
    BatchMapper,
    BatchResult,
    query_single_destination,
    run_for_source,
)
from repro.core.dense import dense_dijkstra
from repro.core.explain import (
    HopExplanation,
    RouteExplanation,
    explain_route,
    verify_explanation,
)
from repro.core.mapper import Label, MapResult, Mapper, MapStats
from repro.core.pathalias import Pathalias, PhaseTimes, RunResult
from repro.core.printer import RouteTable, print_routes
from repro.core.route import RouteRecord, splice

__all__ = ["AlternateRoute", "alternate_routes", "resilience",
           "BatchMapper", "BatchResult", "query_single_destination",
           "run_for_source", "dense_dijkstra",
           "HopExplanation", "RouteExplanation", "explain_route",
           "verify_explanation", "Label", "MapResult",
           "Mapper", "MapStats", "Pathalias", "PhaseTimes", "RunResult",
           "RouteTable", "print_routes", "RouteRecord", "splice"]
