"""Alternate routes: k cheapest loopless paths to a destination.

Pathalias commits to one route per host; the paper concedes the cost —
users sometimes need "a circuitous route ... to bypass a dead link",
and the second-best extension (PROBLEMS) only covers the domain case.
This module generalizes: a Yen-style enumeration of the k cheapest
loopless paths under the *same* cost semantics as the mapper (each
candidate is produced by re-running the mapper on a graph with spur
edges removed), giving map maintainers a resilience view: does a host
have any fallback at all?

This is reproduction "future work" — faithful to the paper's cost
model, but beyond what the 1986 tool shipped; EXPERIMENTS.md lists it
under E16 (resilience) rather than as a paper claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import HeuristicConfig
from repro.core.mapper import Label, Mapper, MapResult
from repro.errors import RouteError
from repro.graph.build import Graph
from repro.graph.node import Link, Node


@dataclass(frozen=True)
class AlternateRoute:
    """One loopless path: host sequence and mapped cost."""

    hosts: tuple[str, ...]  # source ... destination (node names)
    cost: int

    @property
    def hop_count(self) -> int:
        return len(self.hosts) - 1


def _label_path(result: MapResult, destination: Node
                ) -> AlternateRoute | None:
    label = result.best(destination)
    if label is None:
        return None
    names: list[str] = []
    cursor: Label | None = label
    while cursor is not None:
        names.append(cursor.node.name)
        cursor = cursor.parent
    names.reverse()
    return AlternateRoute(tuple(names), label.cost)


def _map_without(graph: Graph, source: str,
                 removed: set[tuple[str, str]],
                 banned_nodes: set[str],
                 heuristics: HeuristicConfig | None) -> MapResult:
    """Run the mapper with some edges/nodes hidden, then restore."""
    hidden: list[tuple[Node, Link]] = []
    for node in graph.nodes:
        if node.deleted:
            continue
        keep: list[Link] = []
        for link in node.links:
            if (node.name, link.to.name) in removed \
                    or link.to.name in banned_nodes:
                hidden.append((node, link))
            else:
                keep.append(link)
        node.links = keep
    try:
        result = Mapper(graph, heuristics).run(source)
        # back links invented during the run must not leak either
        for owner, link in result.inferred:
            owner.links.remove(link)
        return result
    finally:
        for node, link in hidden:
            node.links.append(link)


def alternate_routes(graph: Graph, source: str, destination: str,
                     k: int = 3,
                     heuristics: HeuristicConfig | None = None
                     ) -> list[AlternateRoute]:
    """The k cheapest loopless host sequences from source to
    destination, cheapest first (Yen's algorithm over mapper runs)."""
    if k < 1:
        raise ValueError("k must be positive")
    target = graph.find(destination)
    if target is None:
        raise RouteError(f"unknown destination {destination!r}")

    cfg = heuristics
    first_result = _map_without(graph, source, set(), set(), cfg)
    first = _label_path(first_result, target)
    if first is None:
        raise RouteError(f"{destination!r} is unreachable")

    accepted: list[AlternateRoute] = [first]
    candidates: dict[tuple[str, ...], AlternateRoute] = {}

    while len(accepted) < k:
        previous = accepted[-1]
        for spur_index in range(len(previous.hosts) - 1):
            root = previous.hosts[:spur_index + 1]
            removed: set[tuple[str, str]] = set()
            for route in accepted:
                if route.hosts[:spur_index + 1] == root \
                        and len(route.hosts) > spur_index + 1:
                    removed.add((route.hosts[spur_index],
                                 route.hosts[spur_index + 1]))
            banned = set(root[:-1])  # loopless: exclude root interior
            spur_source = root[-1]
            result = _map_without(graph, spur_source, removed, banned,
                                  cfg)
            spur = _label_path(result, target)
            if spur is None:
                continue
            total_hosts = root[:-1] + spur.hosts
            if len(set(total_hosts)) != len(total_hosts):
                continue  # spur re-entered the root: not loopless
            root_cost = _path_cost(graph, root, cfg)
            if root_cost is None:
                continue
            candidate = AlternateRoute(total_hosts,
                                       root_cost + spur.cost)
            key = candidate.hosts
            existing = candidates.get(key)
            if existing is None or candidate.cost < existing.cost:
                candidates[key] = candidate
        fresh = [c for c in candidates.values()
                 if c.hosts not in {a.hosts for a in accepted}]
        if not fresh:
            break
        best = min(fresh, key=lambda c: (c.cost, c.hosts))
        accepted.append(best)
    return accepted


def _path_cost(graph: Graph, hosts: tuple[str, ...],
               heuristics: HeuristicConfig | None) -> int | None:
    """Cost of an explicit host sequence under plain edge weights.

    Heuristic penalties along the root prefix are approximated by the
    plain sum — acceptable because candidate ordering only needs to be
    consistent, and tests pin the no-heuristic case exactly.
    """
    total = 0
    for a, b in zip(hosts, hosts[1:]):
        node = graph.find(a)
        if node is None:
            return None
        best: int | None = None
        for link in node.links:
            if link.to.name == b and (best is None
                                      or link.cost < best):
                best = link.cost
        if best is None:
            return None
        total += best
    return total


def resilience(graph: Graph, source: str, destinations: list[str],
               heuristics: HeuristicConfig | None = None
               ) -> dict[str, int]:
    """Does a first-hop-disjoint fallback route exist?

    Returns ``{destination: score}``: 2 when the host is still
    reachable after the primary route's first-hop link is cut (a real
    fallback exists), 1 when that first hop is a single point of
    failure, 0 when the host is unreachable to begin with.
    """
    cfg = heuristics
    primary_result = _map_without(graph, source, set(), set(), cfg)
    out: dict[str, int] = {}
    for destination in destinations:
        target = graph.find(destination)
        primary = None if target is None \
            else _label_path(primary_result, target)
        if primary is None:
            out[destination] = 0
            continue
        if len(primary.hosts) < 2:
            out[destination] = 2  # the source itself: nothing to cut
            continue
        cut = {(primary.hosts[0], primary.hosts[1])}
        retry = _map_without(graph, source, cut, set(), cfg)
        out[destination] = 2 if _label_path(retry, target) else 1
    return out
