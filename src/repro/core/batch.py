"""Batch route computation: precompute tables for many sources.

"Although it would be convenient to compute the path to a destination
as needed, the cost of the calculation is prohibitively expensive.
Consequently, pathalias precomputes paths to all destinations" — per
*source*.  A site ran pathalias once for itself; the mapping project
(and experiment E13) runs it for every source.

This module makes that cheap in two layers:

* the graph is **compiled once** into a :class:`CompactGraph` and every
  source is mapped by the compiled engine
  (:class:`~repro.core.fastmap.CompactMapper`), which reuses its label
  scratch between runs and never mutates the shared graph — no
  back-link cleanup, no cross-run interference;
* with ``jobs > 1`` the sources **fan out across a process pool**: the
  pickled ``CompactGraph`` (flat arrays, no object graph) ships to each
  worker once, each worker keeps one scratch-reusing mapper for its
  lifetime, and the workers return portable route tables (plain
  tuples) that the coordinator rehydrates and merges in deterministic
  source order.  Any failure to stand up the pool degrades to the
  serial path.

The reference engine remains available (``engine="reference"``) as the
differential baseline, and :func:`run_for_source` still exposes the
historical leave-no-residue single run on the object graph.
"""

from __future__ import annotations

import os
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.config import HeuristicConfig
from repro.core.fastmap import (
    CompactMapper,
    build_portable_table,
    compact_route_table,
    table_from_portable,
)
from repro.core.mapper import Mapper, MapResult
from repro.core.printer import RouteTable, print_routes
from repro.graph.build import Graph
from repro.graph.compact import CompactGraph
from repro.graph.node import Node


def run_for_source(graph: Graph, source: str | Node,
                   heuristics: HeuristicConfig | None = None,
                   retain_back_links: bool = False) -> MapResult:
    """One reference-engine run that, by default, leaves the graph as
    it found it (invented back links are recorded, then removed)."""
    result = Mapper(graph, heuristics).run(source)
    if not retain_back_links:
        for owner, link in result.inferred:
            owner.links.remove(link)
    return result


@dataclass
class BatchResult:
    """Route tables per source, plus aggregate counters."""

    tables: dict[str, RouteTable] = field(default_factory=dict)
    total_pops: int = 0
    total_relaxations: int = 0
    #: how the tables were produced: "reference", "compact", or
    #: "compact/N" for an N-worker pool
    engine: str = "compact"

    def __len__(self) -> int:
        return len(self.tables)

    def __getitem__(self, source: str) -> RouteTable:
        return self.tables[source]

    def __iter__(self) -> Iterator[str]:
        return iter(self.tables)


# -- worker-process plumbing --------------------------------------------------

#: Lazily resolved (and test-injectable) pool class: importing
#: concurrent.futures.process drags in all of multiprocessing, a cost
#: every plain ``import repro`` should not pay.
ProcessPoolExecutor = None


def _pool_class():
    global ProcessPoolExecutor
    if ProcessPoolExecutor is None:
        from concurrent.futures import (
            ProcessPoolExecutor as pool_cls,
        )
        ProcessPoolExecutor = pool_cls
    return ProcessPoolExecutor


#: One compiled mapper per worker process, created by the initializer
#: and reused (scratch arrays included) for every chunk it serves.
_WORKER_MAPPER: CompactMapper | None = None

#: The per-source payload callable the pool was stood up with.
_WORKER_PAYLOAD = None


def _worker_init(cgraph: CompactGraph,
                 heuristics: HeuristicConfig | None,
                 payload_fn=None) -> None:
    global _WORKER_MAPPER, _WORKER_PAYLOAD
    _WORKER_MAPPER = CompactMapper(cgraph, heuristics)
    _WORKER_PAYLOAD = payload_fn


def _worker_apply(sources: list[str]):
    """Apply the configured payload to a chunk of sources."""
    mapper = _WORKER_MAPPER
    return [_WORKER_PAYLOAD(mapper, source) for source in sources]


def _portable_payload(mapper: CompactMapper, source: str):
    """The batch mapper's payload: a portable table plus run stats."""
    result = mapper.run(source)
    return (build_portable_table(result),
            mapper.stats.pops, mapper.stats.relaxations)


def map_sources(cgraph: CompactGraph, sources: Iterable[str],
                payload_fn, heuristics: HeuristicConfig | None = None,
                jobs: int | None = None):
    """Run ``payload_fn(mapper, source)`` for every source.

    The generic fan-out primitive behind :class:`BatchMapper` and the
    snapshot store: ``payload_fn`` must be a picklable module-level
    callable taking a scratch-reusing :class:`CompactMapper` and a
    source name, returning a picklable payload.  With ``jobs > 1`` the
    sources spread over a process pool (the compiled graph ships to
    each worker once); any failure to stand the pool up degrades to the
    always-available serial path.

    Returns ``(payloads, engine_tag)`` with payloads in ``sources``
    order and the tag describing what actually ran (``"compact"``,
    ``"compact/N"``, or the serial-fallback note).
    """
    wanted = list(sources)
    jobs = jobs or 0
    if jobs > 1 and len(wanted) > 1:
        try:
            return _map_sources_pool(cgraph, wanted, payload_fn,
                                     heuristics, jobs)
        except (OSError, ImportError, BrokenExecutor) as exc:
            # No pool (restricted sandbox, missing sem support, workers
            # killed mid-run...): fall back to in-process mapping.
            payloads = _map_sources_serial(cgraph, wanted, payload_fn,
                                           heuristics)
            return payloads, f"compact (serial fallback: {exc})"
    return (_map_sources_serial(cgraph, wanted, payload_fn, heuristics),
            "compact")


def _map_sources_serial(cgraph: CompactGraph, wanted: list[str],
                        payload_fn,
                        heuristics: HeuristicConfig | None):
    mapper = CompactMapper(cgraph, heuristics)
    return [payload_fn(mapper, source) for source in wanted]


def _map_sources_pool(cgraph: CompactGraph, wanted: list[str],
                      payload_fn, heuristics: HeuristicConfig | None,
                      jobs: int):
    jobs = min(jobs, len(wanted))
    # A few chunks per worker keeps the pool busy even when some
    # sources (deep back-link rounds) run long.
    chunk_count = min(len(wanted), jobs * 4)
    chunks = [wanted[i::chunk_count] for i in range(chunk_count)]
    by_source: dict[str, object] = {}
    with _pool_class()(
            max_workers=jobs, initializer=_worker_init,
            initargs=(cgraph, heuristics, payload_fn)) as pool:
        for chunk, chunk_result in zip(chunks,
                                       pool.map(_worker_apply, chunks)):
            for source, payload in zip(chunk, chunk_result):
                by_source[source] = payload
    # Deterministic merge: requested order, not completion order.
    return [by_source[source] for source in wanted], f"compact/{jobs}"


class BatchMapper:
    """Precompute route tables for many (or all) sources on one graph.

    Args:
        graph: the finalized connectivity graph.
        heuristics: mapping-phase cost heuristics (default: the
            paper's).
        jobs: worker processes for ``run``/``write_paths_files``.
            ``None``, 0 or 1 map serially in-process; ``n > 1`` fans
            out over a process pool (falling back to serial if a pool
            cannot be created).
        engine: "compact" (default) or "reference" — the differential
            baseline, always serial.
    """

    def __init__(self, graph: Graph,
                 heuristics: HeuristicConfig | None = None,
                 jobs: int | None = None,
                 engine: str = "compact"):
        if engine not in ("compact", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        self.graph = graph
        self.heuristics = heuristics
        self.jobs = jobs
        self.engine = engine
        self._compiled: CompactGraph | None = None

    @property
    def compiled(self) -> CompactGraph:
        """The compiled graph (compiled on first use, then cached)."""
        if self._compiled is None:
            self._compiled = CompactGraph.compile(self.graph)
        return self._compiled

    def sources(self) -> list[str]:
        """Every host that could serve as a source (no nets, domains,
        or private nodes — they are not mail origins)."""
        return [node.name for node in self.graph.nodes
                if not node.deleted and not node.netlike
                and not node.private]

    def run(self, sources: Iterable[str] | None = None) -> BatchResult:
        """Map from each source; graph state is preserved between runs."""
        wanted = list(self.sources() if sources is None else sources)
        if self.engine == "reference":
            return self._run_reference(wanted)
        jobs = self.jobs or 0
        if jobs > 1 and len(wanted) > 1:
            return self._run_parallel(wanted, jobs)
        return self._run_serial(wanted)

    # -- engines ------------------------------------------------------------

    def _run_reference(self, wanted: list[str]) -> BatchResult:
        batch = BatchResult(engine="reference")
        for source in wanted:
            result = run_for_source(self.graph, source, self.heuristics)
            batch.tables[source] = print_routes(result)
            batch.total_pops += result.stats.pops
            batch.total_relaxations += result.stats.relaxations
        return batch

    def _run_serial(self, wanted: list[str]) -> BatchResult:
        batch = BatchResult(engine="compact")
        mapper = CompactMapper(self.compiled, self.heuristics)
        for source in wanted:
            result = mapper.run(source)
            batch.tables[source] = compact_route_table(result)
            batch.total_pops += result.stats.pops
            batch.total_relaxations += result.stats.relaxations
        return batch

    def _run_parallel(self, wanted: list[str], jobs: int) -> BatchResult:
        payloads, engine = map_sources(self.compiled, wanted,
                                       _portable_payload,
                                       self.heuristics, jobs)
        batch = BatchResult(engine=engine)
        for source, (portable, pops, relax) in zip(wanted, payloads):
            batch.tables[source] = table_from_portable(self.compiled,
                                                       portable)
            batch.total_pops += pops
            batch.total_relaxations += relax
        return batch

    def write_paths_files(self, directory: str | Path,
                          sources: Iterable[str] | None = None,
                          batch: BatchResult | None = None) -> int:
        """Emit one sorted ``paths.<host>`` file per source — the
        artifact sites actually installed.  Returns the file count.
        Pass an already-computed ``batch`` to just write it out."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        count = 0
        if batch is None:
            batch = self.run(sources)
        for source, table in batch.tables.items():
            (directory / f"paths.{source}").write_text(
                table.format_tab() + "\n")
            count += 1
        return count


def default_jobs() -> int:
    """Worker count for ``--jobs 0`` / "use what the machine has"."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def query_single_destination(graph: Graph, source: str,
                             destination: str,
                             heuristics: HeuristicConfig | None = None
                             ) -> int | None:
    """The strawman the paper rejects: compute one route on demand.

    Runs Dijkstra but stops as soon as the destination is mapped.
    Used by experiment E14 to quantify "prohibitively expensive":
    on-demand querying repeats most of the work per query, so
    precomputation wins even at modest query volumes.
    """
    target = graph.find(destination)
    if target is None:
        return None
    mapper = Mapper(graph, heuristics)
    result = mapper.run(source, stop_at=target)
    for owner, link in result.inferred:
        owner.links.remove(link)
    label = result.best(target)
    return None if label is None else label.cost
