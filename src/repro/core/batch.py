"""Batch route computation: precompute tables for many sources.

"Although it would be convenient to compute the path to a destination
as needed, the cost of the calculation is prohibitively expensive.
Consequently, pathalias precomputes paths to all destinations" — per
*source*.  A site ran pathalias once for itself; the mapping project
(and experiment E13) runs it for every source.  This module makes that
cheap and safe: the parse/build phases are shared, and each mapping run
removes its invented back links afterwards so runs are independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.config import HeuristicConfig
from repro.core.mapper import Mapper, MapResult
from repro.core.printer import RouteTable, print_routes
from repro.graph.build import Graph
from repro.graph.node import LinkKind, Node


def run_for_source(graph: Graph, source: str | Node,
                   heuristics: HeuristicConfig | None = None,
                   retain_back_links: bool = False) -> MapResult:
    """One mapping run that, by default, leaves the graph as it found
    it (invented back links are recorded in the result, then removed)."""
    result = Mapper(graph, heuristics).run(source)
    if not retain_back_links:
        for owner, link in result.inferred:
            owner.links.remove(link)
    return result


@dataclass
class BatchResult:
    """Route tables per source, plus aggregate counters."""

    tables: dict[str, RouteTable] = field(default_factory=dict)
    total_pops: int = 0
    total_relaxations: int = 0

    def __len__(self) -> int:
        return len(self.tables)

    def __getitem__(self, source: str) -> RouteTable:
        return self.tables[source]

    def __iter__(self) -> Iterator[str]:
        return iter(self.tables)


class BatchMapper:
    """Precompute route tables for many (or all) sources on one graph."""

    def __init__(self, graph: Graph,
                 heuristics: HeuristicConfig | None = None):
        self.graph = graph
        self.heuristics = heuristics

    def sources(self) -> list[str]:
        """Every host that could serve as a source (no nets, domains,
        or private nodes — they are not mail origins)."""
        return [node.name for node in self.graph.nodes
                if not node.deleted and not node.netlike
                and not node.private]

    def run(self, sources: Iterable[str] | None = None) -> BatchResult:
        """Map from each source; graph state is preserved between runs."""
        batch = BatchResult()
        for source in (self.sources() if sources is None else sources):
            result = run_for_source(self.graph, source, self.heuristics)
            batch.tables[source] = print_routes(result)
            batch.total_pops += result.stats.pops
            batch.total_relaxations += result.stats.relaxations
        return batch

    def write_paths_files(self, directory: str | Path,
                          sources: Iterable[str] | None = None) -> int:
        """Emit one sorted ``paths.<host>`` file per source — the
        artifact sites actually installed.  Returns the file count."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        count = 0
        batch = self.run(sources)
        for source, table in batch.tables.items():
            (directory / f"paths.{source}").write_text(
                table.format_tab() + "\n")
            count += 1
        return count


def query_single_destination(graph: Graph, source: str,
                             destination: str,
                             heuristics: HeuristicConfig | None = None
                             ) -> int | None:
    """The strawman the paper rejects: compute one route on demand.

    Runs Dijkstra but stops as soon as the destination is mapped.
    Used by experiment E14 to quantify "prohibitively expensive":
    on-demand querying repeats most of the work per query, so
    precomputation wins even at modest query volumes.
    """
    target = graph.find(destination)
    if target is None:
        return None
    mapper = Mapper(graph, heuristics)
    result = mapper.run(source, stop_at=target)
    for owner, link in result.inferred:
        owner.links.remove(link)
    label = result.best(target)
    return None if label is None else label.cost
