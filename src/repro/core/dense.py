"""The standard O(v^2) Dijkstra baseline (experiment E6).

"Both asymptotically and pragmatically, the priority queue variant is a
clear winner over the standard version of Dijkstra's algorithm, which
runs in time proportional to v^2."

The standard version differs only in its 'queue': instead of a binary
heap it scans every queued vertex to find the minimum.  We express it as
:class:`DenseMapper`, the sparse mapper with the queue swapped out, so
both variants share the cost/heuristic semantics exactly — tests assert
identical labels, benches measure only the algorithmic difference.
"""

from __future__ import annotations

from repro.config import HeuristicConfig
from repro.core.mapper import Mapper, MapResult
from repro.graph.build import Graph
from repro.graph.node import Node


class _LinearQueue:
    """Priority 'queue' backed by a dict; extract_min is a full scan.

    Insert and decrease-key are O(1); extract-min is O(|queued|) — the
    textbook array-based Dijkstra.  Ties break on insertion order, like
    the heap, so both variants produce identical trees.
    """

    __slots__ = ("_entries", "_serial")

    def __init__(self) -> None:
        self._entries: dict = {}  # key -> [priority, serial]
        self._serial = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def insert(self, key, priority: int) -> None:
        if key in self._entries:
            raise ValueError(f"item already queued: {key!r}")
        self._entries[key] = [priority, self._serial]
        self._serial += 1

    def decrease_key(self, key, priority: int) -> None:
        entry = self._entries[key]
        if priority > entry[0]:
            raise ValueError("decrease_key would increase priority")
        entry[0] = priority

    def extract_min(self):
        best_key = None
        best = None
        for key, entry in self._entries.items():
            if best is None or (entry[0], entry[1]) < best:
                best = (entry[0], entry[1])
                best_key = key
        del self._entries[best_key]
        return best_key, best[0]


class DenseMapper(Mapper):
    """Mapper with the linear-scan queue: O(v^2) overall."""

    def _make_queue(self):
        return _LinearQueue()


def dense_dijkstra(graph: Graph, source: str | Node,
                   heuristics: HeuristicConfig | None = None) -> MapResult:
    """Map ``graph`` from ``source`` with the O(v^2) standard algorithm."""
    return DenseMapper(graph, heuristics).run(source)
