"""Route explanation: why did pathalias pick this path?

The historical tool had a trace option for debugging map data; this is
its reproduction-grade descendant.  Given a mapping result and a
destination, :func:`explain_route` walks the chosen label chain and
re-derives every hop's cost — base edge weight plus each heuristic
penalty — so a map maintainer can see exactly where a surprising route
came from.

The arithmetic here is a *second implementation* of the mapper's cost
rule; a property test pins the two against each other, which is the
point: an explanation that can drift from the algorithm is worse than
none.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import HeuristicConfig, DEFAULT_HEURISTICS
from repro.core.mapper import Label, MapResult
from repro.errors import RouteError
from repro.graph.node import LinkKind, Node, REAL_KINDS
from repro.parser.ast import Direction


@dataclass(frozen=True)
class HopExplanation:
    """One edge of the chosen path, fully costed."""

    source: str
    target: str
    kind: str              # link kind (normal/alias/member-net/...)
    base_cost: int         # the declared edge weight
    penalties: tuple[tuple[str, int], ...]  # (reason, amount)
    cumulative: int        # path cost after this hop

    @property
    def penalty_total(self) -> int:
        return sum(amount for _, amount in self.penalties)

    def describe(self) -> str:
        parts = [f"{self.source} -> {self.target} "
                 f"[{self.kind}] cost {self.base_cost}"]
        for reason, amount in self.penalties:
            parts.append(f"+{amount} ({reason})")
        parts.append(f"=> {self.cumulative}")
        return " ".join(parts)


@dataclass
class RouteExplanation:
    """The full derivation for one destination."""

    destination: str
    total_cost: int
    hops: list[HopExplanation] = field(default_factory=list)

    def describe(self) -> str:
        lines = [f"route to {self.destination} (cost {self.total_cost}):"]
        lines.extend(f"  {hop.describe()}" for hop in self.hops)
        return "\n".join(lines)


def _edge_penalties(cfg: HeuristicConfig, parent: Label,
                    link) -> list[tuple[str, int]]:
    """Re-derive the mapper's heuristic surcharges for one edge."""
    penalties: list[tuple[str, int]] = []
    target = link.to
    if link.kind is LinkKind.MEMBER_NET:
        if parent.node.is_domain and target.is_domain:
            penalties.append(("subdomain to parent domain",
                              cfg.subdomain_up_penalty))
        elif (target.gatewayed and not target.is_domain
                and (target.gateways is None
                     or parent.node not in target.gateways)):
            penalties.append(("entering gatewayed net through "
                              "non-gateway", cfg.gateway_penalty))
    real = link.kind in REAL_KINDS
    if real and parent.domain_seen:
        penalties.append(("relaying beyond a domain",
                          cfg.domain_relay_penalty))
    if real and link.direction is Direction.LEFT and parent.has_at:
        penalties.append(("'!' hop after '@' in path",
                          cfg.mixed_penalty))
    return penalties


def explain_route(result: MapResult, destination: str | Node,
                  heuristics: HeuristicConfig | None = None
                  ) -> RouteExplanation:
    """Derive the hop-by-hop cost breakdown of the chosen route."""
    cfg = heuristics if heuristics is not None else DEFAULT_HEURISTICS
    if result.unit_costs:
        raise RouteError(
            "cannot explain a min-hop (unit_costs) mapping: label "
            "costs are hop counts, not edge-weight sums")
    if isinstance(destination, str):
        node = result.graph.find(destination)
        if node is None:
            raise RouteError(f"unknown destination {destination!r}")
        destination = node
    label = result.best(destination)
    if label is None:
        raise RouteError(f"{destination.name!r} is unreachable")

    chain: list[Label] = []
    cursor: Label | None = label
    while cursor is not None:
        chain.append(cursor)
        cursor = cursor.parent
    chain.reverse()

    explanation = RouteExplanation(destination=destination.name,
                                   total_cost=label.cost)
    for parent, child in zip(chain, chain[1:]):
        link = child.link
        penalties = _edge_penalties(cfg, parent, link)
        explanation.hops.append(HopExplanation(
            source=parent.node.name,
            target=child.node.name,
            kind=link.kind.value,
            base_cost=link.cost,
            penalties=tuple(penalties),
            cumulative=child.cost,
        ))
    return explanation


def verify_explanation(explanation: RouteExplanation) -> bool:
    """Check that hop arithmetic reconstructs the mapper's label costs.

    Returns True when every hop's cumulative cost equals the running
    sum of base costs and penalties — the invariant the property test
    asserts over random graphs.
    """
    running = 0
    for hop in explanation.hops:
        running += hop.base_cost + hop.penalty_total
        if running != hop.cumulative:
            return False
    return running == explanation.total_cost
