"""The compiled mapping engine: Dijkstra over flat integer arrays.

:class:`~repro.core.mapper.Mapper` is the *reference* engine — a direct
transliteration of the paper's algorithm over Node/Link objects, with
``(node_index, domain_flag)`` tuples hashed into dicts on every
relaxation.  This module is the *compiled* engine: the same algorithm,
hop for hop and tie for tie, over a :class:`CompactGraph`'s CSR arrays.

Every mapping state is one integer::

    state = compact_id << 1 | domain_flag     (second-best mode)
    state = compact_id                        (tree mode)

and every label attribute lives in a flat list indexed by state — no
tuple allocation, no hashing, no attribute chasing.  The priority queue
comes from :mod:`repro.adt.intheap`: the drain loop drives the packed
lazy variant (:class:`LazyPackedHeap`), whose ordering is provably the
same as the position-indexed :class:`IntHeap` / reference
:class:`~repro.adt.heap.BinaryHeap` — a cost decrease re-pushes the
state under its original FIFO serial, and superseded entries are
skipped on extraction via the ``mapped`` flag.  Heuristic penalty
*predicates* were resolved to per-link flags at compile time; the
static surcharges are even pre-added into a per-link weight table, so
the relaxation loop adds at most two dynamic penalties.

Back-link inference never mutates the source graph (the reference
engine does, and must clean up after itself): invented links go into a
per-run *overlay* adjacency, which makes a compiled mapper safe to run
concurrently with anything else holding the graph.

Label storage is allocated once per mapper and reused across runs
(``run`` resets only the states the previous run touched), so a batch
over thousands of sources pays no per-run allocation beyond the heap's
internal list growth.  The returned :class:`CompactMapResult` is a live
view of that scratch space — it is invalidated by the next ``run`` on
the same mapper; materialize (``to_map_result`` / ``route_table``)
before rerunning.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.adt.intheap import (
    LazyPackedHeap,
    PACK_KEY_SHIFT,
    PACK_STATE_BITS,
    PACK_STATE_MASK,
)
from repro.config import DEFAULT_HEURISTICS, HeuristicConfig
from repro.core.mapper import Label, MapResult, MapStats
from repro.errors import MappingError
from repro.graph.compact import (
    CompactGraph,
    F_LEFT,
    F_NON_GATEWAY,
    F_REAL,
    F_SUBDOMAIN_UP,
    K_ALIAS,
    K_INFERRED,
    K_NET_MEMBER,
    K_NORMAL,
)
from repro.graph.node import Link, LinkKind
from repro.parser.ast import Direction


class CompactMapResult:
    """A finished compiled mapping: flat label arrays plus bookkeeping.

    Live view over the mapper's scratch arrays — invalidated by the
    mapper's next ``run``.
    """

    __slots__ = ("cgraph", "source", "root_state", "shift", "touched",
                 "cost", "parent", "link", "has_at", "has_bang",
                 "domain_seen", "mapped", "stats", "unit_costs",
                 "inferred", "_mapper")

    def __init__(self, mapper: "CompactMapper", source: int):
        self._mapper = mapper
        self.cgraph = mapper.cgraph
        self.source = source
        self.shift = mapper.shift
        self.root_state = mapper._root_state
        self.touched = mapper._touched
        self.cost = mapper._lab_cost
        self.parent = mapper._lab_parent
        self.link = mapper._lab_link
        self.has_at = mapper._lab_hasat
        self.has_bang = mapper._lab_hasbang
        self.domain_seen = mapper._lab_domseen
        self.mapped = mapper._lab_mapped
        self.stats = mapper.stats
        self.unit_costs = mapper.unit_costs
        #: invented back links: (owner cid, overlay link id) in order
        self.inferred = mapper._ov_invented

    # -- queries ------------------------------------------------------------

    def states_of(self, cid: int) -> list[int]:
        """Labeled states for a node, domain-free first."""
        base = cid << self.shift
        out = []
        for dflag in range(1 << self.shift):
            if self.cost[base + dflag] >= 0:
                out.append(base + dflag)
        return out

    def best_state(self, cid: int) -> int | None:
        """Cheapest labeled state (ties prefer domain-free)."""
        states = self.states_of(cid)
        if not states:
            return None
        return min(states, key=lambda s: (self.cost[s],
                                          self.domain_seen[s]))

    def cost_of(self, name_or_cid: str | int) -> int | None:
        """Cheapest mapped cost to a node, or None if unreachable."""
        cid = (self.cgraph.find(name_or_cid)
               if isinstance(name_or_cid, str) else name_or_cid)
        if cid is None:
            return None
        state = self.best_state(cid)
        return None if state is None else self.cost[state]

    def unreachable_cids(self) -> list[int]:
        """Compact ids of nodes the mapping never labeled."""
        return [cid for cid in range(self.cgraph.n)
                if not self.states_of(cid)]

    # -- materialization ----------------------------------------------------

    def _link_for(self, link_id: int,
                  overlay_links: dict[int, Link]) -> Link:
        """Real Link for CSR ids; one shared synthetic per overlay id."""
        cg = self.cgraph
        csr = cg.link_count
        if link_id < csr:
            return cg.link_obj(link_id)
        link = overlay_links.get(link_id)
        if link is None:
            mapper = self._mapper
            k = link_id - csr
            link = Link(cg.node_of(mapper._ov_to[k]),
                        mapper._ov_cost[k], mapper._ov_op[k],
                        Direction.LEFT if mapper._ov_flags[k] & F_LEFT
                        else Direction.RIGHT,
                        LinkKind.INFERRED)
            overlay_links[link_id] = link
        return link

    def to_map_result(self) -> MapResult:
        """Materialize reference-engine structures: a full MapResult
        with Label objects wired to the source graph's nodes."""
        cg = self.cgraph
        if cg.graph is None:
            raise MappingError(
                "cannot materialize a MapResult from a detached "
                "CompactGraph (unpickled in a worker)")
        shift = self.shift
        overlay_links: dict[int, Link] = {}
        by_state: dict[int, Label] = {}
        labels: dict[tuple[int, int], Label] = {}
        for state in self.touched:
            cid = state >> shift
            node = cg.node_of(cid)
            link = (None if state == self.root_state
                    else self._link_for(self.link[state], overlay_links))
            label = Label(node, bool(self.domain_seen[state]),
                          self.cost[state], None, link,
                          bool(self.has_at[state]),
                          bool(self.has_bang[state]))
            label.mapped = bool(self.mapped[state])
            by_state[state] = label
            dflag = (state & 1) if shift else 0
            labels[(node.index, dflag)] = label
        for state, label in by_state.items():
            parent_state = self.parent[state]
            if parent_state >= 0:
                label.parent = by_state[parent_state]
        result = MapResult(cg.graph, cg.node_of(self.source), labels,
                           self.stats, unit_costs=self.unit_costs)
        result.inferred = [
            (cg.node_of(owner),
             self._link_for(link_id, overlay_links))
            for owner, link_id in self.inferred]
        return result


class CompactMapper:
    """Run the mapping phase on a compiled graph.

    Differentially tested to produce route tables byte-identical to the
    reference :class:`Mapper` — same costs, same parents, same
    tie-breaks — at a fraction of the interpreter work.
    """

    def __init__(self, cgraph: CompactGraph,
                 heuristics: HeuristicConfig | None = None,
                 unit_costs: bool = False):
        self.cgraph = cgraph
        self.cfg = heuristics if heuristics is not None \
            else DEFAULT_HEURISTICS
        self.cfg.validate()
        self.unit_costs = unit_costs
        self.stats = MapStats()
        self.shift = 1 if self.cfg.second_best else 0
        n_states = cgraph.n << self.shift
        if n_states >= 1 << PACK_STATE_BITS:  # pragma: no cover
            raise MappingError(
                f"graph too large for packed heap states: {n_states}")

        # Per-link weight: base cost with the compile-time member->net
        # penalties (subdomain-up / non-gateway entry) pre-added.
        cfg = self.cfg
        self._weight = [
            ((1 if f & F_REAL else 0) if unit_costs else c)
            + (cfg.subdomain_up_penalty if f & F_SUBDOMAIN_UP else 0)
            + (cfg.gateway_penalty if f & F_NON_GATEWAY else 0)
            for f, c in zip(cgraph.flags, cgraph.cost)]

        # Label scratch, reused across runs (reset via _touched).
        self._lab_cost = [-1] * n_states
        self._lab_parent = [-1] * n_states
        self._lab_link = [-1] * n_states
        self._lab_hasat = [0] * n_states
        self._lab_hasbang = [0] * n_states
        self._lab_domseen = [0] * n_states
        self._lab_mapped = [0] * n_states
        self._lab_serial = [0] * n_states
        self._touched: list[int] = []
        self._heap = LazyPackedHeap()
        self._root_state = -1

        # Per-run overlay: back links invented for unreachable hosts.
        # Link ids >= cgraph.link_count index these arrays.
        self._ov_to: list[int] = []
        self._ov_cost: list[int] = []
        self._ov_weight: list[int] = []
        self._ov_flags: list[int] = []
        self._ov_op: list[str] = []
        self._ov_adj: list[list[int] | None] = [None] * cgraph.n
        self._ov_owners: list[int] = []
        self._ov_invented: list[tuple[int, int]] = []

    # -- public -------------------------------------------------------------

    def run(self, source: str | int,
            stop_at: str | int | None = None) -> CompactMapResult:
        """Map the whole graph from ``source``; mirrors ``Mapper.run``
        including the early-stop single-destination mode."""
        cg = self.cgraph
        if isinstance(source, str):
            cid = cg.find(source)
            if cid is None:
                raise MappingError(f"unknown source host {source!r}")
            source = cid
        if isinstance(stop_at, str):
            stop_at = cg.find(stop_at)  # None (unknown) mirrors Mapper

        self._reset()
        self.stats = MapStats()
        shift = self.shift
        src_domain = cg.is_domain[source]
        root = (source << shift) | (src_domain if shift else 0)
        self._root_state = root
        self._lab_cost[root] = 0
        self._lab_domseen[root] = src_domain
        self._lab_parent[root] = -1
        self._lab_link[root] = -1
        self._lab_hasat[root] = 0
        self._lab_hasbang[root] = 0
        self._lab_serial[root] = self._heap.next_serial()
        self._touched.append(root)
        self._heap.push(root, 0, self._lab_serial[root])
        self.stats.inserts += 1

        stopped = self._drain(stop_at)
        result = CompactMapResult(self, source)
        if stop_at is not None and (stopped or self._labeled(stop_at)):
            return result
        if self.cfg.infer_back_links:
            candidates: list[int] | None = None
            while True:
                invented, candidates = self._invent_back_links(candidates)
                if not invented:
                    break
                self.stats.back_link_rounds += 1
                for owner, link_id in invented:
                    base = owner << shift
                    for dflag in range(1 << shift):
                        state = base + dflag
                        if self._lab_cost[state] >= 0 \
                                and self._lab_mapped[state]:
                            self._relax_one(state, link_id)
                self._drain(stop_at)
        return result

    # -- internals ----------------------------------------------------------

    def _reset(self) -> None:
        lab_cost = self._lab_cost
        lab_mapped = self._lab_mapped
        for state in self._touched:
            lab_cost[state] = -1
            lab_mapped[state] = 0
        self._touched.clear()
        self._heap.clear()
        self._ov_to.clear()
        self._ov_cost.clear()
        self._ov_weight.clear()
        self._ov_flags.clear()
        self._ov_op.clear()
        for cid in self._ov_owners:
            self._ov_adj[cid] = None
        self._ov_owners.clear()
        self._ov_invented.clear()

    def _labeled(self, cid: int) -> bool:
        base = cid << self.shift
        lab_cost = self._lab_cost
        for dflag in range(1 << self.shift):
            if lab_cost[base + dflag] >= 0:
                return True
        return False

    def _drain(self, stop_at: int | None) -> bool:
        """Run the queue dry (or to ``stop_at``).  Returns True when
        the stop target was popped.  This is the hot loop: every array
        is bound to a local, every step is an integer index, and the
        queue is a C-sifted list of packed ints."""
        cg = self.cgraph
        cfg = self.cfg
        shift = self.shift
        sb = shift == 1
        off = cg.off
        to_a = cg.to
        flags_a = cg.flags
        dom_a = cg.is_domain
        weight_a = self._weight
        csr = len(to_a)
        ov_to, ov_weight, ov_flags = self._ov_to, self._ov_weight, \
            self._ov_flags
        ov_adj = self._ov_adj
        lab_cost = self._lab_cost
        lab_parent = self._lab_parent
        lab_link = self._lab_link
        lab_hasat = self._lab_hasat
        lab_hasbang = self._lab_hasbang
        lab_domseen = self._lab_domseen
        lab_mapped = self._lab_mapped
        lab_serial = self._lab_serial
        touched = self._touched
        heap = self._heap
        entries = heap.entries
        serial = heap.serial
        key_shift = PACK_KEY_SHIFT
        state_bits = PACK_STATE_BITS
        state_mask = PACK_STATE_MASK
        domain_relay = cfg.domain_relay_penalty
        mixed = cfg.mixed_penalty

        pops = relaxations = inserts = decr = 0
        mixp = gwp = domp = 0
        stopped = False

        while entries:
            entry = heappop(entries)
            u_state = entry & state_mask
            if lab_mapped[u_state]:
                continue  # superseded by an earlier, cheaper entry
            lab_mapped[u_state] = 1
            u_cost = entry >> key_shift
            pops += 1
            u = u_state >> shift
            if u == stop_at:
                stopped = True
                break
            u_hasat = lab_hasat[u_state]
            u_hasbang = lab_hasbang[u_state]
            u_domseen = lab_domseen[u_state]
            start = off[u]
            end = off[u + 1]
            extra_ids = ov_adj[u]
            for j in (range(start, end) if extra_ids is None
                      else [*range(start, end), *extra_ids]):
                relaxations += 1
                if j < csr:
                    f = flags_a[j]
                    w = weight_a[j]
                    v = to_a[j]
                else:
                    k = j - csr
                    f = ov_flags[k]
                    w = ov_weight[k]
                    v = ov_to[k]
                if f & 8:  # F_NON_GATEWAY, pre-added to the weight
                    gwp += 1
                hasat = u_hasat
                hasbang = u_hasbang
                if f & 1:  # F_REAL
                    if u_domseen:
                        w += domain_relay
                        domp += 1
                    if f & 2:  # F_LEFT
                        if hasat:
                            w += mixed
                            mixp += 1
                        hasbang = 1
                    else:
                        hasat = 1
                domseen = u_domseen | dom_a[v]
                v_state = (v << 1) | domseen if sb else v
                new_cost = u_cost + w
                c = lab_cost[v_state]
                if c < 0:
                    lab_cost[v_state] = new_cost
                    lab_parent[v_state] = u_state
                    lab_link[v_state] = j
                    lab_hasat[v_state] = hasat
                    lab_hasbang[v_state] = hasbang
                    lab_domseen[v_state] = domseen
                    lab_serial[v_state] = serial
                    touched.append(v_state)
                    heappush(entries,
                             (new_cost << key_shift)
                             | (serial << state_bits) | v_state)
                    serial += 1
                    inserts += 1
                elif lab_mapped[v_state] or c <= new_cost:
                    pass
                else:
                    lab_cost[v_state] = new_cost
                    lab_parent[v_state] = u_state
                    lab_link[v_state] = j
                    lab_hasat[v_state] = hasat
                    lab_hasbang[v_state] = hasbang
                    lab_domseen[v_state] = domseen
                    # Re-push under the original serial: identical
                    # ordering to a true decrease-key.
                    heappush(entries,
                             (new_cost << key_shift)
                             | (lab_serial[v_state] << state_bits)
                             | v_state)
                    decr += 1

        heap.serial = serial
        stats = self.stats
        stats.pops += pops
        stats.relaxations += relaxations
        stats.inserts += inserts
        stats.decrease_keys += decr
        stats.mixed_penalties += mixp
        stats.gateway_penalties += gwp
        stats.domain_penalties += domp
        return stopped

    def _relax_one(self, u_state: int, j: int) -> None:
        """Cold-path relaxation (back-link continuation); must agree
        with the inlined hot path above."""
        cg = self.cgraph
        cfg = self.cfg
        shift = self.shift
        csr = cg.link_count
        if j < csr:
            f = cg.flags[j]
            w = self._weight[j]
            v = cg.to[j]
        else:
            k = j - csr
            f = self._ov_flags[k]
            w = self._ov_weight[k]
            v = self._ov_to[k]
        self.stats.relaxations += 1
        if f & F_NON_GATEWAY:
            self.stats.gateway_penalties += 1
        u_domseen = self._lab_domseen[u_state]
        hasat = self._lab_hasat[u_state]
        hasbang = self._lab_hasbang[u_state]
        if f & F_REAL:
            if u_domseen:
                w += cfg.domain_relay_penalty
                self.stats.domain_penalties += 1
            if f & F_LEFT:
                if hasat:
                    w += cfg.mixed_penalty
                    self.stats.mixed_penalties += 1
                hasbang = 1
            else:
                hasat = 1
        domseen = u_domseen | cg.is_domain[v]
        v_state = (v << 1) | domseen if shift else v
        new_cost = self._lab_cost[u_state] + w
        c = self._lab_cost[v_state]
        if c < 0:
            self._lab_cost[v_state] = new_cost
            self._lab_parent[v_state] = u_state
            self._lab_link[v_state] = j
            self._lab_hasat[v_state] = hasat
            self._lab_hasbang[v_state] = hasbang
            self._lab_domseen[v_state] = domseen
            self._lab_serial[v_state] = self._heap.next_serial()
            self._touched.append(v_state)
            self._heap.push(v_state, new_cost, self._lab_serial[v_state])
            self.stats.inserts += 1
        elif self._lab_mapped[v_state] or c <= new_cost:
            return
        else:
            self._lab_cost[v_state] = new_cost
            self._lab_parent[v_state] = u_state
            self._lab_link[v_state] = j
            self._lab_hasat[v_state] = hasat
            self._lab_hasbang[v_state] = hasbang
            self._lab_domseen[v_state] = domseen
            self._heap.push(v_state, new_cost, self._lab_serial[v_state])
            self.stats.decrease_keys += 1

    def _invent_back_links(self, candidates: list[int] | None
                           ) -> tuple[list[tuple[int, int]], list[int]]:
        """Invent overlay links from reached neighbors back to each
        unreachable host that declared outbound links; mirrors
        ``Mapper._invent_back_links`` scan order exactly.

        ``candidates`` narrows the scan to nodes known unlabeled after
        the previous round (labels never disappear, so skipping
        already-labeled nodes cannot change the outcome); pass None on
        the first round for a full scan.  Returns the invented
        ``(owner, link id)`` pairs and the next candidate list.
        """
        cg = self.cgraph
        factor = self.cfg.back_link_factor
        csr = cg.link_count
        shift = self.shift
        lab_cost = self._lab_cost
        invented: list[tuple[int, int]] = []
        still_unlabeled: list[int] = []
        if candidates is None:
            candidates = range(cg.n)  # type: ignore[assignment]
        for cid in candidates:
            base = cid << shift
            if lab_cost[base] >= 0 or (shift and lab_cost[base + 1] >= 0):
                continue
            still_unlabeled.append(cid)
            # Unreachable nodes never receive overlay links, so their
            # outbound list is exactly their CSR slice.
            for j in range(cg.off[cid], cg.off[cid + 1]):
                neighbor = cg.to[j]
                nbase = neighbor << shift
                if lab_cost[nbase] < 0 and not (
                        shift and lab_cost[nbase + 1] >= 0):
                    continue
                if self._has_inferred_link(neighbor, cid):
                    continue
                k = len(self._ov_to)
                cost = cg.cost[j] * factor
                self._ov_to.append(cid)
                self._ov_cost.append(cost)
                self._ov_weight.append(1 if self.unit_costs else cost)
                self._ov_flags.append(
                    F_REAL | (cg.flags[j] & F_LEFT))
                self._ov_op.append(cg.op[j])
                link_id = csr + k
                adj = self._ov_adj[neighbor]
                if adj is None:
                    adj = []
                    self._ov_adj[neighbor] = adj
                    self._ov_owners.append(neighbor)
                adj.append(link_id)
                invented.append((neighbor, link_id))
                self.stats.inferred_links += 1
        self._ov_invented.extend(invented)
        return invented, still_unlabeled

    def _has_inferred_link(self, owner: int, target: int) -> bool:
        cg = self.cgraph
        for j in range(cg.off[owner], cg.off[owner + 1]):
            if cg.to[j] == target and cg.kind[j] == K_INFERRED:
                return True
        adj = self._ov_adj[owner]
        if adj:
            csr = cg.link_count
            for link_id in adj:
                if self._ov_to[link_id - csr] == target:
                    return True
        return False


# -- route construction ------------------------------------------------------


def _route_records(result: CompactMapResult):
    """Preorder route labeling on arrays; the compiled counterpart of
    ``compute_routes`` + ``print_routes`` record selection.

    Returns ``(records, unreachable)`` with records as
    ``(cost, display, route, cid)`` sorted like the reference printer.
    """
    cg = result.cgraph
    shift = result.shift
    names = cg.names
    dom = cg.is_domain
    netlike = cg.netlike
    kind_a = cg.kind
    op_a = cg.op
    flags_a = cg.flags
    csr = cg.link_count
    mapper = result._mapper
    ov_op, ov_flags = mapper._ov_op, mapper._ov_flags

    root = result.root_state
    if root < 0 or result.cost[root] < 0:
        return [], sorted(
            names[cid] for cid in range(cg.n)
            if not cg.is_net[cid] and not dom[cid])

    children: dict[int, list[int]] = {}
    for state in result.touched:
        p = result.parent[state]
        if p >= 0:
            children.setdefault(p, []).append(state)

    route: dict[int, str] = {root: "%s"}
    display: dict[int, str] = {root: names[root >> shift]}
    entry: dict[int, tuple[str, bool] | None] = {root: None}

    stack = [root]
    while stack:
        p = stack.pop()
        kids = children.get(p)
        if not kids:
            continue
        p_route = route[p]
        p_display = display[p]
        p_entry = entry[p]
        u = p >> shift
        u_dom = dom[u]
        u_netlike = netlike[u]
        for child in kids:
            j = result.link[child]
            if j < csr:
                k = kind_a[j]
                op = op_a[j]
                left = flags_a[j] & F_LEFT
            else:
                k = K_INFERRED
                op = ov_op[j - csr]
                left = ov_flags[j - csr] & F_LEFT
            v = child >> shift
            if k == K_ALIAS:
                # Zero-cost synonym: same machine, same route.
                display[child] = names[v]
                route[child] = p_route
                entry[child] = p_entry
            elif netlike[v]:
                display[child] = (names[v] + p_display
                                  if dom[v] and u_dom else names[v])
                route[child] = p_route
                entry[child] = (p_entry
                                if k == K_NET_MEMBER and p_entry
                                is not None else (op, bool(left)))
            else:
                if u_netlike:
                    eop, eleft = p_entry or (op, bool(left))
                    text = names[v] + (p_display if u_dom else "")
                else:
                    eop, eleft = op, bool(left)
                    text = names[v]
                display[child] = text
                route[child] = (p_route.replace("%s",
                                                f"{text}{eop}%s", 1)
                                if eleft else
                                p_route.replace("%s",
                                                f"%s{eop}{text}", 1))
                entry[child] = None
            stack.append(child)

    # Cheapest label per node, strict-< so creation order breaks ties
    # exactly like the reference printer's dict scan.
    best: dict[int, int] = {}
    cost = result.cost
    domseen = result.domain_seen
    for state in result.touched:
        cid = state >> shift
        current = best.get(cid)
        if current is None or (cost[state], domseen[state]) < \
                (cost[current], domseen[current]):
            best[cid] = state

    records = []
    private = cg.private
    is_net = cg.is_net
    parent = result.parent
    for cid, state in best.items():
        if private[cid]:
            continue
        if dom[cid]:
            p = parent[state]
            if p >= 0 and dom[p >> shift]:
                continue  # subdomain: same route as its parent domain
        elif is_net[cid]:
            continue
        records.append((cost[state], display[state], route[state], cid))
    records.sort(key=lambda r: (r[0], r[1]))

    unreachable = sorted(
        names[cid] for cid in range(cg.n)
        if not is_net[cid] and not dom[cid] and cid not in best)
    return records, unreachable


def tree_link_pairs(result: CompactMapResult) -> list[tuple[str, str]]:
    """``(from, to)`` host-name pairs of every NORMAL link this mapping
    leaned on: the shortest-path-tree edges, plus the forward links that
    seeded invented back links (their cost scales the invented link, so
    a change to either can change this source's routes).

    The snapshot store persists these per source so diff-driven
    recompute (:mod:`repro.service.incremental`) can bound which sources
    a link-cost change could possibly affect.
    """
    cg = result.cgraph
    names = cg.names
    shift = result.shift
    csr = cg.link_count
    mapper = result._mapper
    pairs: set[tuple[str, str]] = set()
    for state in result.touched:
        j = result.link[state]
        if 0 <= j < csr and cg.kind[j] == K_NORMAL:
            owner = result.parent[state] >> shift
            pairs.add((names[owner], names[state >> shift]))
    for owner, link_id in result.inferred:
        # The invented link owner->target was derived from the CSR link
        # target->owner; record that *forward* pair.
        pairs.add((names[mapper._ov_to[link_id - csr]], names[owner]))
    return sorted(pairs)


#: Bit layout of the flags byte in a per-state record (and in the
#: snapshot-v2 ``STAT`` entry that persists it).
STATE_F_DOMAIN_CLASS = 1   # second-best domain class (state & 1)
STATE_F_DOMAIN_SEEN = 2    # the label's path traversed a domain
STATE_F_HAS_AT = 4         # ... contains an @-style (RIGHT) real hop
STATE_F_HAS_BANG = 8       # ... contains a !-style (LEFT) real hop


def state_costs(result: CompactMapResult
                ) -> list[tuple[int, int, int, int, int]]:
    """The mapper's full per-state record, one tuple per labeled state.

    ``(cid, flags, kind, cost, parent_link)`` sorted by
    ``(cid, domain class)``:

    * ``flags`` packs the ``STATE_F_*`` bits — the second-best domain
      class that identifies the state (always 0 in tree mode) plus the
      label's ``domain_seen`` / ``has_at`` / ``has_bang`` attributes;
    * ``kind`` is the node's ``SK_*`` code from
      :meth:`~repro.graph.compact.CompactGraph.state_kinds`;
    * ``cost`` is the final mapped cost;
    * ``parent_link`` is the tree-parent link id — the CSR link the
      label arrived over, ``-1`` for the root, or a run-local overlay
      id (``>= link_count``) for an invented back link.

    This is what the route table always knew and format v1 threw away:
    exact costs to *every* node — nets, domains, and private shadows
    included — which is what lets the incremental updater's triangle
    test run on exact numbers (:mod:`repro.service.incremental`) and
    federation read exact gateway costs.  Persisted by the snapshot
    store's v2 ``STAT`` records alongside :func:`tree_link_pairs`.
    """
    shift = result.shift
    kinds = result.cgraph.state_kinds()
    cost = result.cost
    parent_link = result.link
    domseen = result.domain_seen
    has_at = result.has_at
    has_bang = result.has_bang
    dmask = (1 << shift) - 1
    records = []
    for state in result.touched:
        flags = ((state & dmask)
                 | (STATE_F_DOMAIN_SEEN if domseen[state] else 0)
                 | (STATE_F_HAS_AT if has_at[state] else 0)
                 | (STATE_F_HAS_BANG if has_bang[state] else 0))
        cid = state >> shift
        records.append((cid, flags, kinds[cid], cost[state],
                        parent_link[state]))
    records.sort(key=lambda r: (r[0], r[1] & STATE_F_DOMAIN_CLASS))
    return records


def build_portable_table(result: CompactMapResult):
    """A picklable route table: plain tuples, no graph objects.

    ``(source_name, records, unreachable, warnings)`` — what a worker
    process ships back to the batch coordinator.
    """
    cg = result.cgraph
    records, unreachable = _route_records(result)
    return (cg.names[result.source], records, unreachable,
            list(cg.warnings))


def table_from_portable(cgraph: CompactGraph, portable):
    """Rehydrate a portable table into a :class:`RouteTable` over the
    compiling process's graph objects."""
    from repro.core.printer import RouteTable
    from repro.core.route import RouteRecord

    source, records, unreachable, warnings = portable
    return RouteTable(
        source=source,
        records=[RouteRecord(cost, name, route, cgraph.node_of(cid))
                 for cost, name, route, cid in records],
        unreachable=unreachable,
        warnings=warnings)


def compact_route_table(result: CompactMapResult):
    """Build a reference-equivalent :class:`RouteTable` in-process."""
    return table_from_portable(result.cgraph,
                               build_portable_table(result))


def map_routes(cgraph: CompactGraph, source: str | int,
               heuristics: HeuristicConfig | None = None):
    """One-shot: compile-side mapping + table (the common library call)."""
    mapper = CompactMapper(cgraph, heuristics)
    return compact_route_table(mapper.run(source))
