"""The three-phase facade: parse the input, map, print the routes.

This is the library's front door, equivalent to running the original
tool::

    table = Pathalias().run_text(map_text, localhost="unc")
    print(table.format_paper())

Each phase is timed (:class:`PhaseTimes`) because the paper's
engineering narrative is largely about where the time goes — the scanner
rewrite, the allocator, the heap — and experiment E8 reports the split
at published scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import HeuristicConfig
from repro.core.mapper import Mapper, MapResult
from repro.core.printer import RouteTable, print_routes
from repro.errors import MappingError
from repro.graph.build import Graph, GraphBuilder
from repro.parser.grammar import Parser
from repro.parser.scanner import Scanner


@dataclass
class PhaseTimes:
    """Wall-clock seconds per phase."""

    scan: float = 0.0
    parse: float = 0.0
    build: float = 0.0
    map: float = 0.0
    print: float = 0.0

    @property
    def total(self) -> float:
        return self.scan + self.parse + self.build + self.map + self.print


@dataclass
class RunResult:
    """A route table plus everything measured along the way."""

    table: RouteTable
    graph: Graph
    mapping: MapResult
    times: PhaseTimes = field(default_factory=PhaseTimes)


class Pathalias:
    """Configurable pathalias runs.

    Args:
        heuristics: mapping-phase cost heuristics (default: the paper's).
        case_fold: fold host names to lower case (the ``-i`` option).
        scanner_class: the hand scanner by default; pass
            :class:`repro.parser.lexgen.LexScanner` to run the lex-style
            baseline end to end.
        engine: "reference" (the paper-shaped object-graph mapper, the
            default) or "compact" (the compiled flat-array engine,
            differentially tested to identical output).
    """

    def __init__(self, heuristics: HeuristicConfig | None = None,
                 case_fold: bool = False,
                 scanner_class: type[Scanner] = Scanner,
                 engine: str = "reference"):
        if engine not in ("reference", "compact"):
            raise MappingError(f"unknown engine {engine!r}")
        self.heuristics = heuristics
        self.case_fold = case_fold
        self.scanner_class = scanner_class
        self.engine = engine

    # -- entry points ---------------------------------------------------------

    def run_text(self, text: str, localhost: str,
                 filename: str = "<stdin>") -> RouteTable:
        """Parse one input text and return its route table."""
        return self.run_detailed([(filename, text)], localhost).table

    def run_texts(self, named_texts: list[tuple[str, str]],
                  localhost: str) -> RouteTable:
        """Parse several (filename, text) inputs; file boundaries scope
        ``private`` declarations."""
        return self.run_detailed(named_texts, localhost).table

    def run_files(self, paths: list[str | Path],
                  localhost: str) -> RouteTable:
        """Read and parse input files, as the original took on argv."""
        named = [(str(p), Path(p).read_text()) for p in paths]
        return self.run_detailed(named, localhost).table

    def build(self, named_texts: list[tuple[str, str]],
              times: PhaseTimes | None = None) -> Graph:
        """Scan, parse and build the graph only — the shared front half
        of the pipeline, reusable by batch precomputation."""
        times = times if times is not None else PhaseTimes()
        builder = GraphBuilder()
        for filename, text in named_texts:
            t0 = time.perf_counter()
            tokens = self.scanner_class(text, filename).tokens()
            t1 = time.perf_counter()
            decls = Parser(tokens, filename, self.case_fold).parse()
            t2 = time.perf_counter()
            builder.new_file(filename)
            for decl in decls:
                builder.add(decl)
            t3 = time.perf_counter()
            times.scan += t1 - t0
            times.parse += t2 - t1
            times.build += t3 - t2

        t0 = time.perf_counter()
        graph = builder.finalize()
        t1 = time.perf_counter()
        times.build += t1 - t0
        return graph

    def run_detailed(self, named_texts: list[tuple[str, str]],
                     localhost: str) -> RunResult:
        """Full pipeline, returning graph/mapping/timing detail."""
        times = PhaseTimes()
        graph = self.build(named_texts, times)

        source = localhost.lower() if self.case_fold else localhost
        if graph.find(source) is None:
            raise MappingError(f"local host {source!r} not in input")
        t0 = time.perf_counter()
        if self.engine == "compact":
            from repro.core.fastmap import CompactMapper
            from repro.graph.compact import CompactGraph

            compact = CompactMapper(CompactGraph.compile(graph),
                                    self.heuristics).run(source)
            mapping = compact.to_map_result()
        else:
            mapping = Mapper(graph, self.heuristics).run(source)
        t1 = time.perf_counter()
        table = print_routes(mapping)
        t2 = time.perf_counter()
        times.map = t1 - t0
        times.print = t2 - t1
        return RunResult(table=table, graph=graph, mapping=mapping,
                         times=times)
