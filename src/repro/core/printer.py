"""The printing phase: select and order the output records.

Rules from PRINTING THE ROUTES:

* every non-private host gets a line ``cost name route`` (the paper's
  example sorts by cost; the classic database format is name TAB route);
* networks never appear (they are placeholders), private hosts never
  appear (though they may be *relays* inside other routes);
* domains appear only when top-level — "a domain whose parent is not
  also a domain" — which lets a subdomain masquerade as top-level when
  gatewayed separately;
* aliases appear, carrying their partner's route.

Unreachable hosts are reported separately (the original wrote them to
the error output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.mapper import Label, MapResult
from repro.core.route import RouteRecord, compute_routes


@dataclass
class RouteTable:
    """The deliverable of a pathalias run: ordered route records."""

    source: str
    records: list[RouteRecord]
    unreachable: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    _by_name: dict[str, RouteRecord] = field(default_factory=dict,
                                             repr=False)

    def __post_init__(self) -> None:
        if not self._by_name:
            self._by_name = {r.name: r for r in self.records}

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[RouteRecord]:
        return iter(self.records)

    def lookup(self, name: str) -> RouteRecord | None:
        """Exact-name lookup (mailer-style suffix search lives in
        :class:`repro.mailer.routedb.RouteDatabase`)."""
        return self._by_name.get(name)

    def route(self, name: str) -> str | None:
        record = self.lookup(name)
        return None if record is None else record.route

    def address(self, name: str, user: str) -> str | None:
        """Instantiate the format string: the mailer's final step."""
        record = self.lookup(name)
        if record is None:
            return None
        return record.route.replace("%s", user, 1)

    def format_paper(self) -> str:
        """Multi-line text in the paper's example layout."""
        return "\n".join(r.format_paper() for r in self.records)

    def format_tab(self) -> str:
        """Classic ``paths`` file: name TAB route, sorted by name."""
        by_name = sorted(self.records, key=lambda r: r.name)
        return "\n".join(r.format_tab() for r in by_name)


def print_routes(result: MapResult) -> RouteTable:
    """Run route construction and produce the ordered table."""
    compute_routes(result)
    best: dict[int, Label] = {}
    for label in result.labels.values():
        if label.route is None:
            continue  # detached (should not happen; defensive)
        node = label.node
        current = best.get(node.index)
        if current is None or (label.cost, label.domain_seen) < \
                (current.cost, current.domain_seen):
            best[node.index] = label

    records = []
    for label in best.values():
        node = label.node
        if node.private or node.deleted:
            continue
        if node.is_domain:
            parent = label.parent
            if parent is not None and parent.node.is_domain:
                continue  # subdomain: same route as its parent domain
        elif node.is_net:
            continue
        records.append(RouteRecord(label.cost, label.display,
                                   label.route, node))
    records.sort(key=lambda r: (r.cost, r.name))

    unreachable = sorted(n.name for n in result.unreachable()
                         if not n.is_net and not n.is_domain)
    return RouteTable(source=result.source.name, records=records,
                      unreachable=unreachable,
                      warnings=list(result.graph.warnings))
