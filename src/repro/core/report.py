"""One-stop run report: everything a site operator wants on one page.

Assembles the measurements scattered across the library — graph
composition, phase timings, mapping statistics, relay-load analysis,
consistency findings, unreachable hosts — into a single text report,
in the spirit of the stderr summaries the original printed under its
verbose flags.
"""

from __future__ import annotations

from repro.core.pathalias import RunResult
from repro.graph.check import check_map
from repro.graph.stats import compute_stats
from repro.netsim.traffic import analyze_routes


def run_report(result: RunResult, include_checks: bool = True,
               top_relays: int = 5) -> str:
    """Render a full text report for one pathalias run."""
    stats = compute_stats(result.graph)
    times = result.times
    mapping = result.mapping.stats
    table = result.table
    traffic = analyze_routes(table)

    lines = []
    lines.append(f"pathalias run report — source {table.source}")
    lines.append("")
    lines.append("network:")
    lines.append(f"  nodes {stats.nodes} (hosts {stats.hosts}, nets "
                 f"{stats.nets}, domains {stats.domains}, private "
                 f"{stats.private_hosts})")
    lines.append(f"  links {stats.links} (e/v {stats.sparsity:.2f}; "
                 f"normal {stats.normal_links}, net {stats.net_links}, "
                 f"alias {stats.alias_links}, inferred "
                 f"{stats.inferred_links})")
    lines.append("")
    lines.append("phases (seconds):")
    lines.append(f"  scan {times.scan:.3f}  parse {times.parse:.3f}  "
                 f"build {times.build:.3f}  map {times.map:.3f}  "
                 f"print {times.print:.3f}  total {times.total:.3f}")
    lines.append("")
    lines.append("mapping:")
    lines.append(f"  heap pops {mapping.pops}, relaxations "
                 f"{mapping.relaxations}, decrease-keys "
                 f"{mapping.decrease_keys}")
    lines.append(f"  penalties: mixed {mapping.mixed_penalties}, "
                 f"gateway {mapping.gateway_penalties}, domain "
                 f"{mapping.domain_penalties}")
    lines.append(f"  back links invented {mapping.inferred_links} in "
                 f"{mapping.back_link_rounds} rounds")
    lines.append("")
    lines.append("routes:")
    lines.append(f"  {len(table)} printed, "
                 f"{len(table.unreachable)} unreachable")
    lines.append(f"  mean relays/route {traffic.mean_hops:.2f}; "
                 f"busiest relays:")
    for name, load in traffic.top_relays(top_relays):
        lines.append(f"    {name:<20} {load}")
    if table.unreachable:
        shown = ", ".join(table.unreachable[:10])
        suffix = " ..." if len(table.unreachable) > 10 else ""
        lines.append(f"  unreachable: {shown}{suffix}")

    if include_checks:
        findings = check_map(result.graph)
        lines.append("")
        lines.append(f"map checks: {findings.summary()}")
        for finding in list(findings)[:10]:
            lines.append(f"  {finding}")
        if len(findings) > 10:
            lines.append(f"  ... {len(findings) - 10} more")
    return "\n".join(lines)
