"""Route construction: labels -> printf-style format strings.

"Routes are computed by labeling nodes in the shortest path tree in a
preorder traversal.  We first label the root ... with route %s.  In the
recursion step ... the route to a child node [is] the parent's route
[with] %s [replaced] with host!%s or %s@host."

Special cases, from PRINTING THE ROUTES:

* the route to a network is identical to the route to its parent, and
  network-to-member hops use the operator with which the path *entered*
  the network (different gateways may use different syntax);
* alias hops copy the parent's route verbatim — the name that appears is
  the one the predecessor understands;
* a domain appends its name to its successors (``caip`` under
  ``.rutgers`` under ``.edu`` prints as ``caip.rutgers.edu``) and routes
  like a network otherwise.

In second-best mode the labels form a DAG (at most two labels per node);
the traversal below is over labels, so it handles both shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mapper import Label, MapResult
from repro.graph.node import LinkKind, Node
from repro.parser.ast import Direction


@dataclass(frozen=True)
class RouteRecord:
    """One output line: cost, the name mail users write, the route."""

    cost: int
    name: str
    route: str
    node: Node

    def format_paper(self) -> str:
        """The layout of the paper's worked example: cost, name, route."""
        return f"{self.cost}\t{self.name}\t{self.route}"

    def format_tab(self) -> str:
        """The classic ``paths`` database layout: name TAB route."""
        return f"{self.name}\t{self.route}"


def splice(route: str, name: str, op: str, direction: Direction) -> str:
    """Insert one hop into a parent route.

    LEFT (UUCP style): ``%s`` becomes ``name!%s``.
    RIGHT (ARPANET style): ``%s`` becomes ``%s@name``.
    """
    if direction is Direction.LEFT:
        return route.replace("%s", f"{name}{op}%s", 1)
    return route.replace("%s", f"%s{op}{name}", 1)


def compute_routes(result: MapResult) -> list[Label]:
    """Fill ``route``/``display``/``entry`` on every label, preorder.

    Returns the labels in traversal order (root first).  Routes are
    derived purely from parent labels, so a label whose parent is the
    *other* state of the same node (second-best mode) still works.
    """
    labels = list(result.labels.values())
    children: dict[int, list[Label]] = {}
    root = None
    for label in labels:
        if label.parent is None:
            root = label
            continue
        children.setdefault(id(label.parent), []).append(label)
    if root is None:
        return []

    root.route = "%s"
    root.display = root.node.name
    root.entry = None
    order = [root]
    stack = [root]
    while stack:
        parent = stack.pop()
        for child in children.get(id(parent), ()):
            _label_child(parent, child)
            order.append(child)
            stack.append(child)
    return order


def _label_child(parent: Label, child: Label) -> None:
    """Apply the paper's route rules for one parent->child tree edge."""
    link = child.link
    u = parent.node
    v = child.node

    if link.kind is LinkKind.ALIAS:
        # Zero-cost synonym: same machine, same route.
        child.display = v.name
        child.route = parent.route
        child.entry = parent.entry
        return

    if v.netlike:
        # Entering a net/domain, or moving down a domain tree: the
        # placeholder's route is its parent's route.
        if v.is_domain and u.is_domain:
            child.display = v.name + parent.display
        else:
            child.display = v.name
        child.route = parent.route
        if link.kind is LinkKind.NET_MEMBER and parent.entry is not None:
            child.entry = parent.entry  # propagate the entering operator
        else:
            child.entry = (link.op, link.direction)
        return

    # v is a real host.
    if u.netlike:
        op, direction = parent.entry or (link.op, link.direction)
        display = v.name + (parent.display if u.is_domain else "")
        child.display = display
        child.route = splice(parent.route, display, op, direction)
        child.entry = None
        return

    child.display = v.name
    child.route = splice(parent.route, v.name, link.op, link.direction)
    child.entry = None
