"""Exception hierarchy for the pathalias reproduction.

Every error raised by the library derives from :class:`PathaliasError` so
callers can catch one type at the facade boundary.  Parse-time errors carry
source coordinates (file, line) the way the original tool reported them on
stderr.
"""

from __future__ import annotations


class PathaliasError(Exception):
    """Base class for all errors raised by this library."""


class InputError(PathaliasError):
    """A problem with the input description of the network.

    Carries the file name and line number of the offending text so that
    error messages read like the original tool's diagnostics, e.g.
    ``"uunet.map", line 12: bad cost expression``.
    """

    def __init__(self, message: str, filename: str = "<stdin>", line: int = 0):
        self.message = message
        self.filename = filename
        self.line = line
        super().__init__(self.pretty())

    def pretty(self) -> str:
        if self.line:
            return f'"{self.filename}", line {self.line}: {self.message}'
        return f'"{self.filename}": {self.message}'


class ScanError(InputError):
    """The scanner encountered a malformed token."""


class ParseError(InputError):
    """The grammar rejected a statement."""


class CostExpressionError(InputError):
    """A cost expression was malformed or used an unknown symbol."""


class GraphError(PathaliasError):
    """An inconsistency while building or using the connectivity graph."""


class MappingError(PathaliasError):
    """The shortest-path mapping phase failed (e.g. no such source host)."""


class RouteError(PathaliasError):
    """Route construction or database lookup failed."""


class FederationError(RouteError):
    """A federated lookup failed at the shard-stitching layer.

    The destination is owned by some shard, but no chain of gateway
    hosts (hosts sharing a table in two shards) connects the querying
    source's home shard to it.  Subclasses :class:`RouteError` so
    callers that treat "no route" generically keep working, while the
    daemon can report the distinct ``federation`` error code.
    """


class UnknownShardError(FederationError):
    """A shard-administration verb named a shard that is not attached.

    Distinct from the broader :class:`FederationError` so the
    federation daemon can answer ``ERR unknown-shard`` for a bad name
    while a backend daemon's refusal (a failed forwarded reload, an
    unreachable backend) keeps its own error code.
    """


class AddressError(PathaliasError):
    """An electronic-mail address could not be parsed."""
