"""In-memory directed-graph representation of the network topology.

Vertices are hosts *and* networks ("nodes"); edges are communication
links weighted with non-negative costs and labeled with routing syntax.
Cliques are stored as a star around a network node (2n edges, not ~n^2);
aliases are zero-cost edge pairs; private hosts are distinct nodes that
share a name.
"""

from repro.graph.build import Graph, GraphBuilder, build_graph
from repro.graph.check import CheckReport, Finding, check_map
from repro.graph.export import graph_to_dot, tree_to_dot
from repro.graph.node import Link, LinkKind, Node
from repro.graph.stats import GraphStats, compute_stats

__all__ = ["Graph", "GraphBuilder", "build_graph", "CheckReport",
           "Finding", "check_map", "graph_to_dot", "tree_to_dot",
           "Link", "LinkKind", "Node", "GraphStats", "compute_stats"]
