"""Build the connectivity graph from parsed declarations.

Implements the semantic rules of the paper's DATA STRUCTURES and PARSING
sections:

* host names are interned in the double-hashing symbol table
  (:class:`repro.adt.hashtable.HashTable`) — the same substrate the
  original used;
* ``private`` declarations narrow a name's scope from the point of
  declaration to the end of its file, yielding distinct nodes for
  identically named hosts;
* network declarations become a star around a network node: member->net
  carries the declared cost, net->member costs zero;
* aliases become pairs of zero-cost ALIAS edges ("aliases are a property
  of edges, not vertices");
* duplicate links keep the cheaper cost (same-file duplicates warn);
* ``dead``/``adjust``/``delete`` are collected during parsing and applied
  at finalize time, after all files have been read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adt.hashtable import HashTable
from repro.config import DEAD, DEFAULT_LINK_COST
from repro.errors import GraphError
from repro.graph.node import Link, LinkKind, Node
from repro.parser.ast import (
    AdjustDecl,
    AliasDecl,
    DeadDecl,
    Declaration,
    DeleteDecl,
    Direction,
    FileDecl,
    GatewayedDecl,
    HostDecl,
    NetDecl,
    PrivateDecl,
)


@dataclass
class Graph:
    """The finished connectivity graph handed to the mapping phase."""

    nodes: list[Node]
    table: HashTable
    warnings: list[str] = field(default_factory=list)

    def find(self, name: str) -> Node | None:
        """Look up a (global, non-private) node by name."""
        node = self.table.lookup(name)
        if node is not None and node.deleted:
            return None
        return node

    def require(self, name: str) -> Node:
        node = self.find(name)
        if node is None:
            raise GraphError(f"no such host: {name!r}")
        return node

    @property
    def link_count(self) -> int:
        return sum(len(n.links) for n in self.nodes)

    @property
    def nodes_by_index(self) -> dict[int, Node]:
        """Node lookup by dense builder index (includes private nodes,
        which the name table cannot reach)."""
        cached = getattr(self, "_by_index", None)
        if cached is None:
            cached = {n.index: n for n in self.nodes}
            object.__setattr__(self, "_by_index", cached)
        return cached

    def __iter__(self):
        return iter(self.nodes)


class GraphBuilder:
    """Accumulates declarations (possibly across files) into a graph."""

    def __init__(self) -> None:
        self.table: HashTable = HashTable()
        self.nodes: list[Node] = []
        self.warnings: list[str] = []
        self._private: dict[str, Node] = {}  # current file's private names
        self._current_file = "<stdin>"
        # Link dedup index: (from index, to index, kind) -> (Link, file).
        self._links: dict[tuple[int, int, LinkKind], tuple[Link, str]] = {}
        # Deferred mutations, applied at finalize.
        self._dead_hosts: list[str] = []
        self._dead_links: list[tuple[str, str]] = []
        self._adjustments: list[tuple[str, int]] = []
        self._delete_hosts: list[str] = []
        self._delete_links: list[tuple[str, str]] = []
        self._finalized = False

    # -- name interning -----------------------------------------------------

    def _intern(self, name: str) -> Node:
        """Resolve ``name`` in the current scope, creating if needed."""
        node = self._private.get(name)
        if node is not None:
            return node
        node = self.table.lookup(name)
        if node is None:
            node = Node(name, index=len(self.nodes),
                        origin=self._current_file)
            self.table.insert(name, node)
            self.nodes.append(node)
        return node

    def _warn(self, message: str, filename: str, line: int) -> None:
        self.warnings.append(f'"{filename}", line {line}: {message}')

    # -- declarations -------------------------------------------------------

    def new_file(self, filename: str) -> None:
        """Begin a new input file: private scope ends here."""
        self._private.clear()
        self._current_file = filename

    def add(self, decl: Declaration) -> None:
        """Dispatch one declaration into the graph."""
        if self._finalized:
            raise GraphError("graph already finalized")
        if isinstance(decl, HostDecl):
            self._add_host(decl)
        elif isinstance(decl, NetDecl):
            self._add_net(decl)
        elif isinstance(decl, AliasDecl):
            self._add_alias(decl)
        elif isinstance(decl, PrivateDecl):
            self._add_private(decl)
        elif isinstance(decl, DeadDecl):
            self._dead_hosts.extend(decl.hosts)
            self._dead_links.extend(decl.links)
        elif isinstance(decl, AdjustDecl):
            self._adjustments.extend(decl.adjustments)
        elif isinstance(decl, DeleteDecl):
            self._delete_hosts.extend(decl.hosts)
            self._delete_links.extend(decl.links)
        elif isinstance(decl, FileDecl):
            self.new_file(decl.name)
        elif isinstance(decl, GatewayedDecl):
            for name in decl.names:
                self._intern(name).gatewayed = True
        else:  # pragma: no cover - exhaustive over Declaration
            raise GraphError(f"unknown declaration {decl!r}")

    def _add_host(self, decl: HostDecl) -> None:
        host = self._intern(decl.name)
        for spec in decl.links:
            target = self._intern(spec.name)
            if target is host:
                self._warn(f"{decl.name}: link to self ignored",
                           decl.filename, decl.line)
                continue
            cost = DEFAULT_LINK_COST if spec.cost is None else spec.cost
            self._add_link(host, target, cost, spec.op, spec.direction,
                           LinkKind.NORMAL, decl.filename, decl.line)

    def _add_net(self, decl: NetDecl) -> None:
        net = self._intern(decl.name)
        if net.links and not net.is_net and not net.is_domain:
            # Declared earlier as a plain host: the namespaces collide.
            self._warn(f"network name {decl.name!r} also declared as host",
                       decl.filename, decl.line)
        net.is_net = True
        if decl.cost is not None:
            cost = decl.cost
        else:
            # Domain membership is a naming fact, not a transmission hop.
            cost = 0 if net.is_domain else DEFAULT_LINK_COST
        for member_name in decl.members:
            member = self._intern(member_name)
            if member is net:
                self._warn(f"{decl.name}: network contains itself",
                           decl.filename, decl.line)
                continue
            self._add_link(member, net, cost, decl.op, decl.direction,
                           LinkKind.MEMBER_NET, decl.filename, decl.line)
            self._add_link(net, member, 0, decl.op, decl.direction,
                           LinkKind.NET_MEMBER, decl.filename, decl.line)

    def _add_alias(self, decl: AliasDecl) -> None:
        first = self._intern(decl.name)
        for alias_name in decl.aliases:
            other = self._intern(alias_name)
            if other is first:
                self._warn(f"alias of {decl.name!r} to itself ignored",
                           decl.filename, decl.line)
                continue
            self._add_link(first, other, 0, "!", Direction.LEFT,
                           LinkKind.ALIAS, decl.filename, decl.line)
            self._add_link(other, first, 0, "!", Direction.LEFT,
                           LinkKind.ALIAS, decl.filename, decl.line)

    def _add_private(self, decl: PrivateDecl) -> None:
        for name in decl.names:
            if name in self._private:
                self._warn(f"{name!r} already private in this file",
                           decl.filename, decl.line)
                continue
            node = Node(name, index=len(self.nodes), private=True,
                        origin=decl.filename)
            self.nodes.append(node)
            self._private[name] = node

    def _add_link(self, source: Node, target: Node, cost: int, op: str,
                  direction: Direction, kind: LinkKind,
                  filename: str, line: int) -> None:
        if cost < 0:
            self._warn(f"negative cost {cost} on {source.name}->"
                       f"{target.name} clamped to 0", filename, line)
            cost = 0
        key = (source.index, target.index, kind)
        existing = self._links.get(key)
        if existing is not None:
            link, origin_file = existing
            if origin_file == filename:
                self._warn(f"duplicate link {source.name} -> {target.name}"
                           f" (keeping cheaper)", filename, line)
            if cost < link.cost:
                link.cost = cost
                link.op = op
                link.direction = direction
            return
        link = Link(target, cost, op, direction, kind)
        source.add_link(link)
        self._links[key] = (link, filename)

    # -- finalize -----------------------------------------------------------

    def finalize(self) -> Graph:
        """Apply deferred mutations and return the finished graph."""
        if self._finalized:
            raise GraphError("graph already finalized")
        self._finalized = True
        self._apply_deletes()
        self._apply_dead()
        self._apply_adjustments()
        self._collect_gateways()
        return Graph(nodes=[n for n in self.nodes if not n.deleted],
                     table=self.table, warnings=self.warnings)

    def _lookup_global(self, name: str, context: str) -> Node | None:
        node = self.table.lookup(name)
        if node is None:
            self.warnings.append(f"{context}: unknown host {name!r}")
        return node

    def _apply_deletes(self) -> None:
        for name in self._delete_hosts:
            node = self._lookup_global(name, "delete")
            if node is not None:
                node.deleted = True
        for from_name, to_name in self._delete_links:
            source = self._lookup_global(from_name, "delete link")
            target = self._lookup_global(to_name, "delete link")
            if source is None or target is None:
                continue
            source.links = [l for l in source.links if l.to is not target]
        # Drop all edges touching deleted nodes.
        deleted = {n.index for n in self.nodes if n.deleted}
        if deleted:
            for node in self.nodes:
                if node.deleted:
                    node.links = []
                else:
                    node.links = [l for l in node.links
                                  if l.to.index not in deleted]

    def _apply_dead(self) -> None:
        for name in self._dead_hosts:
            node = self._lookup_global(name, "dead")
            if node is None or node.deleted:
                continue
            node.dead = True
        # A dead host is reached only as a last resort: every link into
        # it is surcharged to DEAD.
        dead_nodes = {n.index for n in self.nodes if n.dead}
        if dead_nodes:
            for node in self.nodes:
                for link in node.links:
                    if link.to.index in dead_nodes and not link.dead:
                        link.cost = max(link.cost, DEAD)
                        link.dead = True
        for from_name, to_name in self._dead_links:
            source = self._lookup_global(from_name, "dead link")
            target = self._lookup_global(to_name, "dead link")
            if source is None or target is None or source.deleted \
                    or target.deleted:
                continue
            found = False
            for link in source.links:
                if link.to is target:
                    link.cost = max(link.cost, DEAD)
                    link.dead = True
                    found = True
            if not found:
                # Declaring a dead link that was never declared alive
                # still records last-resort connectivity.
                link = Link(target, DEAD, "!", Direction.LEFT,
                            LinkKind.NORMAL, dead=True)
                source.add_link(link)

    def _apply_adjustments(self) -> None:
        for name, amount in self._adjustments:
            node = self._lookup_global(name, "adjust")
            if node is None or node.deleted:
                continue
            node.adjust += amount
        for node in self.nodes:
            if not node.adjust or node.deleted:
                continue
            for link in node.links:
                link.cost = max(0, link.cost + node.adjust)

    def _collect_gateways(self) -> None:
        """A host with an explicit NORMAL link into a gatewayed net is a
        declared gateway of that net."""
        for node in self.nodes:
            if node.deleted:
                continue
            for link in node.links:
                if link.kind is LinkKind.NORMAL and link.to.gatewayed:
                    if link.to.gateways is None:
                        link.to.gateways = set()
                    link.to.gateways.add(node)


def build_graph(decl_sets: list[tuple[str, list[Declaration]]]) -> Graph:
    """Build a graph from per-file declaration lists.

    Args:
        decl_sets: ``(filename, declarations)`` pairs, one per input file
            — file boundaries scope ``private`` declarations.
    """
    builder = GraphBuilder()
    for filename, decls in decl_sets:
        builder.new_file(filename)
        for decl in decls:
            builder.add(decl)
    return builder.finalize()
