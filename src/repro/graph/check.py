"""Map consistency checking — the QA pass the paper wishes existed.

"At first, gathering such data was a difficult administrative problem
... the data were often contradictory and error-filled, [so] it was
necessary to inspect and edit the data manually."  This module automates
that inspection: it reports the contradictions and hygiene problems a
map maintainer (or the UUCP mapping project) would want to fix.

Checks:
* asymmetric links — a declares b but b never declares a (possibly a
  passive site, possibly an error);
* cost disagreements — both directions exist but differ wildly;
* orphan networks — declared nets nobody links into;
* unknown gateways — ``gatewayed`` names never declared as nets;
* self-costing — zero-cost non-structural links (usually a typo);
* colliding names that are *not* private-guarded (the bilbo problem);
* dead/adjust/delete references to unknown hosts (surfaced by the
  builder as warnings; repeated here for one-stop reporting).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.build import Graph
from repro.graph.node import LinkKind


@dataclass(frozen=True)
class Finding:
    """One checker diagnosis."""

    kind: str       # short machine-usable category
    subject: str    # host/net the finding is about
    detail: str     # human explanation

    def __str__(self) -> str:
        return f"[{self.kind}] {self.subject}: {self.detail}"


@dataclass
class CheckReport:
    findings: list[Finding] = field(default_factory=list)

    def of_kind(self, kind: str) -> list[Finding]:
        return [f for f in self.findings if f.kind == kind]

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    def summary(self) -> str:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.kind] = counts.get(finding.kind, 0) + 1
        if not counts:
            return "map is clean"
        parts = [f"{kind}: {count}"
                 for kind, count in sorted(counts.items())]
        return ", ".join(parts)


#: Both directions declared, but one costs this many times the other.
COST_DISAGREEMENT_FACTOR = 10


def check_map(graph: Graph) -> CheckReport:
    """Run every check over a built graph."""
    report = CheckReport()
    _check_symmetry(graph, report)
    _check_orphan_nets(graph, report)
    _check_gatewayed(graph, report)
    _check_zero_cost(graph, report)
    _check_collisions(graph, report)
    for warning in graph.warnings:
        report.findings.append(Finding("builder-warning", "-", warning))
    return report


def _normal_links(graph: Graph):
    for node in graph.nodes:
        if node.deleted:
            continue
        for link in node.links:
            if link.kind is LinkKind.NORMAL and not link.to.deleted:
                yield node, link


def _check_symmetry(graph: Graph, report: CheckReport) -> None:
    forward: dict[tuple[int, int], int] = {}
    for node, link in _normal_links(graph):
        forward[(node.index, link.to.index)] = link.cost
    for (a, b), cost in forward.items():
        back = forward.get((b, a))
        node_a = graph.nodes_by_index[a]
        node_b = graph.nodes_by_index[b]
        if node_b.netlike:
            continue  # gateway links into nets are one-way by design
        if back is None:
            report.findings.append(Finding(
                "asymmetric-link", node_a.name,
                f"declares {node_b.name} ({cost}) but {node_b.name} "
                f"never declares {node_a.name} (passive site or map "
                f"error)"))
        elif a < b and max(cost, back) > COST_DISAGREEMENT_FACTOR * \
                max(1, min(cost, back)):
            report.findings.append(Finding(
                "cost-disagreement", node_a.name,
                f"{node_a.name}->{node_b.name} costs {cost} but "
                f"{node_b.name}->{node_a.name} costs {back}"))


def _check_orphan_nets(graph: Graph, report: CheckReport) -> None:
    entered: set[int] = set()
    for node in graph.nodes:
        if node.deleted:
            continue
        for link in node.links:
            if link.to.netlike and link.kind in (LinkKind.NORMAL,
                                                 LinkKind.MEMBER_NET):
                entered.add(link.to.index)
    for node in graph.nodes:
        if node.netlike and not node.deleted \
                and node.index not in entered:
            report.findings.append(Finding(
                "orphan-net", node.name,
                "network has no members or gateways linking into it"))


def _check_gatewayed(graph: Graph, report: CheckReport) -> None:
    for node in graph.nodes:
        if node.deleted or not node.gatewayed or node.is_domain:
            continue
        if not node.is_net:
            report.findings.append(Finding(
                "gatewayed-nonnet", node.name,
                "declared gatewayed but never declared as a network"))
        elif not node.gateways:
            report.findings.append(Finding(
                "gatewayed-without-gateway", node.name,
                "requires a gateway but none is declared — every entry "
                "will be severely penalized"))


def _check_zero_cost(graph: Graph, report: CheckReport) -> None:
    for node, link in _normal_links(graph):
        if link.cost == 0 and not link.to.netlike:
            report.findings.append(Finding(
                "zero-cost-link", node.name,
                f"link to {link.to.name} costs 0 (aliases should use "
                f"'=' syntax; otherwise probably a typo)"))


def _check_collisions(graph: Graph, report: CheckReport) -> None:
    by_name: dict[str, int] = {}
    for node in graph.nodes:
        if node.deleted:
            continue
        by_name[node.name] = by_name.get(node.name, 0) + 1
    for name, count in by_name.items():
        if count > 1:
            # Multiple nodes with one name can only happen via private
            # declarations — which is the *guarded* case.  Flag only
            # unusual multiplicities for an administrator's eye.
            if count > 2:
                report.findings.append(Finding(
                    "name-collision", name,
                    f"{count} distinct hosts share this name (private "
                    f"declarations in {count} files)"))
