"""Compile a built :class:`~repro.graph.build.Graph` into flat arrays.

The reference mapper chases Python object pointers on every relaxation:
``link.to``, ``target.deleted``, ``link.kind``, ``target.gateways`` — a
handful of attribute loads and an enum identity test per edge, tens of
thousands of times per run.  All of those facts are *static* once the
graph is finalized, so this module resolves them once, at compile time,
into CSR-style parallel integer arrays:

* nodes get dense *compact ids* ``0..n-1`` (the builder's ``index`` may
  have holes where deleted nodes fell out);
* ``off[cid] .. off[cid+1]`` spans the node's links in the parallel
  link arrays, preserving declaration order (determinism: the two
  engines must relax edges in the same order to break cost ties the
  same way);
* ``link_flags`` packs everything the relaxation loop needs to know —
  whether the hop is a real transmission (penalizable), its routing
  direction, and which member->net penalty (subdomain-up or
  non-gateway entry) it would trigger.  The *penalty predicates* are
  evaluated here; the mapper only multiplies flags by its configured
  penalty amounts.

A ``CompactGraph`` deliberately holds no :class:`Node`/:class:`Link`
references in its picklable state: shipping one to a worker process
costs a few flat lists, not the whole object graph.  The compiling
process keeps a backref to the source graph so results can be
rehydrated into reference-engine structures (`node_of`, `link_obj`).
"""

from __future__ import annotations

from repro.graph.build import Graph
from repro.graph.node import Link, LinkKind, Node, REAL_KINDS
from repro.parser.ast import Direction

#: ``link_flags`` bits.
F_REAL = 1          # real transmission hop: NORMAL / MEMBER_NET / INFERRED
F_LEFT = 2          # LEFT (``!``-style) routing direction
F_SUBDOMAIN_UP = 4  # member->net edge climbing the domain tree
F_NON_GATEWAY = 8   # member->net edge entering a gatewayed net unblessed

#: ``kind`` codes (array-friendly stand-ins for :class:`LinkKind`).
K_NORMAL = 0
K_ALIAS = 1
K_MEMBER_NET = 2
K_NET_MEMBER = 3
K_INFERRED = 4

KIND_CODE = {
    LinkKind.NORMAL: K_NORMAL,
    LinkKind.ALIAS: K_ALIAS,
    LinkKind.MEMBER_NET: K_MEMBER_NET,
    LinkKind.NET_MEMBER: K_NET_MEMBER,
    LinkKind.INFERRED: K_INFERRED,
}

KIND_OF_CODE = {code: kind for kind, code in KIND_CODE.items()}

#: State-kind codes: what sort of node a mapping state stands on.
#: Persisted per state by snapshot format v2 (``STAT`` records), so
#: downstream consumers can tell a routable host's cost from a
#: structural placeholder's without the graph section in hand.
SK_HOST = 0            # an ordinary, globally visible mail host
SK_NET = 1             # a network placeholder (is_net)
SK_DOMAIN = 2          # a domain node (name starts with ".")
SK_PRIVATE = 3         # a file-scoped private node (name shadowable)

STATE_KIND_NAMES = {SK_HOST: "host", SK_NET: "net",
                    SK_DOMAIN: "domain", SK_PRIVATE: "private-shadow"}


class CompactGraph:
    """A finalized graph flattened into parallel integer arrays."""

    __slots__ = (
        # node arrays, indexed by compact id
        "n", "names", "is_domain", "is_net", "netlike", "private",
        "off",
        # link arrays, indexed by link id (CSR position)
        "to", "cost", "flags", "kind", "op",
        # name -> cid for globally visible nodes
        "cid_by_name",
        # non-picklable backrefs to the source graph (compiling process)
        "graph", "_nodes", "_links",
        "warnings",
    )

    def __init__(self) -> None:
        self.n = 0
        self.names: list[str] = []
        self.is_domain: list[int] = []
        self.is_net: list[int] = []
        self.netlike: list[int] = []
        self.private: list[int] = []
        self.off: list[int] = [0]
        self.to: list[int] = []
        self.cost: list[int] = []
        self.flags: list[int] = []
        self.kind: list[int] = []
        self.op: list[str] = []
        self.cid_by_name: dict[str, int] = {}
        self.warnings: list[str] = []
        self.graph: Graph | None = None
        self._nodes: list[Node] | None = None
        self._links: list[Link] | None = None

    # -- compilation --------------------------------------------------------

    @classmethod
    def compile(cls, graph: Graph) -> "CompactGraph":
        """Flatten ``graph`` (post-finalize) into arrays."""
        cg = cls()
        cg.graph = graph
        nodes = [n for n in graph.nodes if not n.deleted]
        cg._nodes = nodes
        cg.n = len(nodes)
        cid_of_index: dict[int, int] = {
            node.index: cid for cid, node in enumerate(nodes)}

        cg.names = [node.name for node in nodes]
        cg.is_domain = [1 if node.is_domain else 0 for node in nodes]
        cg.is_net = [1 if node.is_net else 0 for node in nodes]
        cg.netlike = [1 if node.netlike else 0 for node in nodes]
        cg.private = [1 if node.private else 0 for node in nodes]
        for node in nodes:
            if not node.private:
                # Global names are unique (privates never enter the
                # symbol table), mirroring Graph.find.
                cg.cid_by_name[node.name] = cid_of_index[node.index]

        link_objs: list[Link] = []
        for node in nodes:
            for link in node.links:
                target = link.to
                if target.deleted:
                    continue
                tcid = cid_of_index[target.index]
                flags = 0
                if link.kind in REAL_KINDS:
                    flags |= F_REAL
                if link.direction is Direction.LEFT:
                    flags |= F_LEFT
                if link.kind is LinkKind.MEMBER_NET:
                    if node.is_domain and target.is_domain:
                        flags |= F_SUBDOMAIN_UP
                    elif (target.gatewayed and not target.is_domain
                            and (target.gateways is None
                                 or node not in target.gateways)):
                        flags |= F_NON_GATEWAY
                cg.to.append(tcid)
                cg.cost.append(link.cost)
                cg.flags.append(flags)
                cg.kind.append(KIND_CODE[link.kind])
                cg.op.append(link.op)
                link_objs.append(link)
            cg.off.append(len(cg.to))
        cg._links = link_objs
        cg.warnings = list(graph.warnings)
        return cg

    # -- lookups ------------------------------------------------------------

    def find(self, name: str) -> int | None:
        """Compact id of a globally visible node, or None."""
        return self.cid_by_name.get(name)

    def state_kind(self, cid: int) -> int:
        """The ``SK_*`` code for one node (private wins over shape:
        a private net is still name-shadowable, which is the fact a
        snapshot consumer needs first)."""
        if self.private[cid]:
            return SK_PRIVATE
        if self.is_domain[cid]:
            return SK_DOMAIN
        if self.is_net[cid]:
            return SK_NET
        return SK_HOST

    def state_kinds(self) -> list[int]:
        """The per-node ``SK_*`` table (indexed by compact id) —
        what the snapshot-v2 emitter stamps into ``STAT`` records."""
        return [self.state_kind(cid) for cid in range(self.n)]

    def node_of(self, cid: int) -> Node:
        """The source :class:`Node` (compiling process only)."""
        if self._nodes is None:
            raise RuntimeError(
                "CompactGraph was unpickled without its source graph")
        return self._nodes[cid]

    def link_obj(self, link_id: int) -> Link:
        """The source :class:`Link` (compiling process only)."""
        if self._links is None:
            raise RuntimeError(
                "CompactGraph was unpickled without its source graph")
        return self._links[link_id]

    @property
    def link_count(self) -> int:
        return len(self.to)

    def links_of(self, cid: int):
        """``range`` over the node's CSR link ids (tests/debugging)."""
        return range(self.off[cid], self.off[cid + 1])

    def __repr__(self) -> str:
        return (f"CompactGraph({self.n} nodes, {len(self.to)} links, "
                f"{'attached' if self.graph is not None else 'detached'})")

    # -- pickling -----------------------------------------------------------

    def __getstate__(self):
        """Serialize arrays only — never the source object graph."""
        return {
            "n": self.n, "names": self.names,
            "is_domain": self.is_domain, "is_net": self.is_net,
            "netlike": self.netlike, "private": self.private,
            "off": self.off, "to": self.to, "cost": self.cost,
            "flags": self.flags, "kind": self.kind, "op": self.op,
            "cid_by_name": self.cid_by_name,
            "warnings": self.warnings,
        }

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self.graph = None
        self._nodes = None
        self._links = None
