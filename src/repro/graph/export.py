"""Graphviz (DOT) export of connectivity graphs and route trees.

The paper communicates its data structures and examples as box-and-arrow
figures; this module renders the live objects the same way.  Two views:

* :func:`graph_to_dot` — the connectivity graph, with networks and
  domains drawn as distinct shapes, alias pairs dashed, dead links
  grayed, costs as edge labels;
* :func:`tree_to_dot` — the shortest-path tree (or second-best DAG)
  produced by a mapping run, edges annotated with the route operator.

Output is plain DOT text; no graphviz binary is required to produce it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.build import Graph
from repro.graph.node import LinkKind, Node
from repro.parser.ast import Direction

if TYPE_CHECKING:  # circular at runtime: core imports graph
    from repro.core.mapper import MapResult


def _quote(name: str) -> str:
    escaped = name.replace('"', '\\"')
    return f'"{escaped}"'


def _node_attrs(node: Node) -> str:
    if node.is_domain:
        return "shape=folder, style=filled, fillcolor=lightyellow"
    if node.is_net:
        return "shape=ellipse, style=filled, fillcolor=lightblue"
    if node.private:
        return "shape=box, style=dashed"
    return "shape=box"


_EDGE_STYLE = {
    LinkKind.ALIAS: "style=dashed, dir=none, color=gray40",
    LinkKind.MEMBER_NET: "color=steelblue",
    LinkKind.NET_MEMBER: "color=steelblue, style=dotted",
    LinkKind.INFERRED: "color=orange, style=dashed",
    LinkKind.NORMAL: "",
}


def graph_to_dot(graph: Graph, title: str = "pathalias") -> str:
    """Render the connectivity graph as DOT text."""
    lines = [f"digraph {_quote(title)} {{",
             "  rankdir=LR;",
             "  node [fontname=Helvetica];"]
    emitted_alias_pairs: set[tuple[int, int]] = set()
    for node in graph.nodes:
        if node.deleted:
            continue
        lines.append(f"  {_quote(node.name)} [{_node_attrs(node)}];")
    for node in graph.nodes:
        if node.deleted:
            continue
        for link in node.links:
            if link.to.deleted:
                continue
            if link.kind is LinkKind.ALIAS:
                # One undirected dashed edge per alias pair.
                pair = tuple(sorted((node.index, link.to.index)))
                if pair in emitted_alias_pairs:
                    continue
                emitted_alias_pairs.add(pair)
            attrs = []
            style = _EDGE_STYLE[link.kind]
            if style:
                attrs.append(style)
            if link.kind not in (LinkKind.ALIAS, LinkKind.NET_MEMBER):
                attrs.append(f'label="{link.cost}"')
            if link.dead:
                attrs.append("color=gray, fontcolor=gray")
            attr_text = f" [{', '.join(attrs)}]" if attrs else ""
            lines.append(f"  {_quote(node.name)} -> "
                         f"{_quote(link.to.name)}{attr_text};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def tree_to_dot(result: "MapResult", title: str = "routes") -> str:
    """Render the shortest-path tree (second-best mode: the DAG).

    Each label becomes a vertex named by its display name (falling back
    to the node name when routes have not been computed); tree edges
    carry the operator that materializes in the route text.
    """
    from repro.core.route import compute_routes

    if any(label.route is None for label in result.labels.values()):
        compute_routes(result)

    lines = [f"digraph {_quote(title)} {{",
             "  rankdir=LR;",
             "  node [fontname=Helvetica, shape=box];"]
    names: dict[int, str] = {}
    for key, label in result.labels.items():
        display = label.display or label.node.name
        vertex = f"{display}#{key[1]}" if key[1] else display
        names[id(label)] = vertex
        attrs = [f'label="{display}\\n{label.cost}"']
        if label.node.netlike:
            attrs.append("style=filled, fillcolor=lightyellow")
        lines.append(f"  {_quote(vertex)} [{', '.join(attrs)}];")
    for label in result.labels.values():
        if label.parent is None or label.link is None:
            continue
        op = label.link.op
        direction = ("left" if label.link.direction is Direction.LEFT
                     else "right")
        lines.append(
            f"  {_quote(names[id(label.parent)])} -> "
            f"{_quote(names[id(label)])} "
            f'[label="{op} {direction}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"
