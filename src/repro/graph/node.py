"""Node and link structures — the paper's DATA STRUCTURES section.

"A node is represented by a structure consisting mostly of pointers and
flags.  One of the fields in a node is a pointer to a singly-linked list
of adjacent hosts.  A list element, called a link, contains a pointer to
the next link on the list, a pointer to the destination host on the edge
it represents, a non-negative cost, and some flags."

Python translation: ``Node.links`` is a list of :class:`Link`; the
"flags" are explicit attributes.  Both classes use ``__slots__`` — at
USENET scale (8,500 nodes, 28,000 links) per-object dict overhead is the
Python equivalent of the paper's memory-allocation woes.
"""

from __future__ import annotations

import enum

from repro.parser.ast import Direction


class LinkKind(enum.Enum):
    """Why an edge exists; drives both heuristics and route text.

    NORMAL: a declared host-to-host (or host-to-net gateway) link.
    ALIAS: one of the zero-cost pair connecting two names for the same
        machine; contributes no route text ("aliases are a property of
        edges, not vertices").
    MEMBER_NET: member -> network, carrying the declared cost ("you pay
        to get onto a network"); contributes no immediate route text.
    NET_MEMBER: network -> member, cost zero ("you get off for free");
        route text uses the operator with which the path *entered* the
        network.
    INFERRED: a back link invented for an otherwise unreachable host.
    """

    NORMAL = "normal"
    ALIAS = "alias"
    MEMBER_NET = "member-net"
    NET_MEMBER = "net-member"
    INFERRED = "inferred"


#: Kinds that represent a real transmission hop (penalizable); the rest
#: are structural artifacts of the representation.
REAL_KINDS = frozenset({LinkKind.NORMAL, LinkKind.MEMBER_NET,
                        LinkKind.INFERRED})


class Link:
    """A directed edge: destination, cost, routing syntax, kind."""

    __slots__ = ("to", "cost", "op", "direction", "kind", "dead")

    def __init__(self, to: "Node", cost: int, op: str = "!",
                 direction: Direction = Direction.LEFT,
                 kind: LinkKind = LinkKind.NORMAL, dead: bool = False):
        self.to = to
        self.cost = cost
        self.op = op
        self.direction = direction
        self.kind = kind
        self.dead = dead

    def __repr__(self) -> str:
        return (f"Link(->{self.to.name}, cost={self.cost}, "
                f"{self.op}{self.direction.value}, {self.kind.value})")


class Node:
    """A host or network vertex."""

    __slots__ = ("name", "links", "index", "is_net", "is_domain",
                 "private", "gatewayed", "dead", "deleted", "adjust",
                 "gateways", "origin")

    def __init__(self, name: str, index: int, private: bool = False,
                 origin: str = ""):
        self.name = name
        #: adjacency list, in declaration order (determinism matters:
        #: route output must be reproducible run to run)
        self.links: list[Link] = []
        #: dense id assigned by the builder, used as mapping-state key
        self.index = index
        #: declared with ``name = {...}`` (clique/star representation)
        self.is_net = False
        #: name begins with '.' — a domain; implicitly gatewayed
        self.is_domain = name.startswith(".")
        self.private = private
        #: requires an explicit gateway to enter (always True for domains)
        self.gatewayed = self.is_domain
        self.dead = False
        self.deleted = False
        #: administrator cost nudge applied to every outgoing link
        self.adjust = 0
        #: hosts with an explicit NORMAL link into this (gatewayed) net
        self.gateways: set["Node"] | None = None
        #: file that first mentioned the node (diagnostics)
        self.origin = origin

    def find_link(self, to: "Node", kind: LinkKind) -> Link | None:
        """Locate an existing edge to ``to`` of the given kind."""
        for link in self.links:
            if link.to is to and link.kind is kind:
                return link
        return None

    def add_link(self, link: Link) -> None:
        self.links.append(link)

    @property
    def netlike(self) -> bool:
        """Behaves as a placeholder in routes (network or domain)."""
        return self.is_net or self.is_domain

    def __repr__(self) -> str:
        tags = []
        if self.is_net:
            tags.append("net")
        if self.is_domain:
            tags.append("domain")
        if self.private:
            tags.append("private")
        suffix = f" [{','.join(tags)}]" if tags else ""
        return f"Node({self.name!r}, {len(self.links)} links{suffix})"
