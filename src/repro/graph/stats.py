"""Graph statistics: sparsity, degree distribution, composition.

The paper's complexity argument rests on an empirical claim: "The graph
described by the USENET data is sparse, i.e., the number of edges e is
proportional to v, not v^2", helped along by the compact clique
representation.  This module measures that, for tests and for the E8
full-scale experiment report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.build import Graph
from repro.graph.node import LinkKind


@dataclass(frozen=True)
class GraphStats:
    """Summary measurements over a built graph."""

    nodes: int
    hosts: int
    nets: int
    domains: int
    private_hosts: int
    links: int
    normal_links: int
    alias_links: int
    net_links: int        # MEMBER_NET + NET_MEMBER
    inferred_links: int
    max_out_degree: int
    mean_out_degree: float

    @property
    def sparsity(self) -> float:
        """e / v — the paper's sparseness measure (small constant when
        sparse; ~v when dense)."""
        return self.links / self.nodes if self.nodes else 0.0

    def is_sparse(self, factor: float = 10.0) -> bool:
        """True when e grows like v (within ``factor``), not v^2."""
        return self.links <= factor * max(self.nodes, 1)


def compute_stats(graph: Graph) -> GraphStats:
    """Measure ``graph``; cheap single pass."""
    hosts = nets = domains = private_hosts = 0
    normal = alias = netl = inferred = 0
    max_deg = 0
    total_links = 0
    for node in graph.nodes:
        if node.is_net:
            nets += 1
        if node.is_domain:
            domains += 1
        if not node.is_net and not node.is_domain:
            hosts += 1
        if node.private:
            private_hosts += 1
        degree = len(node.links)
        total_links += degree
        max_deg = max(max_deg, degree)
        for link in node.links:
            if link.kind is LinkKind.NORMAL:
                normal += 1
            elif link.kind is LinkKind.ALIAS:
                alias += 1
            elif link.kind is LinkKind.INFERRED:
                inferred += 1
            else:
                netl += 1
    count = len(graph.nodes)
    return GraphStats(
        nodes=count,
        hosts=hosts,
        nets=nets,
        domains=domains,
        private_hosts=private_hosts,
        links=total_links,
        normal_links=normal,
        alias_links=alias,
        net_links=netl,
        inferred_links=inferred,
        max_out_degree=max_deg,
        mean_out_degree=total_links / count if count else 0.0,
    )
