"""Mailer integration: what INTEGRATING PATHALIAS WITH MAILERS describes.

The route table is only useful through a mailer: a database for manual
and automatic queries (:mod:`repro.mailer.routedb`), address parsing in
the competing syntaxes (:mod:`repro.mailer.address`), route optimization
and header rewriting policy (:mod:`repro.mailer.rewrite`), and a
store-and-forward delivery simulator (:mod:`repro.mailer.delivery`) that
*measures* whether generated routes actually get the mail through.
"""

from repro.mailer.address import (
    MailerStyle,
    ParsedAddress,
    next_hop,
    parse_address,
)
from repro.mailer.delivery import DeliveryReport, Network
from repro.mailer.rewrite import HeaderRewriter, OptimizeMode, RouteOptimizer
from repro.mailer.routedb import IndexedPathsFile, RouteDatabase
from repro.mailer.router import Envelope, MailRouter

__all__ = [
    "MailerStyle", "ParsedAddress", "next_hop", "parse_address",
    "DeliveryReport", "Network", "HeaderRewriter", "OptimizeMode",
    "RouteOptimizer", "IndexedPathsFile", "RouteDatabase",
    "Envelope", "MailRouter",
]
