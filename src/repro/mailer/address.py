"""Electronic-mail address parsing under the competing conventions.

"It is widely acknowledged that no simple measures suffice for
disambiguating a route that contains both '@' and '!' ... most mailers
rigidly adhere to 'UUCP syntax' or to 'RFC822 syntax'.  As such, they
consistently make the wrong choice on selected inputs."

We model three mailer behaviours:

* ``BANG_RIGID`` — pure UUCP: split at the leftmost ``!``; an ``@`` in
  the remainder is just part of the local text.
* ``RFC822_RIGID`` — pure ARPANET: split at the rightmost ``@``; a ``!``
  in the local part is just local text.  Source routes
  (``@a,@b:user@c``) and the ``user%host@relay`` underground syntax are
  honoured.
* ``HEURISTIC`` — the effective rules of Honeyman & Parseghian ("Parsing
  Ambiguous Addresses for Electronic Services"): route-first — if a
  ``!`` appears before the (last) ``@``, treat the address as a bang
  path whose final component is an RFC822 address; otherwise RFC822.

These are exactly the behaviours that make mixed routes dangerous in one
order and safe in the other, which is what the mapper's mixed-syntax
penalty is about (experiment E10 measures it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AddressError


class MailerStyle(enum.Enum):
    BANG_RIGID = "bang"
    RFC822_RIGID = "rfc822"
    HEURISTIC = "heuristic"


@dataclass(frozen=True)
class ParsedAddress:
    """A fully resolved route: ordered relay hops plus the final user."""

    hops: tuple[str, ...]
    user: str

    def as_bang_path(self) -> str:
        """Render as pure UUCP syntax."""
        return "!".join(self.hops + (self.user,))


def _require(condition: bool, address: str, why: str) -> None:
    if not condition:
        raise AddressError(f"cannot parse {address!r}: {why}")


def next_hop(address: str, style: MailerStyle) -> tuple[str | None, str]:
    """One forwarding decision: (next host, address to present there).

    Returns ``(None, user)`` when the address is local under ``style``.
    This is the primitive the delivery simulator applies at every host.
    """
    _require(bool(address), address, "empty address")
    if style is MailerStyle.BANG_RIGID:
        if "!" in address:
            host, rest = address.split("!", 1)
            _require(bool(host) and bool(rest), address, "empty component")
            return host, rest
        return None, address

    if style is MailerStyle.RFC822_RIGID:
        return _rfc822_next(address)

    # HEURISTIC: route-first.  A '!' before the last '@' means the bang
    # path is outermost; otherwise fall back to RFC822 rules.
    if "!" in address:
        at = address.rfind("@")
        bang = address.find("!")
        if at < 0 or bang < at:
            host, rest = address.split("!", 1)
            _require(bool(host) and bool(rest), address, "empty component")
            return host, rest
    if "@" in address or "%" in address:
        return _rfc822_next(address)
    return None, address


def _rfc822_next(address: str) -> tuple[str | None, str]:
    """RFC822 forwarding: source routes, rightmost-@, then the % hack."""
    if address.startswith("@"):
        # Explicit source route: @a,@b:user@c — the "clumsy" syntax.
        head, _, tail = address.partition(":")
        _require(bool(tail), address, "source route without ':'")
        relays = head.split(",")
        first = relays[0]
        _require(first.startswith("@"), address, "bad source route")
        rest_relays = ",".join(relays[1:])
        remainder = f"{rest_relays}:{tail}" if rest_relays else tail
        return first[1:], remainder
    if "@" in address:
        local, _, host = address.rpartition("@")
        _require(bool(local) and bool(host), address, "empty component")
        return host, local
    if "%" in address:
        # The underground syntax: at the delivering host the rightmost
        # '%' is promoted to '@' and routing continues.
        local, _, host = address.rpartition("%")
        _require(bool(local) and bool(host), address, "empty component")
        return host, local
    return None, address


def parse_address(address: str, style: MailerStyle) -> ParsedAddress:
    """Resolve the complete relay sequence an address implies.

    Equivalent to repeatedly applying :func:`next_hop` until the address
    is local, collecting the hosts along the way.
    """
    hops: list[str] = []
    rest = address
    for _ in range(200):  # malformed addresses must not spin forever
        host, rest = next_hop(rest, style)
        if host is None:
            return ParsedAddress(tuple(hops), rest)
        hops.append(host)
    raise AddressError(f"address too deep: {address!r}")
