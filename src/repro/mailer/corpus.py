"""An era-realistic address corpus with expected parses.

The paper's world mixes at least five address shapes in live traffic:
pure bang paths, pure RFC822, source routes, the ``%`` underground, and
the merged domain/UUCP forms gateways began accepting
(``seismo!f.isi.usc.edu!postel``).  This corpus collects representative
specimens with their *expected* next-hop decision under each mailer
style, as data — used by table-driven tests, by the delivery simulator's
test matrix, and as executable documentation of exactly where the styles
disagree.

Each entry records: the address, a short provenance note, and for every
style either ``(next_host, remainder)`` or ``None`` for local delivery,
or the string ``"error"`` when the style rejects the address outright.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mailer.address import MailerStyle


@dataclass(frozen=True)
class Specimen:
    """One corpus entry."""

    address: str
    note: str
    #: expected next_hop() result per style: (host, remainder),
    #: (None, user) for local, or "error"
    bang: tuple | str
    rfc822: tuple | str
    heuristic: tuple | str

    def expected(self, style: MailerStyle) -> tuple | str:
        if style is MailerStyle.BANG_RIGID:
            return self.bang
        if style is MailerStyle.RFC822_RIGID:
            return self.rfc822
        return self.heuristic


CORPUS: list[Specimen] = [
    Specimen(
        "research!honey",
        "plain one-hop UUCP (the mail hosta!hostb!user idiom)",
        bang=("research", "honey"),
        rfc822=(None, "research!honey"),
        heuristic=("research", "honey")),
    Specimen(
        "seismo!mcvax!piet",
        "classic transatlantic bang path (paper, PERSPECTIVES)",
        bang=("seismo", "mcvax!piet"),
        rfc822=(None, "seismo!mcvax!piet"),
        heuristic=("seismo", "mcvax!piet")),
    Specimen(
        "postel@isi",
        "plain ARPANET",
        bang=(None, "postel@isi"),
        rfc822=("isi", "postel"),
        heuristic=("isi", "postel")),
    Specimen(
        "duke!research!ucbvax!user@mit-ai",
        "pathalias mixed output (paper's 1981 example)",
        bang=("duke", "research!ucbvax!user@mit-ai"),
        rfc822=("mit-ai", "duke!research!ucbvax!user"),
        heuristic=("duke", "research!ucbvax!user@mit-ai")),
    Specimen(
        "seismo!postel@f.isi.usc.edu",
        "once-unavoidable mixed route (paper, Cost calculation)",
        bang=("seismo", "postel@f.isi.usc.edu"),
        rfc822=("f.isi.usc.edu", "seismo!postel"),
        heuristic=("seismo", "postel@f.isi.usc.edu")),
    Specimen(
        "seismo!f.isi.usc.edu!postel",
        "the merged domain/UUCP form gateways accept (ibid.)",
        bang=("seismo", "f.isi.usc.edu!postel"),
        rfc822=(None, "seismo!f.isi.usc.edu!postel"),
        heuristic=("seismo", "f.isi.usc.edu!postel")),
    Specimen(
        "user%host@relay",
        "the underground syntax (paper, PERSPECTIVES)",
        bang=(None, "user%host@relay"),
        rfc822=("relay", "user%host"),
        heuristic=("relay", "user%host")),
    Specimen(
        "u%h3%h2@h1",
        "chained percent hack",
        bang=(None, "u%h3%h2@h1"),
        rfc822=("h1", "u%h3%h2"),
        heuristic=("h1", "u%h3%h2")),
    Specimen(
        "@relay1,@relay2:user@final",
        "RFC822 explicit source route ('clumsy' per the paper); a "
        "bang-rigid host sees no '!' and delivers it locally",
        bang=(None, "@relay1,@relay2:user@final"),
        rfc822=("relay1", "@relay2:user@final"),
        heuristic=("relay1", "@relay2:user@final")),
    Specimen(
        "caip.rutgers.edu!pleasant",
        "domain name in a bang path (paper, Domains)",
        bang=("caip.rutgers.edu", "pleasant"),
        rfc822=(None, "caip.rutgers.edu!pleasant"),
        heuristic=("caip.rutgers.edu", "pleasant")),
    Specimen(
        "a!user@c",
        "the genuinely ambiguous order (paper: 'no simple measures "
        "suffice')",
        bang=("a", "user@c"),
        rfc822=("c", "a!user"),
        heuristic=("a", "user@c")),
    Specimen(
        "user@gw!x",
        "at-before-bang: rigid RFC822 manufactures host 'gw!x', and "
        "rigid UUCP manufactures host 'user@gw'",
        bang=("user@gw", "x"),
        rfc822=("gw!x", "user"),
        heuristic=("gw!x", "user")),
    Specimen(
        "honey",
        "local user",
        bang=(None, "honey"),
        rfc822=(None, "honey"),
        heuristic=(None, "honey")),
    Specimen(
        "ihnp4!ihnp4!looptest",
        "a loop test (time-honored UUCP tradition)",
        bang=("ihnp4", "ihnp4!looptest"),
        rfc822=(None, "ihnp4!ihnp4!looptest"),
        heuristic=("ihnp4", "ihnp4!looptest")),
    Specimen(
        "!broken",
        "leading bang: malformed everywhere it is parsed as a route",
        bang="error",
        rfc822=(None, "!broken"),
        heuristic="error",
    ),
]


def specimens_for(style: MailerStyle) -> list[tuple[str, tuple | str]]:
    """(address, expectation) pairs for one style."""
    return [(s.address, s.expected(style)) for s in CORPUS]


def divergent_specimens() -> list[Specimen]:
    """Entries where at least two styles choose different next hops."""
    out = []
    for s in CORPUS:
        outcomes = {str(s.bang), str(s.rfc822), str(s.heuristic)}
        if len(outcomes) > 1:
            out.append(s)
    return out
