"""Store-and-forward delivery simulation.

Pathalias's philosophy is "get the mail through, reliably and
efficiently" — so the reproduction includes a way to *check* that the
routes it emits actually get mail through.  Each host applies its own
mailer convention (:class:`~repro.mailer.address.MailerStyle`) to decide
the next hop; physical connectivity comes from the same graph the routes
were computed from.

This is what turns the paper's qualitative argument about ambiguous
mixed-syntax routes into a measurement (experiment E10): a route of the
form ``a!user@b`` dies at a bang-rigid relay, while ``a!b!%s@c`` — the
form the mapper's penalty steers toward — survives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.build import Graph
from repro.graph.node import LinkKind, Node
from repro.mailer.address import MailerStyle, next_hop

#: Forwarding budget: longer paths than this are reported as loops.
MAX_HOPS = 64


@dataclass
class DeliveryReport:
    """Outcome of one simulated message."""

    origin: str
    address: str
    delivered: bool
    final_host: str
    user: str | None
    hops: list[str] = field(default_factory=list)
    failure: str | None = None

    @property
    def hop_count(self) -> int:
        return len(self.hops)


class Network:
    """The physical network implied by a connectivity graph.

    Two hosts can exchange mail directly when the graph has a real link
    between them or when they sit on a common network/domain (clique
    members all talk to each other — that is what the star
    representation compresses).
    """

    def __init__(self, graph: Graph,
                 styles: dict[str, MailerStyle] | None = None,
                 default_style: MailerStyle = MailerStyle.BANG_RIGID):
        self.graph = graph
        self.styles = styles or {}
        self.default_style = default_style
        self._neighbors: dict[str, set[str]] = {}
        self._memberships: dict[str, set[str]] = {}  # host -> net names
        self._resolve: dict[str, str] = {}           # display -> node name
        self._index()

    def _index(self) -> None:
        for node in self.graph.nodes:
            if node.deleted:
                continue
            name = node.name
            self._resolve.setdefault(name, name)
            neighbors = self._neighbors.setdefault(name, set())
            for link in node.links:
                target = link.to
                if target.deleted:
                    continue
                if link.kind in (LinkKind.NORMAL, LinkKind.INFERRED) \
                        and not target.netlike:
                    neighbors.add(target.name)
                elif link.kind is LinkKind.NET_MEMBER:
                    # net -> member: the member belongs to this net
                    # (subdomains included: .edu -> .rutgers).
                    self._memberships.setdefault(target.name, set()).add(
                        name)
                elif target.netlike:
                    # member -> net edge, or an explicit gateway link.
                    self._memberships.setdefault(name, set()).add(
                        target.name)
                if link.kind is LinkKind.ALIAS:
                    neighbors.add(target.name)
        # Domain-qualified spellings resolve to the bare host name:
        # mail for caip.rutgers.edu is mail for caip.
        for node in self.graph.nodes:
            if node.netlike or node.deleted:
                continue
            for fqdn in self._qualified_names(node):
                self._resolve.setdefault(fqdn, node.name)

    def _qualified_names(self, node: Node) -> list[str]:
        """Host name joined with each domain it belongs to, transitively
        (caip under .rutgers under .edu yields caip.rutgers.edu)."""
        out = []
        for net_name in self._memberships.get(node.name, ()):  # direct
            net = self.graph.find(net_name)
            if net is None or not net.is_domain:
                continue
            for suffix in self._domain_suffixes(net):
                out.append(node.name + suffix)
        return out

    def _domain_suffixes(self, domain: Node,
                         depth: int = 0) -> list[str]:
        """All fully-expanded suffixes for a domain node."""
        if depth > 8:  # cyclic domain declarations: stop expanding
            return []
        suffixes = []
        parents = [self.graph.find(net_name)
                   for net_name in self._memberships.get(domain.name, ())]
        parent_domains = [p for p in parents
                          if p is not None and p.is_domain]
        if not parent_domains:
            return [domain.name]
        for parent in parent_domains:
            for suffix in self._domain_suffixes(parent, depth + 1):
                suffixes.append(domain.name + suffix)
        return suffixes

    # -- connectivity -------------------------------------------------------

    def style(self, host: str) -> MailerStyle:
        return self.styles.get(host, self.default_style)

    def resolve_name(self, name: str) -> str | None:
        """Map an address spelling to a graph host name."""
        return self._resolve.get(name)

    def can_send(self, sender: str, receiver: str) -> bool:
        if receiver in self._neighbors.get(sender, ()):
            return True
        shared = self._memberships.get(sender, set()) \
            & self._memberships.get(receiver, set())
        if shared:
            return True
        # A gateway with an explicit link into a net reaches members.
        for net_name in self._memberships.get(receiver, set()):
            if net_name in self._neighbors.get(sender, set()):
                return True
        return False

    # -- simulation ---------------------------------------------------------

    def deliver(self, origin: str, address: str) -> DeliveryReport:
        """Forward a message hop by hop until delivery or failure."""
        current = origin
        rest = address
        hops: list[str] = []
        for _ in range(MAX_HOPS):
            style = self.style(current)
            try:
                target, remainder = next_hop(rest, style)
            except Exception as exc:  # malformed under this host's rules
                return DeliveryReport(origin, address, False, current,
                                      None, hops,
                                      failure=f"unparseable at "
                                              f"{current}: {exc}")
            if target is None:
                return DeliveryReport(origin, address, True, current,
                                      remainder, hops)
            resolved = self.resolve_name(target)
            if resolved is None:
                return DeliveryReport(origin, address, False, current,
                                      None, hops,
                                      failure=f"{current} knows no host "
                                              f"{target!r}")
            if not self.can_send(current, resolved):
                return DeliveryReport(origin, address, False, current,
                                      None, hops,
                                      failure=f"no link {current} -> "
                                              f"{resolved}")
            hops.append(resolved)
            current = resolved
            rest = remainder
        return DeliveryReport(origin, address, False, current, None, hops,
                              failure="hop budget exhausted (loop?)")

    def deliver_route(self, origin: str, route: str,
                      user: str = "user") -> DeliveryReport:
        """Instantiate a pathalias format string and deliver it."""
        return self.deliver(origin, route.replace("%s", user, 1))
