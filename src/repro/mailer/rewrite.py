"""Route optimization and header-rewriting policy.

From INTEGRATING PATHALIAS WITH MAILERS:

* "given a hideously long UUCP path ... should the mailer simply find a
  route to the first site in the string, or should it search for the
  rightmost host known to its database?"  — :class:`RouteOptimizer`
  implements both, plus the safety valve: "Loop tests are a time-honored
  UUCP tradition, and an overly-enthusiastic optimizer can eliminate
  them altogether", so paths that return to the local host are left
  alone, and optimization can be disabled outright.

* The closing principles ("For message headers to be useful, they must
  be accurate") become :class:`HeaderRewriter`, the policy object the
  delivery simulator consults: relays do not modify routes; gateways
  translate between addressing styles; a host must not emit a return
  path it would reject.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AddressError, RouteError
from repro.mailer.address import MailerStyle, parse_address
from repro.mailer.routedb import RouteDatabase


class OptimizeMode(enum.Enum):
    OFF = "off"                # trust the user's explicit route
    FIRST_HOP = "first-hop"    # route to the first named site
    RIGHTMOST = "rightmost"    # re-route to the rightmost known host


@dataclass(frozen=True)
class OptimizedRoute:
    address: str       # the address to hand to the transport
    pivot: str | None  # database host the route was rebuilt around
    savings: int       # user-specified hops eliminated


class RouteOptimizer:
    """Rewrite user-supplied bang paths against the route database."""

    def __init__(self, db: RouteDatabase, localhost: str,
                 mode: OptimizeMode = OptimizeMode.RIGHTMOST,
                 preserve_loops: bool = True):
        self.db = db
        self.localhost = localhost
        self.mode = mode
        self.preserve_loops = preserve_loops

    def optimize(self, address: str) -> OptimizedRoute:
        """Optimize an explicitly routed address.

        The address is interpreted route-first (the heuristic style);
        pure ``user@host`` addresses are resolved through the database
        directly.
        """
        parsed = parse_address(address, MailerStyle.HEURISTIC)
        hops = list(parsed.hops)
        if not hops:
            raise AddressError(f"{address!r} names no relay")

        if self.preserve_loops and self.localhost in hops:
            # A loop test: the user wants the mail to come back.
            return OptimizedRoute(address=address, pivot=None, savings=0)
        if self.mode is OptimizeMode.OFF:
            return OptimizedRoute(address=address, pivot=None, savings=0)

        if self.mode is OptimizeMode.FIRST_HOP:
            pivot_index = 0
        else:
            pivot_index = self._rightmost_known(hops)
        pivot = hops[pivot_index]
        remainder = hops[pivot_index + 1:]
        tail = "!".join(remainder + [parsed.user])
        resolution = self.db.resolve(pivot, tail)
        return OptimizedRoute(address=resolution.address, pivot=pivot,
                              savings=pivot_index)

    def _rightmost_known(self, hops: list[str]) -> int:
        for index in range(len(hops) - 1, -1, -1):
            if hops[index] in self.db:
                return index
        raise RouteError(f"no host of {hops!r} is in the route database")


@dataclass(frozen=True)
class Header:
    """The minimal header set the closing principles talk about."""

    sender: str     # From: as currently written
    recipient: str  # To: as currently written


class HeaderRewriter:
    """The paper's six principles, as a forwarding-time policy.

    A *relay* (same network on both sides) must not modify routes nor
    translate styles.  A *gateway* translates between addressing styles
    when carrying mail across networks.  Any host prepending itself to a
    return path must produce a path it would itself accept.
    """

    def __init__(self, host: str, style: MailerStyle,
                 is_gateway: bool = False):
        self.host = host
        self.style = style
        self.is_gateway = is_gateway

    def extend_return_path(self, sender_path: str) -> str:
        """Prepend this host to the return path, in its own syntax.

        UUCP hosts write ``host!sender``; RFC822 hosts leave a
        ``user@host``-style sender alone if it is already absolute and
        otherwise must encapsulate — they use the %-hack form so the
        result stays parseable by their own rules ("a host must not
        generate a return path that would be rejected if used").
        """
        if self.style is MailerStyle.BANG_RIGID \
                or self.style is MailerStyle.HEURISTIC:
            return f"{self.host}!{sender_path}"
        if "@" not in sender_path:
            return f"{sender_path}@{self.host}"
        local, _, final = sender_path.rpartition("@")
        return f"{local}%{final}@{self.host}"

    def forward_header(self, header: Header, rest: str) -> Header:
        """Rewrite headers while forwarding ``rest`` to the next hop.

        Relays pass the recipient through untouched (principle: "Relays
        within a network should not modify routes, nor translate to
        foreign addressing styles"); gateways may rewrite the remainder
        into their outbound syntax.
        """
        recipient = rest
        if self.is_gateway:
            recipient = self.translate(rest)
        return Header(sender=self.extend_return_path(header.sender),
                      recipient=recipient)

    def translate(self, address: str) -> str:
        """Gateway translation between addressing styles.

        A bang remainder crossing into RFC822 territory becomes
        ``user%...@first`` (the accepted underground form); an RFC822
        remainder crossing into UUCP becomes a bang path.
        """
        if self.style is MailerStyle.RFC822_RIGID and "!" in address:
            hops_user = address.split("!")
            user = hops_user[-1]
            relays = hops_user[:-1]
            first = relays[0]
            inner = "%".join([user] + relays[:0:-1])
            return f"{inner}@{first}"
        if self.style is not MailerStyle.RFC822_RIGID and "@" in address:
            local, _, host = address.rpartition("@")
            return f"{host}!{local}"
        return address
