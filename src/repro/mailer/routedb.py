"""The route database and the paper's domain lookup procedure.

"Output from pathalias is a simple linear file, in the UNIX tradition.
If desired, a separate program may be used to convert this file into a
format appropriate for rapid database retrieval."

Two access paths are provided:

* :class:`RouteDatabase` — in-memory map with the *domain suffix search*
  the paper specifies: to route to ``caip.rutgers.edu!pleasant``, search
  ``caip.rutgers.edu``, then ``.rutgers.edu``, then ``.edu``; on a
  domain match the format argument is the route relative to the gateway
  (``caip.rutgers.edu!pleasant``), not just the user.
* :class:`IndexedPathsFile` — the "separate program": a sorted paths
  file searched by bisection, standing in for the dbm conversion
  (experiment E12 measures lookups against a linear scan).

The suffix-search algorithm itself (and the :class:`Resolution` record
it produces) lives in :mod:`repro.service.resolver` — one shared
implementation behind every lookup surface, re-exported here so
historical imports keep working.  :class:`RouteDatabase` satisfies the
:class:`~repro.service.resolver.Resolver` protocol, which is exactly
the surface :class:`~repro.mailer.router.MailRouter` requires of its
``db``.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.printer import RouteTable
from repro.errors import RouteError
from repro.service.fsm import SuffixAutomaton, compile_keys
from repro.service.resolver import (  # noqa: F401  (re-exports)
    Resolution,
    SuffixResolver,
    domain_suffixes,
)


class RouteDatabase(SuffixResolver):
    """Name -> route map with the paper's domain fallback.

    ``costs`` optionally carries the mapped cost per name (kept by
    :meth:`from_table` and the snapshot reader's ``database()``), so
    the database answers ``resolve_with_cost`` like every other
    :class:`~repro.service.resolver.Resolver`; names without a
    recorded cost report 0.
    """

    def __init__(self, routes: dict[str, str],
                 costs: dict[str, int] | None = None,
                 source: str | None = None):
        self._routes = dict(routes)
        self._costs = dict(costs) if costs else {}
        self._source = source
        # compiled dispatch, built lazily on the first suffix resolve
        # (the route map is immutable after construction)
        self._auto: SuffixAutomaton | None = None
        self._auto_keys: list[str] | None = None

    @classmethod
    def from_table(cls, table: RouteTable) -> "RouteDatabase":
        """Lift a mapped :class:`RouteTable` (routes, costs, source)."""
        return cls({record.name: record.route for record in table},
                   costs={record.name: record.cost for record in table},
                   source=table.source)

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, name: str) -> bool:
        return name in self._routes

    def route(self, name: str) -> str | None:
        """The stored route template for an exact name, or None."""
        return self._routes.get(name)

    def lookup(self, name: str) -> tuple[int, str] | None:
        """``(cost, route)`` for an exact name (cost 0 if unrecorded)."""
        route = self._routes.get(name)
        if route is None:
            return None
        return self._costs.get(name, 0), route

    # -- the Resolver protocol surface ----------------------------------------
    # resolve / resolve_bang come from SuffixResolver; resolve_with_cost
    # is overridden onto the compiled automaton (one O(labels) match
    # instead of a dict probe per suffix), byte-identical to the walk.

    def _automaton(self) -> SuffixAutomaton:
        if self._auto is None:
            self._auto_keys = sorted(self._routes,
                                     key=lambda n: n.encode("utf-8"))
            self._auto = compile_keys(self._auto_keys)
        return self._auto

    def resolve_with_cost(self, target: str, user: str = "%s"
                          ) -> tuple[int, Resolution]:
        """Compiled domain-suffix lookup (see
        :meth:`~repro.service.resolver.SuffixResolver.resolve_with_cost`
        for the contract this matches exactly)."""
        idx = self._automaton().match(target)
        if idx < 0:
            raise RouteError(f"no route to {target!r}")
        key = self._auto_keys[idx]
        route = self._routes[key]
        cost = self._costs.get(key, 0)
        argument = user if key == target else f"{target}!{user}"
        return cost, Resolution(
            target=target, matched=key, route=route,
            address=route.replace("%s", argument, 1))

    #: The uncompiled per-suffix dict walk, kept reachable as the
    #: differential oracle for the automaton path (aliased, not
    #: wrapped: the method object *is* the shared implementation).
    resolve_with_cost_dict = SuffixResolver.resolve_with_cost

    def source_table(self) -> str | None:
        """The source host these routes were mapped from (if known)."""
        return self._source

    def cached(self, size: int | None = None):
        """This database behind a generation-stamped result cache
        (:class:`~repro.service.cache.CachingResolver`): repeat
        lookups of a hot pair skip the suffix machinery.  The route
        map is immutable after construction, so the wrapper never
        needs a generation bump."""
        from repro.service.cache import DEFAULT_CACHE_SIZE, \
            CachingResolver

        return CachingResolver(
            self, size=DEFAULT_CACHE_SIZE if size is None else size)

    def stats(self) -> dict:
        """Backend counters: entry and recorded-cost counts."""
        return {"entries": str(len(self._routes)),
                "costs": str(len(self._costs)),
                "source": self._source or ""}


class IndexedPathsFile:
    """A sorted on-disk paths file with bisection lookup.

    Mimics the dbm post-processing step: the linear file is sorted once
    (``build``), then lookups cost O(log n) line comparisons instead of
    a linear scan.  Comparison counts are exposed for experiment E12.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._names: list[str] = []
        self._routes: list[str] = []
        self.comparisons = 0

    @classmethod
    def build(cls, table: RouteTable, path: str | Path) -> "IndexedPathsFile":
        """Write the sorted paths file and return a ready index."""
        records = sorted(table, key=lambda r: r.name)
        text = "".join(f"{r.name}\t{r.route}\n" for r in records)
        Path(path).write_text(text)
        index = cls(path)
        index.load()
        return index

    def load(self) -> None:
        self._names = []
        self._routes = []
        for line in self.path.read_text().splitlines():
            if not line.strip():
                continue
            name, _, route = line.partition("\t")
            if not route:
                raise RouteError(f"malformed paths line: {line!r}")
            self._names.append(name)
            self._routes.append(route)
        if self._names != sorted(self._names):
            raise RouteError(f"paths file {self.path} is not sorted")

    def __len__(self) -> int:
        return len(self._names)

    def lookup(self, name: str) -> str | None:
        """Bisection search, counting comparisons."""
        lo, hi = 0, len(self._names)
        while lo < hi:
            mid = (lo + hi) // 2
            self.comparisons += 1
            if self._names[mid] < name:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self._names) and self._names[lo] == name:
            return self._routes[lo]
        return None

    def lookup_linear(self, name: str) -> str | None:
        """The unconverted linear-file scan, for comparison."""
        for stored, route in zip(self._names, self._routes):
            self.comparisons += 1
            if stored == name:
                return route
        return None

    def database(self) -> RouteDatabase:
        """Lift the file into a :class:`RouteDatabase` (suffix search)."""
        return RouteDatabase(dict(zip(self._names, self._routes)))
