"""The route database and the paper's domain lookup procedure.

"Output from pathalias is a simple linear file, in the UNIX tradition.
If desired, a separate program may be used to convert this file into a
format appropriate for rapid database retrieval."

Two access paths are provided:

* :class:`RouteDatabase` — in-memory map with the *domain suffix search*
  the paper specifies: to route to ``caip.rutgers.edu!pleasant``, search
  ``caip.rutgers.edu``, then ``.rutgers.edu``, then ``.edu``; on a
  domain match the format argument is the route relative to the gateway
  (``caip.rutgers.edu!pleasant``), not just the user.
* :class:`IndexedPathsFile` — the "separate program": a sorted paths
  file searched by bisection, standing in for the dbm conversion
  (experiment E12 measures lookups against a linear scan).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.printer import RouteTable
from repro.errors import RouteError


@dataclass(frozen=True)
class Resolution:
    """A successful lookup: which key matched and the final address."""

    target: str      # what the mail was addressed to
    matched: str     # database key that matched (host or domain)
    route: str       # the printf-style route of the match
    address: str     # fully instantiated address


def domain_suffixes(name: str) -> list[str]:
    """The search sequence: exact name, then each domain suffix.

    >>> domain_suffixes("caip.rutgers.edu")
    ['caip.rutgers.edu', '.rutgers.edu', '.edu']
    """
    out = [name]
    start = 1 if name.startswith(".") else 0
    rest = name[start:]
    while "." in rest:
        rest = rest.split(".", 1)[1]
        out.append("." + rest)
    return out


class RouteDatabase:
    """Name -> route map with the paper's domain fallback."""

    def __init__(self, routes: dict[str, str]):
        self._routes = dict(routes)

    @classmethod
    def from_table(cls, table: RouteTable) -> "RouteDatabase":
        return cls({record.name: record.route for record in table})

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, name: str) -> bool:
        return name in self._routes

    def route(self, name: str) -> str | None:
        return self._routes.get(name)

    def resolve(self, target: str, user: str) -> Resolution:
        """Resolve mail for ``user`` at ``target``.

        Exact host match: the argument is the user.  Domain match: the
        argument is ``target!user`` — "a route relative to its gateway".
        """
        for key in domain_suffixes(target):
            route = self._routes.get(key)
            if route is None:
                continue
            if key == target:
                argument = user
            else:
                argument = f"{target}!{user}"
            return Resolution(target=target, matched=key, route=route,
                              address=route.replace("%s", argument, 1))
        raise RouteError(f"no route to {target!r}")

    def resolve_bang(self, bang_address: str) -> Resolution:
        """Resolve ``host!rest`` or plain ``host`` forms."""
        if "!" in bang_address:
            target, user = bang_address.split("!", 1)
        else:
            raise RouteError(
                f"address {bang_address!r} names no user (expected "
                f"target!user)")
        return self.resolve(target, user)


class IndexedPathsFile:
    """A sorted on-disk paths file with bisection lookup.

    Mimics the dbm post-processing step: the linear file is sorted once
    (``build``), then lookups cost O(log n) line comparisons instead of
    a linear scan.  Comparison counts are exposed for experiment E12.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._names: list[str] = []
        self._routes: list[str] = []
        self.comparisons = 0

    @classmethod
    def build(cls, table: RouteTable, path: str | Path) -> "IndexedPathsFile":
        """Write the sorted paths file and return a ready index."""
        records = sorted(table, key=lambda r: r.name)
        text = "".join(f"{r.name}\t{r.route}\n" for r in records)
        Path(path).write_text(text)
        index = cls(path)
        index.load()
        return index

    def load(self) -> None:
        self._names = []
        self._routes = []
        for line in self.path.read_text().splitlines():
            if not line.strip():
                continue
            name, _, route = line.partition("\t")
            if not route:
                raise RouteError(f"malformed paths line: {line!r}")
            self._names.append(name)
            self._routes.append(route)
        if self._names != sorted(self._names):
            raise RouteError(f"paths file {self.path} is not sorted")

    def __len__(self) -> int:
        return len(self._names)

    def lookup(self, name: str) -> str | None:
        """Bisection search, counting comparisons."""
        lo, hi = 0, len(self._names)
        while lo < hi:
            mid = (lo + hi) // 2
            self.comparisons += 1
            if self._names[mid] < name:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self._names) and self._names[lo] == name:
            return self._routes[lo]
        return None

    def lookup_linear(self, name: str) -> str | None:
        """The unconverted linear-file scan, for comparison."""
        for stored, route in zip(self._names, self._routes):
            self.comparisons += 1
            if stored == name:
                return route
        return None

    def database(self) -> RouteDatabase:
        """Lift the file into a :class:`RouteDatabase` (suffix search)."""
        return RouteDatabase(dict(zip(self._names, self._routes)))
