"""The end-to-end mail router: database + optimizer + header policy.

INTEGRATING PATHALIAS WITH MAILERS enumerates where the query can live
(manual lookup, user agents, a separate program run by the delivery
agent, or the delivery agent itself).  :class:`MailRouter` is that last,
most capable option: given a recipient address it resolves a transport
address, rewrites headers by the paper's principles, and can compute a
*reply* address for received mail.

It also reproduces the PERSPECTIVES hazard: a host running pathalias
may abbreviate ``seismo!mcvax!piet`` to ``mcvax!piet`` in a Cc: header;
downstream, that relative address silently rebinds to the sender's name
space (``cbosgd!mcvax!piet``) — "this cannot be safely transformed
without making assumptions about host name uniqueness."
:meth:`MailRouter.abbreviate_cc` implements the abbreviation exactly so
the hazard can be tested and demonstrated rather than just described.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RouteError
from repro.mailer.address import MailerStyle, parse_address
from repro.mailer.rewrite import (
    HeaderRewriter,
    OptimizeMode,
    RouteOptimizer,
)
from repro.mailer.routedb import Resolution, RouteDatabase


@dataclass(frozen=True)
class Envelope:
    """What the transport needs: next-hop address plus headers."""

    transport_address: str   # fully resolved, ready for the transport
    from_header: str         # return path as it should appear
    to_header: str           # recipient as it should appear


class MailRouter:
    """A delivery agent's routing brain for one host.

    ``db`` is anything satisfying the
    :class:`~repro.service.resolver.Resolver` protocol (``resolve`` /
    ``resolve_with_cost``): the in-memory :class:`RouteDatabase`, an
    indexed paths file lifted into one, the in-process snapshot
    surface, or — via :meth:`connected` / :meth:`federated` — a live
    route daemon, so the delivery agent shares one precomputed
    snapshot with every other agent on the machine instead of loading
    its own copy.
    """

    def __init__(self, host: str, db: RouteDatabase,
                 style: MailerStyle = MailerStyle.HEURISTIC,
                 is_gateway: bool = False,
                 optimize: OptimizeMode = OptimizeMode.RIGHTMOST,
                 preserve_loops: bool = True):
        self.host = host
        self.db = db
        self.style = style
        self.rewriter = HeaderRewriter(host, style, is_gateway)
        self.optimizer = RouteOptimizer(db, host, optimize,
                                        preserve_loops)

    @classmethod
    def connected(cls, host: str, daemon_address: tuple[str, int],
                  source: str | None = None,
                  **kwargs) -> "MailRouter":
        """A router backed by a running route daemon.

        ``source`` names the snapshot table to query (default: this
        host, which is what a delivery agent normally wants).  The
        reply lines of the single-snapshot daemon and the federation
        daemon are byte-compatible, so this works against either; use
        :meth:`federated` when the caller also wants the
        shard-administration verbs on ``router.db``.
        """
        from repro.service.daemon import DaemonRouteDatabase

        db = DaemonRouteDatabase(daemon_address,
                                 source=source or host)
        return cls(host, db, **kwargs)

    @classmethod
    def federated(cls, host: str, daemon_address: tuple[str, int],
                  source: str | None = None,
                  **kwargs) -> "MailRouter":
        """A router backed by a running *federation* daemon.

        Identical query surface to :meth:`connected` — cross-shard
        routes arrive already stitched — but ``router.db`` is a
        :class:`~repro.service.federation.FederatedRouteDatabase`, so
        operational code can also list, attach, detach, and reload
        shards over the same connection.
        """
        from repro.service.federation import FederatedRouteDatabase

        db = FederatedRouteDatabase(daemon_address,
                                    source=source or host)
        return cls(host, db, **kwargs)

    # -- outbound ------------------------------------------------------------

    def route(self, recipient: str, sender: str = "postmaster"
              ) -> Envelope:
        """Resolve a recipient into a transport-ready envelope.

        Plain names resolve through the database (with domain-suffix
        fallback); explicitly routed addresses go through the optimizer
        (which preserves loop tests and honours the configured mode).
        """
        parsed = parse_address(recipient, self.style)
        if not parsed.hops:
            raise RouteError(
                f"{recipient!r} names no host; local delivery")
        if len(parsed.hops) == 1 and "!" not in recipient:
            # user@host or bare host!user handled below; a single-hop
            # @-form resolves straight through the database.
            resolution = self.db.resolve(parsed.hops[0], parsed.user)
            address = resolution.address
        else:
            address = self.optimizer.optimize(recipient).address
        return Envelope(
            transport_address=address,
            from_header=self.rewriter.extend_return_path(sender),
            to_header=recipient,
        )

    def resolve(self, target: str, user: str) -> Resolution:
        """Direct database query (the 'manual querying' mode)."""
        return self.db.resolve(target, user)

    def resolve_with_cost(self, target: str,
                          user: str = "%s") -> tuple[int, Resolution]:
        """Direct database query with the mapped cost alongside —
        available because every backing ``db`` satisfies the
        :class:`~repro.service.resolver.Resolver` protocol."""
        return self.db.resolve_with_cost(target, user)

    # -- inbound -------------------------------------------------------------

    def reply_address(self, from_header: str) -> str:
        """The address a reply to ``from_header`` should use.

        A received return path is already relative to this host (each
        relay prepended itself), so replying means routing to its first
        hop — optionally re-optimized through the database.
        """
        parsed = parse_address(from_header, self.style)
        if not parsed.hops:
            return from_header  # local sender
        try:
            return self.optimizer.optimize(from_header).address
        except RouteError:
            # No hop is in our database: trust the explicit path.
            return from_header

    # -- the PERSPECTIVES hazard ----------------------------------------------

    def abbreviate_cc(self, cc_path: str) -> str:
        """What an over-eager pathalias site does to a Cc: header.

        Given ``seismo!mcvax!piet`` where ``seismo`` is in our database,
        emit the "optimized" relative form — dropping our own prefix
        hops.  The result is shorter *from here*, but once forwarded it
        rebinds relative to the next reader: the paper's
        ``cbosgd!mcvax!piet`` corruption.  Provided for demonstration;
        real deployments should heed the paper's principles instead.
        """
        parsed = parse_address(cc_path, MailerStyle.BANG_RIGID)
        hops = list(parsed.hops)
        # Drop leading hops we could reconstruct from our own database.
        while len(hops) > 1 and hops[0] in self.db:
            hops.pop(0)
        return "!".join(hops + [parsed.user])
