"""Synthetic network maps: the stand-in for the 1986 UUCP map data.

The paper quotes the input scale — "USENET maps contain over 5,700 nodes
and 20,000 links, while ARPANET, CSNET, and BITNET add another 2,800
nodes and 8,000 links" — and the structural features the algorithms
exist for: sparse host connectivity, cliques (regional nets, ARPANET),
domains with gateways, aliases, name collisions, passive polled sites.
The generator reproduces those features at configurable scale, seeded
and deterministic, emitting real map *text* so the whole pipeline
(scanner included) is exercised.
"""

from repro.netsim.churn import (
    DEAD_COST,
    ChurnEvent,
    ChurnParams,
    ChurnScenario,
    LinkChange,
    read_log,
    write_log,
)
from repro.netsim.failures import (
    FailureInjection,
    SurvivalReport,
    kill_links,
    survival,
)
from repro.netsim.mapdiff import (
    MapDiff,
    RouteImpact,
    diff_graphs,
    diff_map_texts,
    route_impact,
    route_impact_for_source,
)
from repro.netsim.latency import (
    LatencyModel,
    LatencyResult,
    link_period,
    mean_latency,
    simulate_route,
)
from repro.netsim.mapgen import GeneratedMap, MapParams, generate_map
from repro.netsim.models import NameGenerator, link_cost_menu
from repro.netsim.traffic import TrafficReport, analyze_routes
from repro.netsim.workloads import (
    DayReport,
    Message,
    WorkloadParams,
    generate_workload,
    run_day,
)
from repro.netsim.writer import render_declaration, render_file

__all__ = ["LatencyModel", "LatencyResult", "link_period",
           "mean_latency", "simulate_route",
           "DEAD_COST", "ChurnEvent", "ChurnParams", "ChurnScenario",
           "LinkChange", "read_log", "write_log",
           "FailureInjection", "SurvivalReport", "kill_links",
           "survival", "MapDiff", "RouteImpact", "diff_graphs",
           "diff_map_texts", "route_impact", "route_impact_for_source",
           "GeneratedMap", "MapParams", "generate_map", "NameGenerator",
           "link_cost_menu", "TrafficReport", "analyze_routes",
           "DayReport", "Message", "WorkloadParams",
           "generate_workload", "run_day",
           "render_declaration", "render_file"]
