"""Internet-scale churn scenarios: a live revision stream over a map.

"The care and feeding of relative addresses" is continuous: the
monthly map postings the paper describes were *revisions*, and the
serving stack's whole incremental/RELOAD/re-sync machinery exists to
track them without dropping an answer.  This module generates the
workload that exercises it at scale: a deterministic, seeded synthetic
map of 100k..1M nodes split into per-region shard files, plus a typed
**revision event stream** — cost change, link add/drop, host retire,
domain move — that is replayable, resumable, and serialized as a
compact text log (:func:`write_log` / :func:`read_log`).

The design constraint is the incremental updater's own soundness rule:
:func:`repro.service.incremental.update_snapshot` splices table
sections only when a revision is *pure NORMAL-link cost changes on an
otherwise identical topology*.  Every churn event is therefore
expressed as a **repricing** over a structurally constant graph,
pathalias's own treatment of dead links ("to keep out-of-service links
in the database, their cost is given as the pseudo-cost DEAD, an
astronomically high number"):

* *link drop* and *host retire* reprice a live link to
  :data:`DEAD_COST`;
* *link add* reprices a pre-provisioned dormant (DEAD-cost) chord down
  into the active band;
* *domain move* flips which of a movable leaf domain's two attachment
  links — one in each of two adjacent regions — is cheap and which is
  dead, so ownership effectively migrates while both shards' maps stay
  structurally fixed.

Topology per region: a small **hub ring** (with chords, some dormant)
carries the route tables; the population is **leaf domains** hanging
off hubs by a single priced link.  Leaf domains are netlike, so they
are routable destinations without being table-owning sources — which
is what keeps a million-node scenario's Dijkstra count at
``regions * (hubs + gateways)`` instead of a million.  Adjacent
regions share a gateway host (declared in both region files), the
same federation idiom ``benchmarks/bench_service.py`` uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path

from repro.graph.build import build_graph
from repro.graph.compact import CompactGraph, K_NORMAL
from repro.parser.grammar import parse_text

#: "Dead links cost a megabuck": the dormant/out-of-service cost band.
#: Small enough that a path through several dead links stays far below
#: 2**31, large enough that no active path ever prices near it.
DEAD_COST = 500_000

#: Costs the active band draws from (plain integers so event logs and
#: map text round-trip without the symbolic-cost table).
ACTIVE_COSTS = (50, 80, 100, 120, 150, 200, 250, 300, 400)

#: The typed event classes, in stream-mix order.
EVENT_KINDS = ("cost", "add", "drop", "retire", "move")

_LOG_MAGIC = "#pathalias-churn-log v1"


@dataclass(frozen=True)
class LinkChange:
    """One repriced link: ``shard``'s ``src -> dst`` becomes ``cost``."""

    shard: str
    src: str
    dst: str
    cost: int

    def encode(self) -> str:
        """The ``shard:src:dst:cost`` log token."""
        return f"{self.shard}:{self.src}:{self.dst}:{self.cost}"

    @classmethod
    def decode(cls, token: str) -> "LinkChange":
        """Parse one log token (raises ValueError on malformed input)."""
        parts = token.split(":")
        if len(parts) != 4 or not all(parts[:3]):
            raise ValueError(f"malformed link-change token {token!r}")
        return cls(parts[0], parts[1], parts[2], int(parts[3]))


@dataclass(frozen=True)
class ChurnEvent:
    """One revision: a typed, generation-stamped set of link changes.

    ``gen`` numbers the stream from 0; applying events ``0..k`` always
    yields the same graphs, which is what makes a log resumable.  A
    ``move`` event carries two changes (one per adjacent region);
    every other kind carries one.
    """

    gen: int
    kind: str
    changes: tuple[LinkChange, ...]

    def encode(self) -> str:
        """One log line: ``<gen> <kind> <change> [<change> ...]``."""
        tokens = [str(self.gen), self.kind]
        tokens.extend(change.encode() for change in self.changes)
        return " ".join(tokens)

    @classmethod
    def decode(cls, line: str) -> "ChurnEvent":
        """Parse one log line (raises ValueError on malformed input)."""
        tokens = line.split()
        if len(tokens) < 3:
            raise ValueError(f"malformed event line {line!r}")
        gen = int(tokens[0])
        kind = tokens[1]
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        changes = tuple(LinkChange.decode(t) for t in tokens[2:])
        if kind == "move" and len(changes) != 2:
            raise ValueError(f"move event needs two changes: {line!r}")
        if kind != "move" and len(changes) != 1:
            raise ValueError(f"{kind} event needs one change: {line!r}")
        return cls(gen, kind, changes)

    @property
    def shards(self) -> tuple[str, ...]:
        """Shards this event touches, in change order, deduplicated."""
        seen: list[str] = []
        for change in self.changes:
            if change.shard not in seen:
                seen.append(change.shard)
        return tuple(seen)


@dataclass
class ChurnParams:
    """Scenario knobs; everything derives deterministically from these.

    ``regions=None`` auto-scales the shard count so each region holds
    roughly 2,500 nodes — small enough that one event's remap stays
    cheap, large enough that a scenario is a real federation.  The
    ``mix`` weights pick each event's kind (normalized; order follows
    :data:`EVENT_KINDS`).
    """

    nodes: int = 2000
    events: int = 200
    seed: int = 42
    regions: int | None = None
    hubs_per_region: int = 8
    mix: tuple[float, ...] = (0.50, 0.15, 0.15, 0.12, 0.08)

    def region_count(self) -> int:
        """The resolved region count (auto-scale when unset)."""
        if self.regions is not None:
            return self.regions
        return max(2, min(64, self.nodes // 2500))


class ChurnScenario:
    """A generated map, its live graphs, and the revision stream.

    Everything — topology, initial costs, and all ``params.events``
    events — is generated up front from ``random.Random(params.seed)``,
    so two scenarios with equal params are identical object for
    object.  :meth:`build_graphs` parses the shard map files into
    mutable :class:`CompactGraph` objects; :meth:`apply` replays one
    event onto them (pure cost-array writes — no re-parse), and
    :meth:`fast_forward` resumes a log from any generation.
    """

    def __init__(self, params: ChurnParams | None = None):
        self.params = params or ChurnParams()
        p = self.params
        regions = p.region_count()
        hubs = p.hubs_per_region
        if hubs < 4:
            raise ValueError(f"hubs_per_region {hubs}: need at least 4")
        floor = regions * hubs + 2 * (regions - 1) + regions
        if p.nodes < floor:
            raise ValueError(
                f"nodes {p.nodes}: {regions} regions of {hubs} hubs "
                f"need at least {floor}")
        self.regions = regions
        self.shard_names = [f"region{r}" for r in range(regions)]
        rng = random.Random(p.seed)

        # -- topology ----------------------------------------------------
        self._hubs = [[f"h{r}x{i}" for i in range(hubs)]
                      for r in range(regions)]
        self.gateways = [f"gw{r}" for r in range(regions - 1)]
        self.movables = [f".m{r}" for r in range(regions - 1)]
        leaf_budget = p.nodes - regions * hubs - 2 * (regions - 1)
        per_region, extra = divmod(leaf_budget, regions)
        self._leaves = [
            [f".l{r}x{j}"
             for j in range(per_region + (1 if r < extra else 0))]
            for r in range(regions)]

        #: (shard, src, dst) -> initial cost, in declaration order per
        #: shard (dict order is insertion order — the map text and the
        #: link-id index both follow it).
        self._decls: dict[tuple[str, str, str], int] = {}
        #: keys eligible for plain cost events, by category
        self._ring_keys: list[tuple[str, str, str]] = []
        self._leaf_keys: list[tuple[str, str, str]] = []
        self._chord_keys: list[tuple[str, str, str]] = []
        self._active_chords: list[tuple[str, str, str]] = []
        self._dormant_chords: list[tuple[str, str, str]] = []
        #: movable name -> ((shardA, hubA), (shardB, hubB))
        self._movable_homes: dict[str, tuple] = {}
        for r in range(regions):
            self._gen_region(rng, r)

        # -- the event stream --------------------------------------------
        self.stream = self._gen_stream(rng)

        #: live graphs, populated by :meth:`build_graphs`
        self.graphs: dict[str, CompactGraph] = {}
        self._link_ids: dict[str, dict[tuple[str, str], list[int]]] = {}

    # -- generation -----------------------------------------------------------

    def _gen_region(self, rng: random.Random, r: int) -> None:
        """Emit region ``r``'s declarations into the registries."""
        shard = self.shard_names[r]
        hubs = self._hubs[r]
        n = len(hubs)

        def declare(src: str, dst: str, cost: int) -> None:
            self._decls[(shard, src, dst)] = cost

        # The hub ring (both directions, symmetric initial cost).
        for i in range(n):
            cost = rng.choice(ACTIVE_COSTS)
            a, b = hubs[i], hubs[(i + 1) % n]
            declare(a, b, cost)
            declare(b, a, cost)
            self._ring_keys.append((shard, a, b))
            self._ring_keys.append((shard, b, a))
        # Active chords (halfway across) and dormant spares (offset 2,
        # provisioned at DEAD so a later "add" is a pure repricing).
        for i in range(n // 2):
            a, b = hubs[i], hubs[(i + n // 2) % n]
            cost = rng.choice(ACTIVE_COSTS)
            declare(a, b, cost)
            key = (shard, a, b)
            self._chord_keys.append(key)
            self._active_chords.append(key)
        for i in range(n):
            a, b = hubs[i], hubs[(i + 2) % n]
            key = (shard, a, b)
            if key in self._decls:
                # Small rings alias the offset-2 chord onto a ring or
                # active-chord pair (n=4 makes offset 2 the halfway
                # chord); a second declaration would silently reprice
                # the live link to DEAD, so the pair is simply not
                # available as a dormant spare.
                continue
            declare(a, b, DEAD_COST)
            self._chord_keys.append(key)
            self._dormant_chords.append(key)

        # Gateways chain adjacent regions: gw{r-1} joins this region at
        # hub 0, gw{r} leaves it at the last hub; each gateway host is
        # declared in both neighboring shard files, which is what makes
        # it a federation gateway.
        if r > 0:
            gw = self.gateways[r - 1]
            declare(gw, hubs[0], 50)
            declare(hubs[0], gw, 50)
        if r < self.regions - 1:
            gw = self.gateways[r]
            declare(gw, hubs[-1], 50)
            declare(hubs[-1], gw, 50)

        # Leaf domains: one priced attachment link each, round-robin
        # over hubs.  Netlike, so routable but never table-owning.
        for j, leaf in enumerate(self._leaves[r]):
            hub = hubs[j % n]
            declare(hub, leaf, rng.choice(ACTIVE_COSTS))
            self._leaf_keys.append((shard, hub, leaf))

        # Movable leaf domains: .m{r} is attached in region r (cheap)
        # and region r+1 (dead); a "move" event flips the two costs.
        if r < self.regions - 1:
            mov = self.movables[r]
            declare(hubs[1], mov, rng.choice(ACTIVE_COSTS))
            self._movable_homes.setdefault(
                mov, ((shard, hubs[1]), None))
        if r > 0:
            mov = self.movables[r - 1]
            declare(hubs[1], mov, DEAD_COST)
            home_a, _ = self._movable_homes[mov]
            self._movable_homes[mov] = (home_a, (shard, hubs[1]))

    def _gen_stream(self, rng: random.Random) -> list[ChurnEvent]:
        """Pre-generate the whole event stream against a simulated
        cost state, so every event is consistent with the ones before
        it (an "add" always finds a dormant chord, a "cost" never
        reprices a retired leaf's link)."""
        cost_now = dict(self._decls)
        active = list(self._active_chords)
        dormant = list(self._dormant_chords)
        alive = list(self._leaf_keys)
        retired: set = set()
        movable_side = {name: 0 for name in self._movable_homes}
        weights = self.params.mix
        stream: list[ChurnEvent] = []

        def reprice(key) -> LinkChange:
            old = cost_now[key]
            new = old
            while new == old:
                new = rng.choice(ACTIVE_COSTS)
            cost_now[key] = new
            return LinkChange(key[0], key[1], key[2], new)

        def take(pool: list) -> tuple:
            idx = rng.randrange(len(pool))
            key = pool[idx]
            pool[idx] = pool[-1]
            pool.pop()
            return key

        for gen in range(self.params.events):
            kind = rng.choices(EVENT_KINDS, weights=weights)[0]
            if kind == "add" and not dormant:
                kind = "drop"
            if kind == "drop" and not active:
                kind = "cost"
            if kind == "retire" and len(retired) * 2 >= len(
                    self._leaf_keys):
                kind = "cost"  # keep half the population alive
            if kind == "move" and not self._movable_homes:
                kind = "cost"

            if kind == "cost":
                bucket = rng.random()
                if bucket < 0.4 or not active:
                    key = rng.choice(self._ring_keys)
                elif bucket < 0.6:
                    key = rng.choice(active)
                else:
                    key = None
                    while key is None or key in retired:
                        key = rng.choice(self._leaf_keys)
                changes = (reprice(key),)
            elif kind == "add":
                key = take(dormant)
                cost_now[key] = rng.choice(ACTIVE_COSTS)
                active.append(key)
                changes = (LinkChange(key[0], key[1], key[2],
                                      cost_now[key]),)
            elif kind == "drop":
                key = take(active)
                cost_now[key] = DEAD_COST
                dormant.append(key)
                changes = (LinkChange(key[0], key[1], key[2],
                                      DEAD_COST),)
            elif kind == "retire":
                key = take(alive)
                retired.add(key)
                cost_now[key] = DEAD_COST
                changes = (LinkChange(key[0], key[1], key[2],
                                      DEAD_COST),)
            else:  # move
                name = rng.choice(self.movables)
                homes = self._movable_homes[name]
                side = movable_side[name]
                old_shard, old_hub = homes[side]
                new_shard, new_hub = homes[1 - side]
                movable_side[name] = 1 - side
                arrive = LinkChange(new_shard, new_hub, name,
                                    rng.choice(ACTIVE_COSTS))
                depart = LinkChange(old_shard, old_hub, name,
                                    DEAD_COST)
                cost_now[(depart.shard, depart.src, depart.dst)] = \
                    DEAD_COST
                cost_now[(arrive.shard, arrive.src, arrive.dst)] = \
                    arrive.cost
                changes = (depart, arrive)
            stream.append(ChurnEvent(gen, kind, changes))
        return stream

    # -- map text -------------------------------------------------------------

    def map_text(self, shard: str) -> str:
        """The generation-0 map file for one shard, rendered from the
        declaration registry (one line per link — the parser merges
        multiple declarations of a host)."""
        lines = [f"# churn shard {shard} "
                 f"(seed {self.params.seed}, "
                 f"{self.params.nodes} nodes total)"]
        for (s, src, dst), cost in self._decls.items():
            if s == shard:
                lines.append(f"{src}\t{dst}({cost})")
        return "\n".join(lines) + "\n"

    def map_files(self) -> dict[str, str]:
        """``{shard name: generation-0 map text}`` for every shard."""
        return {name: self.map_text(name) for name in self.shard_names}

    # -- live graphs ----------------------------------------------------------

    def build_graphs(self) -> dict[str, CompactGraph]:
        """Parse and compile every shard's generation-0 graph, and
        index its NORMAL links by (src, dst) name pair for
        :meth:`apply`.  Idempotent; returns the live graph dict."""
        if self.graphs:
            return self.graphs
        for name in self.shard_names:
            text = self.map_text(name)
            graph = build_graph([(f"d.{name}", parse_text(text,
                                                          name))])
            cg = CompactGraph.compile(graph)
            index: dict[tuple[str, str], list[int]] = {}
            for cid in range(cg.n):
                for j in range(cg.off[cid], cg.off[cid + 1]):
                    if cg.kind[j] != K_NORMAL:
                        continue
                    key = (cg.names[cid], cg.names[cg.to[j]])
                    index.setdefault(key, []).append(j)
            self.graphs[name] = cg
            self._link_ids[name] = index
        return self.graphs

    def apply(self, event: ChurnEvent) -> tuple[str, ...]:
        """Replay one event onto the live graphs (cost writes only —
        never a re-parse) and return the shards it touched."""
        if not self.graphs:
            self.build_graphs()
        for change in event.changes:
            ids = self._link_ids[change.shard].get(
                (change.src, change.dst))
            if not ids:
                raise ValueError(
                    f"event {event.gen}: no link "
                    f"{change.src} -> {change.dst} in {change.shard}")
            for j in ids:
                self.graphs[change.shard].cost[j] = change.cost
        return event.shards

    def fast_forward(self, gen: int) -> None:
        """Resume support: apply events ``0..gen-1`` so the live
        graphs match a log replayed through generation ``gen``."""
        for event in self.stream[:gen]:
            self.apply(event)

    # -- sampling -------------------------------------------------------------

    @property
    def sources(self) -> list[str]:
        """Every table-owning host: hubs, then gateways."""
        return [h for hubs in self._hubs for h in hubs] + \
            list(self.gateways)

    @property
    def destinations(self) -> list[str]:
        """Every routable destination name: hubs, gateways, leaf
        domains, and movable domains."""
        return self.sources + \
            [leaf for leaves in self._leaves for leaf in leaves] + \
            list(self.movables)

    def sample_pairs(self, rng: random.Random,
                     count: int) -> list[tuple[str, str]]:
        """``count`` deterministic (source, dest) probe pairs."""
        sources = self.sources
        dests = self.destinations
        return [(rng.choice(sources), rng.choice(dests))
                for _ in range(count)]


# -- the event log ------------------------------------------------------------


def write_log(scenario: ChurnScenario, path: str | Path) -> int:
    """Serialize the scenario's stream as a compact text log.

    The header records the generating params, so :func:`read_log` can
    both validate a log and rebuild the identical scenario around it.
    Returns the number of events written.
    """
    p = scenario.params
    lines = [f"{_LOG_MAGIC} seed={p.seed} nodes={p.nodes} "
             f"regions={scenario.regions} "
             f"hubs={p.hubs_per_region} events={len(scenario.stream)}"]
    lines.extend(event.encode() for event in scenario.stream)
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(scenario.stream)


def read_log(path: str | Path) -> tuple[ChurnParams, list[ChurnEvent]]:
    """Parse a churn log back into params plus the event stream.

    Raises ValueError on a malformed header, an unknown event kind, a
    malformed change token, or out-of-order generation numbers.
    """
    text = Path(path).read_text(encoding="utf-8")
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or not lines[0].startswith(_LOG_MAGIC):
        raise ValueError(f"{path}: not a churn log")
    header: dict[str, int] = {}
    for token in lines[0][len(_LOG_MAGIC):].split():
        key, _, value = token.partition("=")
        header[key] = int(value)
    for key in ("seed", "nodes", "regions", "hubs", "events"):
        if key not in header:
            raise ValueError(f"{path}: header misses {key}=")
    params = ChurnParams(nodes=header["nodes"],
                         events=header["events"],
                         seed=header["seed"],
                         regions=header["regions"],
                         hubs_per_region=header["hubs"])
    events = []
    for expected, line in enumerate(lines[1:]):
        event = ChurnEvent.decode(line)
        if event.gen != expected:
            raise ValueError(
                f"{path}: generation {event.gen} where {expected} "
                f"was expected — log is reordered or truncated")
        events.append(event)
    if len(events) != header["events"]:
        raise ValueError(
            f"{path}: header promises {header['events']} events, "
            f"found {len(events)}")
    return params, events
