"""Link-failure injection: how brittle are precomputed routes?

The paper's route optimizer discussion admits the failure mode: a
committed route "can backfire if the user wants to use a circuitous
route for some reason — say, to bypass a dead link."  Links died all
the time (this is dial-up UUCP), and a site's paths file was only as
good as the map issue it was built from.  This module injects failures
into a built graph and measures how many precomputed routes survive —
the workload for experiment E16 and for failure-injection tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.printer import RouteTable
from repro.graph.build import Graph
from repro.graph.node import Link, LinkKind, Node
from repro.mailer.address import MailerStyle, parse_address
from repro.mailer.delivery import Network


@dataclass
class FailureInjection:
    """A reversible set of killed links."""

    killed: list[tuple[Node, Link]] = field(default_factory=list)

    def restore(self) -> None:
        """Put every killed link back (in original list positions we
        do not guarantee; adjacency order only matters for ties in
        fresh mapping runs, which callers re-do anyway)."""
        for node, link in self.killed:
            node.links.append(link)
        self.killed.clear()


def kill_links(graph: Graph, fraction: float, seed: int = 0,
               kinds: tuple[LinkKind, ...] = (LinkKind.NORMAL,)
               ) -> FailureInjection:
    """Remove a random fraction of (real) links from the graph.

    Returns the injection handle; call ``restore()`` to undo.
    """
    if not 0 <= fraction <= 1:
        raise ValueError("fraction must be within [0, 1]")
    rng = random.Random(seed)
    candidates: list[tuple[Node, Link]] = []
    for node in graph.nodes:
        if node.deleted:
            continue
        for link in node.links:
            if link.kind in kinds:
                candidates.append((node, link))
    count = int(len(candidates) * fraction)
    injection = FailureInjection()
    for node, link in rng.sample(candidates, k=count):
        node.links.remove(link)
        injection.killed.append((node, link))
    return injection


@dataclass
class SurvivalReport:
    """Outcome of replaying a route table against a damaged network."""

    survived: int = 0
    broken: list[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.survived + len(self.broken)

    @property
    def survival_rate(self) -> float:
        return self.survived / self.total if self.total else 1.0


def survival(table: RouteTable, damaged: Graph,
             origin: str) -> SurvivalReport:
    """Walk each precomputed route over the damaged graph.

    A route survives when every hop still has a usable link (or shared
    network) in the damaged topology.  Mailer-style parsing is
    heuristic (route-first) — the natural reading of pathalias output.
    """
    network = Network(damaged, default_style=MailerStyle.HEURISTIC)
    report = SurvivalReport()
    for record in table:
        if record.node.netlike:
            continue
        address = record.route.replace("%s", "user", 1)
        hops = list(parse_address(address, MailerStyle.HEURISTIC).hops)
        current = origin
        alive = True
        for hop in hops:
            resolved = network.resolve_name(hop)
            if resolved is None or not network.can_send(current,
                                                        resolved):
                alive = False
                break
            current = resolved
        if alive:
            report.survived += 1
        else:
            report.broken.append(record.name)
    return report
