"""Discrete-event latency simulation of store-and-forward delivery.

The paper's defense of its cost metric: "Actual transmission speed is
less important than one might assume; call setup time and the time
between calls tend to be the dominant factors, at least for mail
messages."  This module makes that claim measurable.  Every link gets a
calling schedule derived from its cost grade — a DEMAND link dials on
arrival, an HOURLY link opens once an hour, a POLLED site waits to be
called daily — and a message's latency is the sum of window waits plus
per-hop handling down its route.

Experiment E17 uses it to compare pathalias's least-cost routes against
hop-count routing: fewer hops can mean *slower* mail when one of them
waits overnight, which is exactly why the symbolic costs encode call
frequency rather than distance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.mapper import Label, MapResult
from repro.errors import RouteError
from repro.graph.node import Node, REAL_KINDS

#: Minutes between calls, by cost grade threshold.  A link's period is
#: the entry for the smallest threshold at or above its cost.  Grades
#: at DEMAND or better dial when traffic arrives (period 0).
PERIOD_TABLE: list[tuple[int, int]] = [
    (300, 0),        # LOCAL/DEDICATED/DIRECT/DEMAND: on demand
    (500, 60),       # HOURLY
    (1500, 180),     # HOURLY*2, HOURLY*3
    (1800, 720),     # EVENING: one nightly window
    (5000, 1440),    # DAILY / POLLED
    (30000, 10080),  # WEEKLY
]

#: Per-hop overhead in minutes: spooling, call setup, handshake.
HOP_OVERHEAD = 10

#: Transmission time for one mail message, minutes.
TRANSMIT = 2


def link_period(cost: int) -> int:
    """Minutes between calling windows for a link of this cost."""
    for threshold, period in PERIOD_TABLE:
        if cost <= threshold:
            return period
    return PERIOD_TABLE[-1][1]


@dataclass
class LinkSchedule:
    """One link's calling pattern: period plus a fixed phase offset."""

    period: int
    phase: int

    def next_departure(self, ready: int) -> int:
        """Earliest departure at or after minute ``ready``."""
        if self.period == 0:
            return ready
        # Windows open at phase, phase+period, phase+2*period, ...
        if ready <= self.phase:
            return self.phase
        since = ready - self.phase
        waits = -(-since // self.period)  # ceil division
        return self.phase + waits * self.period


class LatencyModel:
    """Deterministic per-link schedules for a mapped graph."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._schedules: dict[tuple[int, int], LinkSchedule] = {}

    def schedule_for(self, source: Node, target: Node,
                     cost: int) -> LinkSchedule:
        key = (source.index, target.index)
        schedule = self._schedules.get(key)
        if schedule is None:
            period = link_period(cost)
            phase = self._rng.randrange(period) if period else 0
            schedule = LinkSchedule(period, phase)
            self._schedules[key] = schedule
        return schedule


@dataclass
class LatencyResult:
    """Simulated delivery timing for one route."""

    destination: str
    minutes: int
    hops: int
    waits: list[int] = field(default_factory=list)  # per-hop wait


def _real_edges(label: Label) -> list[tuple[Node, Node, int]]:
    """(from, to, cost) for each transmission hop on a label's path.

    Structural edges (alias, net entry/exit) are not separate phone
    calls; the member-entry cost is carried by the net hop itself, so
    the pair of star edges collapses into one physical transfer whose
    cost is the entry edge's."""
    edges: list[tuple[Node, Node, int]] = []
    chain: list[Label] = []
    cursor: Label | None = label
    while cursor is not None:
        chain.append(cursor)
        cursor = cursor.parent
    chain.reverse()
    pending_entry: tuple[Node, int] | None = None
    for parent, child in zip(chain, chain[1:]):
        link = child.link
        if link.kind in REAL_KINDS:
            if child.node.netlike:
                # Entering a net: the physical call happens when we
                # reach the member on the other side.
                pending_entry = (parent.node, link.cost)
            else:
                edges.append((parent.node, child.node, link.cost))
        elif pending_entry is not None and not child.node.netlike:
            origin, cost = pending_entry
            edges.append((origin, child.node, cost))
            pending_entry = None
    return edges


def simulate_route(result: MapResult, destination: str | Node,
                   model: LatencyModel,
                   start_minute: int = 0) -> LatencyResult:
    """Deliver one message along the mapped route, clock in hand."""
    if isinstance(destination, str):
        node = result.graph.find(destination)
        if node is None:
            raise RouteError(f"unknown destination {destination!r}")
        destination = node
    label = result.best(destination)
    if label is None:
        raise RouteError(f"{destination.name!r} is unreachable")

    clock = start_minute
    waits: list[int] = []
    edges = _real_edges(label)
    for source, target, cost in edges:
        schedule = model.schedule_for(source, target, cost)
        ready = clock + HOP_OVERHEAD
        departure = schedule.next_departure(ready)
        waits.append(departure - ready)
        clock = departure + TRANSMIT
    return LatencyResult(destination=destination.name,
                         minutes=clock - start_minute,
                         hops=len(edges), waits=waits)


def mean_latency(result: MapResult, destinations: list[str],
                 seed: int = 0, samples: int = 3) -> float:
    """Average simulated latency over destinations and start times.

    Start times are spread across a day so phase alignment does not
    bias either routing policy.
    """
    model = LatencyModel(seed=seed)
    total = 0
    count = 0
    for index in range(samples):
        start = (index * 1440) // samples
        for destination in destinations:
            try:
                outcome = simulate_route(result, destination, model,
                                         start_minute=start)
            except RouteError:
                continue
            total += outcome.minutes
            count += 1
    return total / count if count else 0.0
