"""Map-revision diffing: what changed between monthly map postings?

"Thanks to the USENIX Association's UUCP-mapping project, the picture
is much brighter today, with timely and accurate data widely available
on USENET."  Timely data means *revisions*: sites tracked the monthly
postings and wanted to know what changed — both in the topology and in
the routes their own pathalias runs would now produce.  This module
provides both: a structural diff of two map revisions, and a
route-impact analysis (which destinations' routes or costs changed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mapper import Mapper
from repro.core.printer import RouteTable, print_routes
from repro.config import HeuristicConfig
from repro.graph.build import Graph, build_graph
from repro.graph.node import LinkKind
from repro.netsim.churn import DEAD_COST
from repro.parser.grammar import parse_text


@dataclass
class MapDiff:
    """Structural changes between two built graphs."""

    hosts_added: list[str] = field(default_factory=list)
    hosts_removed: list[str] = field(default_factory=list)
    links_added: list[tuple[str, str]] = field(default_factory=list)
    links_removed: list[tuple[str, str]] = field(default_factory=list)
    cost_changes: list[tuple[str, str, int, int]] = \
        field(default_factory=list)  # (from, to, old, new)

    @property
    def is_empty(self) -> bool:
        return not (self.hosts_added or self.hosts_removed
                    or self.links_added or self.links_removed
                    or self.cost_changes)

    @property
    def cost_only(self) -> bool:
        """True when the revision changes no host or link *set* —
        pure repricing (an empty diff counts).

        This is exactly the shape the incremental updater can splice:
        ``update_snapshot`` falls back to a full rebuild on any
        structural difference, so a revision stream that must stay
        incremental (the churn soak harness) expresses drops, adds,
        retirements, and moves as cost changes against a structurally
        constant map — pathalias's own dead-link treatment, where an
        out-of-service link stays declared at an astronomically high
        cost rather than vanishing from the database.
        """
        return not (self.hosts_added or self.hosts_removed
                    or self.links_added or self.links_removed)

    def churn_kinds(self, dead_cost: int = DEAD_COST) -> dict[str, int]:
        """Classify a cost-only revision's changes semantically.

        Under the dead-cost representation a "topology" event is a
        repricing that crosses the dead band: a change landing at or
        above ``dead_cost`` is a **link-down** (drop/retire), one
        leaving that band a **link-up** (add/arrival), and anything
        inside the active band a plain **reprice**.  Structural
        entries (host/link set changes) are counted under
        ``structural`` so callers can see at a glance why a revision
        would force the full-rebuild path.
        """
        out = {"reprice": 0, "link-up": 0, "link-down": 0,
               "structural": (len(self.hosts_added)
                              + len(self.hosts_removed)
                              + len(self.links_added)
                              + len(self.links_removed))}
        for _, _, old, new in self.cost_changes:
            if old >= dead_cost > new:
                out["link-up"] += 1
            elif new >= dead_cost > old:
                out["link-down"] += 1
            else:
                out["reprice"] += 1
        return out

    def summary(self) -> str:
        if self.is_empty:
            return "no changes"
        return (f"+{len(self.hosts_added)}/-{len(self.hosts_removed)} "
                f"hosts, +{len(self.links_added)}/"
                f"-{len(self.links_removed)} links, "
                f"{len(self.cost_changes)} cost changes")


def _link_costs(graph: Graph) -> dict[tuple[str, str], int]:
    """NORMAL link costs keyed by (from, to); cheapest if parallel."""
    out: dict[tuple[str, str], int] = {}
    for node in graph.nodes:
        if node.deleted or node.private:
            continue
        for link in node.links:
            if link.kind is not LinkKind.NORMAL or link.to.deleted:
                continue
            key = (node.name, link.to.name)
            cost = link.cost
            if key not in out or cost < out[key]:
                out[key] = cost
    return out


def diff_link_maps(old_hosts: set[str], new_hosts: set[str],
                   old_links: dict[tuple[str, str], int],
                   new_links: dict[tuple[str, str], int]) -> MapDiff:
    """Diff two already-extracted host sets and link-cost maps.

    The shared core of :func:`diff_graphs`; the snapshot service feeds
    it link maps reconstructed from a stored :class:`CompactGraph`
    rather than from live ``Node`` objects.
    """
    diff = MapDiff()
    diff.hosts_added = sorted(new_hosts - old_hosts)
    diff.hosts_removed = sorted(old_hosts - new_hosts)
    diff.links_added = sorted(set(new_links) - set(old_links))
    diff.links_removed = sorted(set(old_links) - set(new_links))
    for key in sorted(set(old_links) & set(new_links)):
        if old_links[key] != new_links[key]:
            diff.cost_changes.append(
                (key[0], key[1], old_links[key], new_links[key]))
    return diff


def diff_graphs(old: Graph, new: Graph) -> MapDiff:
    """Structural diff over public hosts and NORMAL links."""
    old_hosts = {n.name for n in old.nodes
                 if not n.deleted and not n.private}
    new_hosts = {n.name for n in new.nodes
                 if not n.deleted and not n.private}
    return diff_link_maps(old_hosts, new_hosts,
                          _link_costs(old), _link_costs(new))


def diff_map_texts(old_files: list[tuple[str, str]],
                   new_files: list[tuple[str, str]]) -> MapDiff:
    """Convenience: parse, build, and diff two sets of map files."""
    old = build_graph([(n, parse_text(t, n)) for n, t in old_files])
    new = build_graph([(n, parse_text(t, n)) for n, t in new_files])
    return diff_graphs(old, new)


@dataclass
class RouteImpact:
    """How a map revision changed one source's routes."""

    unchanged: int = 0
    rerouted: list[str] = field(default_factory=list)   # route text changed
    recosted: list[str] = field(default_factory=list)   # cost only
    gained: list[str] = field(default_factory=list)     # newly reachable
    lost: list[str] = field(default_factory=list)       # no longer routed

    @property
    def total(self) -> int:
        return (self.unchanged + len(self.rerouted)
                + len(self.recosted) + len(self.gained)
                + len(self.lost))

    def stability(self) -> float:
        """Fraction of previously routed destinations left untouched."""
        previous = self.unchanged + len(self.rerouted) \
            + len(self.recosted) + len(self.lost)
        return self.unchanged / previous if previous else 1.0


def route_impact(old_table: RouteTable,
                 new_table: RouteTable) -> RouteImpact:
    """Compare two route tables for the same source."""
    impact = RouteImpact()
    old_names = {record.name: record for record in old_table}
    new_names = {record.name: record for record in new_table}
    for name, old_record in old_names.items():
        new_record = new_names.get(name)
        if new_record is None:
            impact.lost.append(name)
        elif new_record.route != old_record.route:
            impact.rerouted.append(name)
        elif new_record.cost != old_record.cost:
            impact.recosted.append(name)
        else:
            impact.unchanged += 1
    impact.gained = sorted(set(new_names) - set(old_names))
    return impact


def route_impact_for_source(old_files: list[tuple[str, str]],
                            new_files: list[tuple[str, str]],
                            source: str,
                            heuristics: HeuristicConfig | None = None
                            ) -> RouteImpact:
    """End-to-end: route both revisions from ``source`` and compare."""
    tables = []
    for files in (old_files, new_files):
        graph = build_graph([(n, parse_text(t, n)) for n, t in files])
        tables.append(print_routes(Mapper(graph, heuristics).run(source)))
    return route_impact(tables[0], tables[1])
