"""Deterministic synthetic map generator.

Produces multi-file map text with the structure the paper describes:

* a small set of well-connected *backbone* hosts (the ihnp4/seismo class)
  calling each other on demand or better;
* *regions* of university/company hosts hanging off a backbone hub, each
  region in its own map file (file boundaries matter: ``private``);
* regional cliques declared as networks (the star representation);
* an ARPANET-like gatewayed clique with a domain tree and a couple of
  declared gateways, plus smaller CSNET/BITNET-like nets;
* aliases, deliberate host-name collisions guarded by ``private``,
  passive one-way leaves (route generated "by implication" via back
  links), and the occasional dead link.

Scale presets: ``MapParams.small()`` for tests,
``MapParams.usenet_1986()`` matching the published numbers (~5,700
USENET hosts / ~20,000 links, ~2,800 other-net hosts / ~8,000 links).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.netsim.models import NameGenerator, pick_cost


@dataclass
class MapParams:
    """Generator knobs; defaults give a small but featureful map."""

    seed: int = 1986
    backbone_size: int = 8
    regions: int = 6
    hosts_per_region: tuple[int, int] = (8, 16)
    intra_region_links: float = 0.6   # extra links per regional host
    long_haul_links: int = 10         # random region-to-region links
    clique_fraction: float = 0.5      # regions that declare a local net
    arpanet_members: int = 40
    arpanet_gateways: int = 2
    edu_subdomains: int = 3
    hosts_per_subdomain: int = 4
    csnet_members: int = 15
    bitnet_members: int = 15
    alias_fraction: float = 0.05
    private_collisions: int = 2
    oneway_leaves: int = 4
    dead_links: int = 2

    @classmethod
    def small(cls, seed: int = 1986) -> "MapParams":
        return cls(seed=seed)

    @classmethod
    def medium(cls, seed: int = 1986) -> "MapParams":
        return cls(seed=seed, backbone_size=12, regions=25,
                   hosts_per_region=(20, 40), long_haul_links=60,
                   arpanet_members=200, csnet_members=60,
                   bitnet_members=60, edu_subdomains=6,
                   hosts_per_subdomain=8, oneway_leaves=20,
                   private_collisions=6, dead_links=8)

    @classmethod
    def usenet_1986(cls, seed: int = 1986) -> "MapParams":
        """The published scale: ~5,700 + ~2,800 nodes, ~28,000 links."""
        return cls(seed=seed, backbone_size=20, regions=80,
                   hosts_per_region=(55, 85), intra_region_links=0.9,
                   long_haul_links=400, arpanet_members=2000,
                   arpanet_gateways=4, edu_subdomains=12,
                   hosts_per_subdomain=10, csnet_members=400,
                   bitnet_members=400, alias_fraction=0.04,
                   private_collisions=12, oneway_leaves=60,
                   dead_links=20)


@dataclass
class GeneratedMap:
    """The generator's output: map files plus ground truth for tests."""

    files: list[tuple[str, str]]
    localhost: str
    backbone: list[str]
    regional_hosts: list[str]
    arpanet_members: list[str]
    domain_hosts: dict[str, str]   # host -> fully qualified name
    oneway_leaves: list[str]
    aliases: dict[str, str]        # alias -> primary
    private_names: list[str]
    expected_hosts: int = 0
    params: MapParams | None = None

    def all_text(self) -> str:
        """Every file concatenated (with ``file`` markers preserving
        private scope), for single-string consumers."""
        parts = []
        for name, text in self.files:
            parts.append(f'file "{name}"')
            parts.append(text)
        return "\n".join(parts)


def generate_map(params: MapParams | None = None) -> GeneratedMap:
    """Generate a deterministic synthetic map."""
    params = params or MapParams()
    rng = random.Random(params.seed)
    names = NameGenerator(rng)
    names.reserve("ARPA")

    backbone = [names.host() for _ in range(params.backbone_size)]
    result = GeneratedMap(files=[], localhost=backbone[0],
                          backbone=backbone, regional_hosts=[],
                          arpanet_members=[], domain_hosts={},
                          oneway_leaves=[], aliases={}, private_names=[],
                          params=params)

    _backbone_file(params, rng, backbone, result)
    for region in range(params.regions):
        _region_file(params, rng, names, backbone, region, result)
    _long_haul_file(params, rng, result)
    _arpanet_file(params, rng, names, backbone, result)
    result.expected_hosts = (len(backbone) + len(result.regional_hosts)
                             + len(result.arpanet_members))
    return result


# -- file builders -----------------------------------------------------------


def _backbone_file(params: MapParams, rng: random.Random,
                   backbone: list[str], result: GeneratedMap) -> None:
    lines = ["# backbone sites"]
    for i, host in enumerate(backbone):
        peers = []
        for j, other in enumerate(backbone):
            if i == j:
                continue
            # Dense but not complete: the backbone was well-connected,
            # not a clique.
            if (i + j) % 3 != 0 or abs(i - j) <= 2:
                peers.append(f"{other}({pick_cost(rng, 'backbone')})")
        lines.append(f"{host}\t" + ", ".join(peers))
    result.files.append(("d.backbone", "\n".join(lines) + "\n"))


def _region_file(params: MapParams, rng: random.Random,
                 names: NameGenerator, backbone: list[str],
                 region: int, result: GeneratedMap) -> None:
    hub = backbone[region % len(backbone)]
    count = rng.randint(*params.hosts_per_region)
    hosts = [names.host() for _ in range(count)]
    result.regional_hosts.extend(hosts)
    lines = [f"# region {region}, hub {hub}"]

    links: dict[str, list[str]] = {h: [] for h in hosts}
    hub_links: list[str] = []
    for host in hosts:
        cost = pick_cost(rng, "regional")
        links[host].append(f"{hub}({cost})")
        hub_links.append(f"{host}({pick_cost(rng, 'regional')})")
    # Extra intra-region links: sparse, preferential to earlier hosts.
    extra = int(len(hosts) * params.intra_region_links)
    for _ in range(extra):
        a = rng.choice(hosts)
        b = hosts[min(int(rng.random() ** 2 * len(hosts)),
                      len(hosts) - 1)]
        if a != b:
            links[a].append(f"{b}({pick_cost(rng, 'leaf')})")
            links[b].append(f"{a}({pick_cost(rng, 'leaf')})")

    lines.append(f"{hub}\t" + ", ".join(hub_links))
    for host in hosts:
        lines.append(f"{host}\t" + ", ".join(links[host]))

    # A regional clique for some regions.
    if rng.random() < params.clique_fraction and len(hosts) >= 4:
        members = rng.sample(hosts, k=min(5, len(hosts)))
        lines.append(f"REGION{region}-net = "
                     f"{{{', '.join(members)}}}(LOCAL)")

    # Aliases.
    for host in hosts:
        if rng.random() < params.alias_fraction:
            alias = names.host()
            result.aliases[alias] = host
            lines.append(f"{host} = {alias}")

    # A deliberate name collision, declared private (the bilbo case).
    if region < params.private_collisions:
        collision = f"bilbo{region % 2}"  # collides across region files
        lines.append(f"private {{{collision}}}")
        lines.append(f"{collision}\t{hosts[0]}(DAILY)")
        lines.append(f"{hosts[0]}\t{collision}(DAILY)")
        result.private_names.append(collision)

    # Passive leaves: declared with outbound links only; pathalias must
    # invent the back link.
    if region < params.oneway_leaves:
        leaf = names.host()
        result.oneway_leaves.append(leaf)
        result.regional_hosts.append(leaf)
        lines.append(f"{leaf}\t{hub}(POLLED)")

    # Dead links.
    if region < params.dead_links and len(hosts) >= 2:
        lines.append(f"dead {{{hosts[0]}!{hosts[1]}}}")

    result.files.append((f"d.region{region}", "\n".join(lines) + "\n"))


def _long_haul_file(params: MapParams, rng: random.Random,
                    result: GeneratedMap) -> None:
    """Random region-to-region links: autodialer sites that call far
    afield, the ones that kept the graph from being a pure tree."""
    # Passive leaves must stay one-way (their routes are generated by
    # implication), so they take no long-haul calls.
    eligible = [h for h in result.regional_hosts
                if h not in set(result.oneway_leaves)]
    if params.long_haul_links <= 0 or len(eligible) < 2:
        return
    lines = ["# long-haul links between regions (autodialer sites)"]
    for _ in range(params.long_haul_links):
        a, b = rng.sample(eligible, k=2)
        cost = pick_cost(rng, "regional")
        lines.append(f"{a}\t{b}({cost})")
        lines.append(f"{b}\t{a}({cost})")
    result.files.append(("d.longhaul", "\n".join(lines) + "\n"))


def _arpanet_file(params: MapParams, rng: random.Random,
                  names: NameGenerator, backbone: list[str],
                  result: GeneratedMap) -> None:
    lines = ["# the ARPANET, CSNET and BITNET, with gateways and domains"]
    members = [names.host() for _ in range(params.arpanet_members)]
    result.arpanet_members.extend(members)
    lines.append("gatewayed {ARPA, CSNET, BITNET}")
    lines.append(f"ARPA = @{{{', '.join(members)}}}(DEDICATED)")
    gateways = rng.sample(backbone, k=params.arpanet_gateways)
    for gw in gateways:
        lines.append(f"{gw}\tARPA(DEDICATED)")
        # Gateways are on the net too: mail can leave through them.
        lines.append(f"{members[0]}\t{gw}(DEDICATED)")

    # CSNET / BITNET: smaller gatewayed nets sharing some members.
    csnet = [names.host() for _ in range(params.csnet_members)]
    bitnet = [names.host() for _ in range(params.bitnet_members)]
    result.arpanet_members.extend(csnet)
    result.arpanet_members.extend(bitnet)
    if csnet:
        lines.append(f"CSNET = @{{{', '.join(csnet)}}}(DEMAND)")
        lines.append(f"{gateways[0]}\tCSNET(DEMAND)")
    if bitnet:
        lines.append(f"BITNET = {{{', '.join(bitnet)}}}(EVENING)")
        lines.append(f"{gateways[-1]}\tBITNET(EVENING)")

    # The domain tree: .edu with subdomains, gatewayed from a backbone
    # host (the seismo role).
    seismo = gateways[0]
    lines.append(f"{seismo}\t.edu(DEDICATED)")
    subdomain_names = []
    for index in range(params.edu_subdomains):
        sub = f".u{index:02d}"
        subdomain_names.append(sub)
        campus = [names.host() for _ in range(params.hosts_per_subdomain)]
        result.arpanet_members.extend(campus)
        lines.append(f"{sub} = {{{', '.join(campus)}}}")
        for host in campus:
            result.domain_hosts[host] = f"{host}{sub}.edu"
        # Campus hosts are ARPANET members too (multi-homed).
        lines.append(f"ARPA = @{{{', '.join(campus)}}}(DEDICATED)")
    lines.append(f".edu = {{{', '.join(subdomain_names)}}}")

    result.files.append(("d.othernets", "\n".join(lines) + "\n"))
