"""Building blocks for synthetic maps: names and cost distributions.

Host names are pronounceable consonant-vowel coinages in the style of the
era (ihnp4, seismo, mcvax...).  Link costs are drawn from the paper's
symbolic grades with weights reflecting the prose: backbone sites call
on demand or better; universities poll daily in the evening; leaves get
whatever their administrator could afford.
"""

from __future__ import annotations

import random

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"

#: (symbolic cost expression, weight) per site class.
_BACKBONE_COSTS = [("DEDICATED", 2), ("DIRECT", 3), ("DEMAND", 5),
                   ("HOURLY", 2)]
_REGIONAL_COSTS = [("DEMAND", 1), ("HOURLY", 4), ("HOURLY*2", 2),
                   ("EVENING", 3), ("DAILY", 2)]
_LEAF_COSTS = [("EVENING", 2), ("DAILY", 4), ("DAILY/2", 1),
               ("POLLED", 3), ("WEEKLY", 1)]


def link_cost_menu(site_class: str) -> list[tuple[str, int]]:
    """The weighted cost menu for a site class
    (``backbone``/``regional``/``leaf``)."""
    if site_class == "backbone":
        return list(_BACKBONE_COSTS)
    if site_class == "regional":
        return list(_REGIONAL_COSTS)
    if site_class == "leaf":
        return list(_LEAF_COSTS)
    raise ValueError(f"unknown site class {site_class!r}")


def pick_cost(rng: random.Random, site_class: str) -> str:
    menu = link_cost_menu(site_class)
    total = sum(weight for _, weight in menu)
    roll = rng.randrange(total)
    for expr, weight in menu:
        roll -= weight
        if roll < 0:
            return expr
    return menu[-1][0]  # pragma: no cover - arithmetic guarantees hit


class NameGenerator:
    """Deterministic unique host names."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        # Statement keywords are not usable as host names.
        self.used: set[str] = {"private", "dead", "adjust", "delete",
                               "file", "gatewayed"}

    def host(self, syllables: int = 2) -> str:
        """A fresh pronounceable host name."""
        for _ in range(100):
            name = self._coin(syllables)
            if name not in self.used:
                self.used.add(name)
                return name
        # Exhausted the syllable space: disambiguate numerically, the
        # way real admins did (ihnp1, ihnp3, ihnp4...).
        base = self._coin(syllables)
        counter = 2
        while f"{base}{counter}" in self.used:
            counter += 1
        name = f"{base}{counter}"
        self.used.add(name)
        return name

    def reserve(self, name: str) -> None:
        self.used.add(name)

    def _coin(self, syllables: int) -> str:
        rng = self.rng
        parts = []
        for _ in range(syllables):
            parts.append(rng.choice(_CONSONANTS))
            parts.append(rng.choice(_VOWELS))
        if rng.random() < 0.4:
            parts.append(rng.choice(_CONSONANTS))
        if rng.random() < 0.15:
            parts.append("vax")
        return "".join(parts)
