"""Traffic analysis: who carries the mail?

The paper's cost metric is explicitly about load politics: bad data
"tended to understate the connectivity of the network, putting more
load on co-operative sites", and the symbolic values were tuned until
"the paths produced were reasonable".  This module measures the load a
route table implies — how many routes relay through each host — so the
cost-metric ablation (experiment E13) can quantify what the tuning
does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.printer import RouteTable
from repro.mailer.address import MailerStyle, parse_address


@dataclass
class TrafficReport:
    """Relay-load statistics for one route table."""

    relay_counts: dict[str, int] = field(default_factory=dict)
    total_routes: int = 0
    total_hops: int = 0

    @property
    def mean_hops(self) -> float:
        """Average relay count per route (0 = direct delivery)."""
        if not self.total_routes:
            return 0.0
        return self.total_hops / self.total_routes

    @property
    def max_load(self) -> int:
        return max(self.relay_counts.values(), default=0)

    def top_relays(self, count: int = 10) -> list[tuple[str, int]]:
        ranked = sorted(self.relay_counts.items(),
                        key=lambda item: (-item[1], item[0]))
        return ranked[:count]

    def concentration(self) -> float:
        """Fraction of all relay work done by the busiest host — the
        'load on co-operative sites' number."""
        if not self.total_hops:
            return 0.0
        return self.max_load / self.total_hops


def analyze_routes(table: RouteTable) -> TrafficReport:
    """Assume one message per route table entry; count relay work.

    Each route's format string is instantiated and parsed route-first;
    every hop except the final destination counts as relay load on that
    host.
    """
    report = TrafficReport()
    for record in table:
        if record.node.netlike:
            continue
        address = record.route.replace("%s", "user", 1)
        parsed = parse_address(address, MailerStyle.HEURISTIC)
        hops = list(parsed.hops)
        report.total_routes += 1
        report.total_hops += max(0, len(hops) - 1)
        for relay in hops[:-1]:  # the last hop is the destination
            report.relay_counts[relay] = \
                report.relay_counts.get(relay, 0) + 1
    return report


def compare_cost_tables(mean_hops_a: float, mean_hops_b: float,
                        label_a: str, label_b: str) -> str:
    """One-line verdict used by the ablation bench's report."""
    if mean_hops_a == mean_hops_b:
        return f"{label_a} and {label_b} give identical path lengths"
    shorter = label_a if mean_hops_a < mean_hops_b else label_b
    return (f"{shorter} keeps paths shorter "
            f"({mean_hops_a:.2f} vs {mean_hops_b:.2f} mean relays)")
