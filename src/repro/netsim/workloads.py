"""Message workloads: a simulated day of electronic mail.

Routes are means; traffic is the end.  This module generates who-mails-
whom workloads with the era's structure — heavy locality (most mail
stays in the region), a long tail of far-flung correspondents, replies
along received paths, and the occasional mailing list explosion — and
pushes every message through the delivery simulator using the routes a
pathalias run produced.  The result is the system-level measurement the
paper's philosophy line promises: does the mail get through, and at
what cost in hops and relay load?
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.printer import RouteTable
from repro.graph.build import Graph
from repro.mailer.address import MailerStyle
from repro.mailer.delivery import Network


@dataclass(frozen=True)
class Message:
    """One piece of mail to be routed from the table's source host."""

    recipient: str        # destination host (route-table name)
    kind: str             # "local" | "longhaul" | "reply" | "list"


@dataclass
class WorkloadParams:
    """Knobs for a day's traffic from one site."""

    messages: int = 500
    locality: float = 0.7        # fraction staying near the source
    reply_fraction: float = 0.2  # of messages that are replies
    list_posts: int = 2          # mailing-list posts (fan-out)
    list_size: int = 25          # recipients per list post
    seed: int = 1986


def generate_workload(table: RouteTable,
                      params: WorkloadParams | None = None
                      ) -> list[Message]:
    """Draw a day of messages against a route table.

    'Near' is approximated by route cost: the cheapest third of
    destinations counts as local-ish, matching how regions cluster
    around their hub in the generated maps.
    """
    params = params or WorkloadParams()
    rng = random.Random(params.seed)
    records = [r for r in table if not r.node.netlike and r.cost > 0]
    if not records:
        return []
    by_cost = sorted(records, key=lambda r: r.cost)
    third = max(1, len(by_cost) // 3)
    near = by_cost[:third]
    far = by_cost[third:] or near

    messages: list[Message] = []
    for _ in range(params.messages):
        if rng.random() < params.reply_fraction:
            kind = "reply"
        elif rng.random() < params.locality:
            kind = "local"
        else:
            kind = "longhaul"
        pool = near if kind == "local" else far
        record = rng.choice(pool)
        messages.append(Message(record.name, kind))
    for _ in range(params.list_posts):
        size = min(params.list_size, len(records))
        for record in rng.sample(records, k=size):
            messages.append(Message(record.name, "list"))
    return messages


@dataclass
class DayReport:
    """Aggregate outcome of a simulated day."""

    delivered: int = 0
    failed: int = 0
    total_hops: int = 0
    failures_by_kind: dict[str, int] = field(default_factory=dict)
    relay_load: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.delivered + self.failed

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.total if self.total else 1.0

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.delivered if self.delivered \
            else 0.0

    def busiest_relays(self, count: int = 5) -> list[tuple[str, int]]:
        ranked = sorted(self.relay_load.items(),
                        key=lambda item: (-item[1], item[0]))
        return ranked[:count]


def run_day(graph: Graph, table: RouteTable, origin: str,
            messages: list[Message],
            styles: dict[str, MailerStyle] | None = None,
            default_style: MailerStyle = MailerStyle.HEURISTIC
            ) -> DayReport:
    """Deliver every message over the physical graph."""
    network = Network(graph, styles=styles, default_style=default_style)
    report = DayReport()
    route_cache: dict[str, str | None] = {}
    for message in messages:
        route = route_cache.get(message.recipient, _UNSET)
        if route is _UNSET:
            record = table.lookup(message.recipient)
            route = None if record is None else record.route
            route_cache[message.recipient] = route
        if route is None:
            report.failed += 1
            report.failures_by_kind[message.kind] = \
                report.failures_by_kind.get(message.kind, 0) + 1
            continue
        outcome = network.deliver_route(origin, route)
        if outcome.delivered:
            report.delivered += 1
            report.total_hops += outcome.hop_count
            for relay in outcome.hops[:-1]:
                report.relay_load[relay] = \
                    report.relay_load.get(relay, 0) + 1
        else:
            report.failed += 1
            report.failures_by_kind[message.kind] = \
                report.failures_by_kind.get(message.kind, 0) + 1
    return report


class _Unset:
    __slots__ = ()


_UNSET = _Unset()
