"""Render declarations back to map-file text.

Used two ways: the map generator emits realistic text (long link lists
wrapped with continuation lines, the classic layout), and property tests
round-trip ``declarations -> text -> parser -> declarations`` to pin the
grammar and both scanners.
"""

from __future__ import annotations

from repro.parser.ast import (
    AdjustDecl,
    AliasDecl,
    DeadDecl,
    Declaration,
    DeleteDecl,
    Direction,
    FileDecl,
    GatewayedDecl,
    HostDecl,
    LinkSpec,
    NetDecl,
    PrivateDecl,
)

#: Wrap link lists near the classic 78-column terminal width.
WRAP_COLUMN = 76


def _render_link(spec: LinkSpec) -> str:
    cost = "" if spec.cost is None else f"({spec.cost})"
    if spec.op == "!" and spec.direction is Direction.LEFT:
        return f"{spec.name}{cost}"  # the default syntax is implied
    if spec.direction is Direction.RIGHT:
        return f"{spec.op}{spec.name}{cost}"
    return f"{spec.name}{spec.op}{cost}"


def _wrap(head: str, items: list[str]) -> str:
    """Classic map layout: items comma-joined, continuation indented."""
    lines = []
    current = head
    for index, item in enumerate(items):
        piece = item if index == 0 else f", {item}"
        if len(current) + len(piece) > WRAP_COLUMN and index > 0:
            lines.append(current + ",")
            current = "\t" + item
        else:
            current += piece
    lines.append(current)
    return "\n".join(lines)


def render_declaration(decl: Declaration) -> str:
    """One declaration as map text (no trailing newline)."""
    if isinstance(decl, HostDecl):
        return _wrap(f"{decl.name}\t", [_render_link(s) for s in decl.links])
    if isinstance(decl, NetDecl):
        cost = "" if decl.cost is None else f"({decl.cost})"
        members = ", ".join(decl.members)
        if decl.direction is Direction.RIGHT:
            return f"{decl.name} = {decl.op}{{{members}}}{cost}"
        if decl.op == "!":
            return f"{decl.name} = {{{members}}}{cost}"
        return f"{decl.name} = {{{members}}}{decl.op}{cost}"
    if isinstance(decl, AliasDecl):
        return f"{decl.name} = {', '.join(decl.aliases)}"
    if isinstance(decl, PrivateDecl):
        return f"private {{{', '.join(decl.names)}}}"
    if isinstance(decl, GatewayedDecl):
        return f"gatewayed {{{', '.join(decl.names)}}}"
    if isinstance(decl, FileDecl):
        return f'file "{decl.name}"'
    if isinstance(decl, DeadDecl):
        items = list(decl.hosts) + [f"{a}!{b}" for a, b in decl.links]
        return f"dead {{{', '.join(items)}}}"
    if isinstance(decl, DeleteDecl):
        items = list(decl.hosts) + [f"{a}!{b}" for a, b in decl.links]
        return f"delete {{{', '.join(items)}}}"
    if isinstance(decl, AdjustDecl):
        items = [f"{name}({amount})" for name, amount in decl.adjustments]
        return f"adjust {{{', '.join(items)}}}"
    raise TypeError(f"cannot render {decl!r}")


def render_file(decls: list[Declaration], banner: str = "") -> str:
    """A whole map file, optionally with a comment banner."""
    parts = []
    if banner:
        parts.extend(f"# {line}" for line in banner.splitlines())
    parts.extend(render_declaration(d) for d in decls)
    return "\n".join(parts) + "\n"
