"""Input-language front end: scanner(s), cost expressions, grammar, AST.

The paper's PARSING section: yacc drove the grammar, but lex was dropped
("half the run time was spent in the scanner") for a hand-built scanner
that "cut the overall run time by 40%".  We keep both scanners —
:mod:`repro.parser.scanner` (hand-rolled) and :mod:`repro.parser.lexgen`
(a table-driven DFA interpreter standing in for lex) — produce identical
token streams, and benchmark them against each other (experiment E3).
"""

from repro.parser.ast import (
    AdjustDecl,
    AliasDecl,
    DeadDecl,
    Declaration,
    DeleteDecl,
    Direction,
    FileDecl,
    GatewayedDecl,
    HostDecl,
    LinkSpec,
    NetDecl,
    PrivateDecl,
)
from repro.parser.costexpr import evaluate_cost
from repro.parser.grammar import Parser, parse_text
from repro.parser.lexgen import LexScanner
from repro.parser.scanner import Scanner
from repro.parser.tokens import Token, TokenKind

__all__ = [
    "AdjustDecl", "AliasDecl", "DeadDecl", "Declaration", "DeleteDecl",
    "Direction", "FileDecl", "GatewayedDecl", "HostDecl", "LinkSpec",
    "NetDecl", "PrivateDecl", "evaluate_cost", "Parser", "parse_text",
    "LexScanner", "Scanner", "Token", "TokenKind",
]
