"""Declaration AST produced by the grammar, consumed by the graph builder.

One dataclass per statement form of the input language.  Every
declaration carries its source coordinates so the builder can attribute
warnings ("duplicate link", "private redeclared") the way the original
attributed them on stderr.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class Direction(enum.Enum):
    """Which side of the routing operator the host name appears on.

    LEFT: ``host!user`` (UUCP convention) — route text ``host!%s``.
    RIGHT: ``user@host`` (ARPANET convention) — route text ``%s@host``.
    """

    LEFT = "left"
    RIGHT = "right"


@dataclass(frozen=True)
class LinkSpec:
    """One neighbor in a host declaration's link list.

    ``cost`` is already evaluated to an integer; ``None`` means the
    declaration named no cost and the builder applies the default.
    """

    name: str
    op: str = "!"
    direction: Direction = Direction.LEFT
    cost: int | None = None


@dataclass(frozen=True)
class HostDecl:
    """``host  neighbor(COST), @other(COST), ...``"""

    name: str
    links: tuple[LinkSpec, ...]
    filename: str = "<stdin>"
    line: int = 0


@dataclass(frozen=True)
class NetDecl:
    """``NETNAME = [op]{member, ...}[op](COST)`` — a clique, stored as a
    star around a network node (2n edges instead of ~n^2)."""

    name: str
    members: tuple[str, ...]
    op: str = "!"
    direction: Direction = Direction.LEFT
    cost: int | None = None
    filename: str = "<stdin>"
    line: int = 0


@dataclass(frozen=True)
class AliasDecl:
    """``name = alias1, alias2`` (no braces) — all names equivalent,
    connected by zero-cost ALIAS edge pairs."""

    name: str
    aliases: tuple[str, ...]
    filename: str = "<stdin>"
    line: int = 0


@dataclass(frozen=True)
class PrivateDecl:
    """``private {name, ...}`` — scope the names to this file, from the
    point of declaration to end of file."""

    names: tuple[str, ...]
    filename: str = "<stdin>"
    line: int = 0


@dataclass(frozen=True)
class DeadDecl:
    """``dead {host, from!to, ...}`` — last-resort hosts and links."""

    hosts: tuple[str, ...] = ()
    links: tuple[tuple[str, str], ...] = ()
    filename: str = "<stdin>"
    line: int = 0


@dataclass(frozen=True)
class AdjustDecl:
    """``adjust {host(expr), ...}`` — administrator nudge added to the
    cost of every link out of the host."""

    adjustments: tuple[tuple[str, int], ...]
    filename: str = "<stdin>"
    line: int = 0


@dataclass(frozen=True)
class DeleteDecl:
    """``delete {host, from!to, ...}`` — remove hosts or links."""

    hosts: tuple[str, ...] = ()
    links: tuple[tuple[str, str], ...] = ()
    filename: str = "<stdin>"
    line: int = 0


@dataclass(frozen=True)
class FileDecl:
    """``file "name"`` — behave as if a new input file began here
    (resets private scope); used when maps are concatenated."""

    name: str
    filename: str = "<stdin>"
    line: int = 0


@dataclass(frozen=True)
class GatewayedDecl:
    """``gatewayed {net, ...}`` — the named networks require explicit
    gateways; entering through a non-gateway is severely penalized.
    Domains are implicitly gatewayed and need no such declaration."""

    names: tuple[str, ...]
    filename: str = "<stdin>"
    line: int = 0


Declaration = Union[
    HostDecl, NetDecl, AliasDecl, PrivateDecl, DeadDecl,
    AdjustDecl, DeleteDecl, FileDecl, GatewayedDecl,
]
