"""Cost-expression evaluation.

"Costs can be expressed as arbitrary arithmetic expressions, mixing
numbers and symbolic values.  For example, HOURLY*3 describes a
connection that is completed once every three hours."

Grammar (over the shared token stream):

    expr   := term { (+|-) term }
    term   := factor { (*|/) factor }
    factor := NUMBER | NAME | ( expr ) | - factor

Semantics follow the C original: integer arithmetic, division truncating
toward zero (``DAILY/2`` is 2500), symbols resolved from the paper's
table (:data:`repro.config.COST_SYMBOLS`).  The *final* value of a link
cost must be non-negative (edge weights are non-negative by the model);
intermediate values may dip negative (``HIGH`` is -5).
"""

from __future__ import annotations

from repro.config import COST_SYMBOLS
from repro.errors import CostExpressionError
from repro.parser.tokens import Token, TokenKind


def _c_div(a: int, b: int) -> int:
    """C-style integer division: truncation toward zero."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


class CostExpression:
    """Recursive-descent evaluator over a token slice.

    Used by the grammar for the parenthesized cost of a link; the slice
    it consumes ends at the matching RPAREN (exclusive).
    """

    def __init__(self, tokens: list[Token], pos: int,
                 filename: str = "<stdin>",
                 symbols: dict[str, int] | None = None):
        self.tokens = tokens
        self.pos = pos
        self.filename = filename
        self.symbols = COST_SYMBOLS if symbols is None else symbols

    def _peek(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def _error(self, message: str) -> CostExpressionError:
        tok = self._peek()
        return CostExpressionError(message, self.filename, tok.line)

    def parse(self) -> int:
        """Evaluate one expression; leaves ``pos`` after its last token."""
        return self._expr()

    def _expr(self) -> int:
        value = self._term()
        while self._peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self._advance().kind
            rhs = self._term()
            value = value + rhs if op is TokenKind.PLUS else value - rhs
        return value

    def _term(self) -> int:
        value = self._factor()
        while self._peek().kind in (TokenKind.STAR, TokenKind.SLASH):
            op = self._advance().kind
            rhs = self._factor()
            if op is TokenKind.STAR:
                value *= rhs
            else:
                if rhs == 0:
                    raise self._error("division by zero in cost expression")
                value = _c_div(value, rhs)
        return value

    def _factor(self) -> int:
        tok = self._peek()
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            return tok.value
        if tok.kind is TokenKind.NAME:
            self._advance()
            if tok.text not in self.symbols:
                raise CostExpressionError(
                    f"unknown cost symbol {tok.text!r}",
                    self.filename, tok.line)
            return self.symbols[tok.text]
        if tok.kind is TokenKind.MINUS:
            self._advance()
            return -self._factor()
        if tok.kind is TokenKind.LPAREN:
            self._advance()
            value = self._expr()
            if self._peek().kind is not TokenKind.RPAREN:
                raise self._error("expected ')' in cost expression")
            self._advance()
            return value
        raise self._error(f"unexpected {tok.kind.value!r} in cost expression")


def evaluate_cost(text: str, symbols: dict[str, int] | None = None) -> int:
    """Evaluate a stand-alone cost expression string, e.g. ``"HOURLY*3"``.

    The text is wrapped in parentheses so the scanner applies
    cost-context rules (``-`` as an operator, digits as numbers).
    """
    from repro.parser.scanner import Scanner

    tokens = Scanner(f"({text})").tokens()
    # Position 1: skip the wrapping LPAREN.
    evaluator = CostExpression(tokens, 1, symbols=symbols)
    value = evaluator.parse()
    tok = evaluator.tokens[evaluator.pos]
    if tok.kind is not TokenKind.RPAREN:
        raise CostExpressionError(
            f"trailing junk in cost expression: {tok.text!r}",
            "<expr>", tok.line)
    return value
