"""Recursive-descent grammar over the token stream.

The original used yacc with syntax-directed translation; the grammar is
small enough that recursive descent is clearer in Python.  Statements:

    hostdecl   := NAME linklist
    linklist   := link { ',' link }
    link       := [OP] NAME [OP] [ '(' costexpr ')' ]
    netdecl    := NAME '=' [OP] '{' namelist '}' [OP] [ '(' costexpr ')' ]
    aliasdecl  := NAME '=' NAME { ',' NAME }
    private    := 'private' '{' namelist '}'
    dead       := 'dead' '{' deaditem { ',' deaditem } '}'
    deaditem   := NAME [ OP NAME ]
    adjust     := 'adjust' '{' NAME '(' costexpr ')' { ',' ... } '}'
    delete     := 'delete' '{' deaditem { ',' deaditem } '}'
    filedecl   := 'file' STRING
    gatewayed  := 'gatewayed' '{' namelist '}'

A link may carry its routing operator before the name (host appears on
the RIGHT of the operator in addresses: ``@b`` means ``%s@b``) or after
it (host on the LEFT: ``b!`` means ``b!%s``); bare names default to
``!`` LEFT.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.parser.ast import (
    AdjustDecl,
    AliasDecl,
    DeadDecl,
    Declaration,
    DeleteDecl,
    Direction,
    FileDecl,
    GatewayedDecl,
    HostDecl,
    LinkSpec,
    NetDecl,
    PrivateDecl,
)
from repro.parser.costexpr import CostExpression
from repro.parser.scanner import Scanner
from repro.parser.tokens import Token, TokenKind

#: Statement keywords, recognized only in statement-initial position so
#: that e.g. a host may still link *to* a machine named "dead".
KEYWORDS = frozenset({"private", "dead", "adjust", "delete", "file",
                      "gatewayed"})


class Parser:
    """Parse a token stream into a list of declarations."""

    def __init__(self, tokens: list[Token], filename: str = "<stdin>",
                 case_fold: bool = False,
                 symbols: dict[str, int] | None = None):
        self.tokens = tokens
        self.filename = filename
        self.case_fold = case_fold
        #: cost-symbol table; None means the paper's (experiments
        #: substitute alternatives, e.g. the additive-theory table)
        self.symbols = symbols
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _expect(self, kind: TokenKind, what: str) -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            raise self._error(f"expected {what}, got {tok.text!r}")
        return self._advance()

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self.filename, self._peek().line)

    def _name(self, what: str = "host name") -> str:
        tok = self._expect(TokenKind.NAME, what)
        return tok.text.lower() if self.case_fold else tok.text

    def _end_statement(self) -> None:
        tok = self._peek()
        if tok.kind is TokenKind.NEWLINE:
            self._advance()
        elif tok.kind is not TokenKind.EOF:
            raise self._error(f"trailing junk {tok.text!r} in statement")

    # -- statements ---------------------------------------------------------

    def parse(self) -> list[Declaration]:
        """Parse every statement; raises ParseError on the first bad one."""
        decls: list[Declaration] = []
        while self._peek().kind is not TokenKind.EOF:
            if self._peek().kind is TokenKind.NEWLINE:
                self._advance()
                continue
            decls.append(self._statement())
        return decls

    def _statement(self) -> Declaration:
        tok = self._peek()
        if tok.kind is not TokenKind.NAME:
            raise self._error(f"statement must begin with a name, "
                              f"got {tok.text!r}")
        if tok.text in KEYWORDS:
            return self._keyword_statement(tok.text)
        name = self._name()
        if self._peek().kind is TokenKind.EQUALS:
            return self._equals_statement(name, tok.line)
        return self._host_statement(name, tok.line)

    def _host_statement(self, name: str, line: int) -> HostDecl:
        links = [self._link()]
        while self._peek().kind is TokenKind.COMMA:
            self._advance()
            links.append(self._link())
        self._end_statement()
        return HostDecl(name, tuple(links), self.filename, line)

    def _link(self) -> LinkSpec:
        op = None
        direction = None
        if self._peek().kind is TokenKind.OP:
            # Prefix operator: host on the RIGHT (user@host).
            op = self._advance().text
            direction = Direction.RIGHT
        name = self._name("link target")
        if self._peek().kind is TokenKind.OP:
            if op is not None:
                raise self._error("routing operator on both sides of name")
            # Postfix operator: host on the LEFT (host!user).
            op = self._advance().text
            direction = Direction.LEFT
        cost = self._optional_cost()
        if op is None:
            op, direction = "!", Direction.LEFT
        return LinkSpec(name, op, direction, cost)

    def _optional_cost(self) -> int | None:
        if self._peek().kind is not TokenKind.LPAREN:
            return None
        self._advance()
        evaluator = CostExpression(self.tokens, self.pos, self.filename,
                                   symbols=self.symbols)
        cost = evaluator.parse()
        self.pos = evaluator.pos
        self._expect(TokenKind.RPAREN, "')' after cost")
        return cost

    def _equals_statement(self, name: str, line: int) -> Declaration:
        self._expect(TokenKind.EQUALS, "'='")
        op = None
        direction = None
        if self._peek().kind is TokenKind.OP:
            op = self._advance().text
            direction = Direction.RIGHT
        if self._peek().kind is TokenKind.LBRACE:
            return self._net_statement(name, line, op, direction)
        if op is not None:
            raise self._error("routing operator requires a {network}")
        # Alias list: name = a, b, c
        aliases = [self._name("alias")]
        while self._peek().kind is TokenKind.COMMA:
            self._advance()
            aliases.append(self._name("alias"))
        self._end_statement()
        return AliasDecl(name, tuple(aliases), self.filename, line)

    def _net_statement(self, name: str, line: int, op: str | None,
                       direction: Direction | None) -> NetDecl:
        members = self._brace_list("network member")
        if self._peek().kind is TokenKind.OP:
            if op is not None:
                raise self._error("routing operator on both sides of "
                                  "network braces")
            op = self._advance().text
            direction = Direction.LEFT
        cost = self._optional_cost()
        self._end_statement()
        if op is None:
            op, direction = "!", Direction.LEFT
        return NetDecl(name, tuple(members), op, direction, cost,
                       self.filename, line)

    def _brace_list(self, what: str) -> list[str]:
        self._expect(TokenKind.LBRACE, "'{'")
        names = [self._name(what)]
        while self._peek().kind is TokenKind.COMMA:
            self._advance()
            names.append(self._name(what))
        self._expect(TokenKind.RBRACE, "'}'")
        return names

    # -- keyword statements ---------------------------------------------------

    def _keyword_statement(self, keyword: str) -> Declaration:
        line = self._peek().line
        self._advance()
        if keyword == "private":
            names = self._brace_list("private host")
            self._end_statement()
            return PrivateDecl(tuple(names), self.filename, line)
        if keyword == "gatewayed":
            names = self._brace_list("network name")
            self._end_statement()
            return GatewayedDecl(tuple(names), self.filename, line)
        if keyword == "file":
            tok = self._expect(TokenKind.STRING, "quoted file name")
            self._end_statement()
            return FileDecl(tok.text, self.filename, line)
        if keyword == "adjust":
            return self._adjust_statement(line)
        # dead / delete share the host-or-link item syntax.
        hosts, links = self._host_or_link_list()
        self._end_statement()
        if keyword == "dead":
            return DeadDecl(tuple(hosts), tuple(links), self.filename, line)
        return DeleteDecl(tuple(hosts), tuple(links), self.filename, line)

    def _adjust_statement(self, line: int) -> AdjustDecl:
        self._expect(TokenKind.LBRACE, "'{'")
        items: list[tuple[str, int]] = []
        while True:
            name = self._name("host to adjust")
            cost = self._optional_cost()
            if cost is None:
                raise self._error("adjust requires a (cost) per host")
            items.append((name, cost))
            if self._peek().kind is TokenKind.COMMA:
                self._advance()
                continue
            break
        self._expect(TokenKind.RBRACE, "'}'")
        self._end_statement()
        return AdjustDecl(tuple(items), self.filename, line)

    def _host_or_link_list(self) -> tuple[list[str], list[tuple[str, str]]]:
        self._expect(TokenKind.LBRACE, "'{'")
        hosts: list[str] = []
        links: list[tuple[str, str]] = []
        while True:
            first = self._name("host")
            if self._peek().kind is TokenKind.OP:
                self._advance()
                second = self._name("link target")
                links.append((first, second))
            else:
                hosts.append(first)
            if self._peek().kind is TokenKind.COMMA:
                self._advance()
                continue
            break
        self._expect(TokenKind.RBRACE, "'}'")
        return hosts, links


def parse_text(text: str, filename: str = "<stdin>",
               case_fold: bool = False,
               scanner_class: type[Scanner] = Scanner) -> list[Declaration]:
    """Scan and parse ``text`` into declarations."""
    tokens = scanner_class(text, filename).tokens()
    return Parser(tokens, filename, case_fold).parse()
