"""Table-driven DFA scanner: the stand-in for *lex* (experiment E3).

The paper: "We experimented with lex for transforming the raw input into
lexical tokens, but were disappointed with its performance: half the run
time was spent in the scanner."  lex compiles regular expressions into a
character-indexed DFA transition table and interprets it with maximal
munch; that per-character table interpretation is exactly what this
module does.  It shares the logical-line driver with the hand scanner
(comments, continuation, NEWLINE emission) so the two differ only in how
a physical line is tokenized — the part lex would have generated.

Both scanners are verified token-for-token identical by property tests.
"""

from __future__ import annotations

from repro.errors import ScanError
from repro.parser.scanner import Scanner
from repro.parser.tokens import (
    COST_NAME_CHARS,
    DIGITS,
    NAME_CHARS,
    OP_CHARS,
    SINGLE_CHAR,
    Token,
    TokenKind,
)

# DFA states.
_START, _NAME, _NUMBER, _STRING, _STRING_END, _PUNCT = range(6)

#: Accepting states and the token kind they emit.
_ACCEPT = {
    _NAME: TokenKind.NAME,
    _NUMBER: TokenKind.NUMBER,
    _STRING_END: TokenKind.STRING,
    _PUNCT: None,  # resolved from the lexeme text
}


def _build_table(cost_context: bool) -> dict[int, dict[str, int]]:
    """Construct the char-indexed transition table, lex-style.

    Two tables exist because cost context changes the character classes:
    inside parentheses ``+``/``-`` are operators and digits start
    numbers; outside, both are name characters (digit runs that stand
    alone still accept as NUMBER via the _NUMBER state).
    """
    name_chars = COST_NAME_CHARS if cost_context else NAME_CHARS
    punct = set(SINGLE_CHAR) | OP_CHARS
    if cost_context:
        punct |= {"+", "-"}

    table: dict[int, dict[str, int]] = {
        _START: {}, _NAME: {}, _NUMBER: {}, _STRING: {},
    }
    for c in name_chars:
        table[_NAME][c] = _NAME
        if c in DIGITS:
            table[_START][c] = _NUMBER
        else:
            table[_START][c] = _NAME
    for c in DIGITS:
        table[_NUMBER][c] = _NUMBER
        # A digit run extending into name characters becomes a name
        # (maximal munch does the disambiguation): only outside cost
        # context, where identifiers may begin with digits.
    if not cost_context:
        for c in name_chars - DIGITS:
            table[_NUMBER][c] = _NAME
    for c in punct:
        table[_START][c] = _PUNCT
    table[_START]['"'] = _STRING
    for code in range(32, 127):
        c = chr(code)
        if c != '"':
            table[_STRING][c] = _STRING
    table[_STRING]['"'] = _STRING_END
    return table


_TABLE_NORMAL = _build_table(cost_context=False)
_TABLE_COST = _build_table(cost_context=True)


class LexScanner(Scanner):
    """Scanner whose per-line loop interprets a DFA transition table."""

    def _scan_line(self, line: str, lineno: int, paren_depth: int,
                   out: list[Token]) -> int:
        i = 0
        n = len(line)
        append = out.append
        while i < n:
            c = line[i]
            if c in " \t":
                i += 1
                continue
            table = _TABLE_COST if paren_depth > 0 else _TABLE_NORMAL
            state = _START
            j = i
            last_accept = -1
            last_state = -1
            # Maximal munch: advance the DFA as far as possible,
            # remembering the most recent accepting position.
            while j < n:
                row = table.get(state)
                if row is None:
                    break
                nxt = row.get(line[j])
                if nxt is None:
                    break
                state = nxt
                j += 1
                if state in _ACCEPT:
                    last_accept = j
                    last_state = state
            if last_accept < 0:
                raise ScanError(f"unexpected character {line[i]!r}",
                                self.filename, lineno)
            lexeme = line[i:last_accept]
            kind = _ACCEPT[last_state]
            if last_state == _PUNCT:
                if lexeme == "(":
                    paren_depth += 1
                    append(Token(TokenKind.LPAREN, lexeme, lineno))
                elif lexeme == ")":
                    if paren_depth == 0:
                        raise ScanError("unbalanced ')'",
                                        self.filename, lineno)
                    paren_depth -= 1
                    append(Token(TokenKind.RPAREN, lexeme, lineno))
                elif lexeme == "+":
                    append(Token(TokenKind.PLUS, lexeme, lineno))
                elif lexeme == "-":
                    append(Token(TokenKind.MINUS, lexeme, lineno))
                elif lexeme in SINGLE_CHAR:
                    append(Token(SINGLE_CHAR[lexeme], lexeme, lineno))
                else:
                    append(Token(TokenKind.OP, lexeme, lineno))
            elif kind is TokenKind.NUMBER:
                append(Token(kind, lexeme, lineno, value=int(lexeme)))
            elif kind is TokenKind.STRING:
                if len(lexeme) < 2 or not lexeme.endswith('"'):
                    raise ScanError("unterminated string",
                                    self.filename, lineno)
                append(Token(kind, lexeme[1:-1], lineno))
            else:
                append(Token(kind, lexeme, lineno))
            i = last_accept
        return paren_depth
