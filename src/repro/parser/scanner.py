"""The hand-rolled scanner.

"Since our input tokens are easy to recognize, we built a simple scanner
and cut the overall run time by 40%."  This is that scanner: a direct
character-dispatch loop over each physical line, with three pieces of
state — the current line number, the parenthesis depth (cost-expression
context changes which characters may appear in names), and whether the
previous physical line requested continuation.

It emits one NEWLINE token per *logical* line (statement) and a final
EOF.  Blank lines and comment-only lines emit nothing.
"""

from __future__ import annotations

from repro.errors import ScanError
from repro.parser.tokens import (
    COST_NAME_CHARS,
    DIGITS,
    NAME_CHARS,
    OP_CHARS,
    SINGLE_CHAR,
    Token,
    TokenKind,
)


class Scanner:
    """Tokenize pathalias input text.

    Args:
        text: full input text.
        filename: reported in diagnostics.
    """

    def __init__(self, text: str, filename: str = "<stdin>"):
        self.text = text
        self.filename = filename

    def tokens(self) -> list[Token]:
        """Scan the whole input and return the token list."""
        out: list[Token] = []
        append = out.append
        paren_depth = 0
        statement_open = False  # tokens emitted since last NEWLINE
        continuation = False    # previous line ended with a backslash

        for lineno, line in enumerate(self.text.split("\n"), start=1):
            # Strip comments; '#' cannot occur inside names or strings
            # in this language, so a plain find suffices.
            hash_pos = line.find("#")
            if hash_pos >= 0:
                line = line[:hash_pos]

            backslash = line.endswith("\\")
            if backslash:
                line = line[:-1]

            stripped = line.strip()
            if not stripped:
                # Blank line: terminates any open statement.
                if statement_open and not continuation and paren_depth == 0:
                    append(Token(TokenKind.NEWLINE, "", lineno))
                    statement_open = False
                continuation = backslash and continuation
                continue

            starts_indented = line[0] in " \t"
            if (statement_open and not continuation and paren_depth == 0
                    and not starts_indented):
                # New statement begins at column 0: close the previous one.
                append(Token(TokenKind.NEWLINE, "", lineno))
                statement_open = False

            paren_depth = self._scan_line(line, lineno, paren_depth, out)
            if len(out) and out[-1].kind is not TokenKind.NEWLINE:
                statement_open = True
            continuation = backslash

        if statement_open:
            append(Token(TokenKind.NEWLINE, "", lineno))
        append(Token(TokenKind.EOF, "", lineno))
        return out

    def _scan_line(self, line: str, lineno: int, paren_depth: int,
                   out: list[Token]) -> int:
        """Scan one physical line; returns updated paren depth."""
        i = 0
        n = len(line)
        append = out.append
        while i < n:
            c = line[i]
            if c in " \t":
                i += 1
                continue
            if paren_depth > 0:
                name_chars = COST_NAME_CHARS
            else:
                name_chars = NAME_CHARS
            if c in DIGITS:
                j = i + 1
                while j < n and line[j] in DIGITS:
                    j += 1
                # A digit run followed by name characters is a host name
                # like "4votes", not a number — outside cost context.
                if paren_depth == 0 and j < n and line[j] in name_chars:
                    while j < n and line[j] in name_chars:
                        j += 1
                    append(Token(TokenKind.NAME, line[i:j], lineno))
                else:
                    text = line[i:j]
                    append(Token(TokenKind.NUMBER, text, lineno,
                                 value=int(text)))
                i = j
                continue
            if c in name_chars:
                j = i + 1
                while j < n and line[j] in name_chars:
                    j += 1
                append(Token(TokenKind.NAME, line[i:j], lineno))
                i = j
                continue
            if c == "(":
                paren_depth += 1
                append(Token(TokenKind.LPAREN, c, lineno))
                i += 1
                continue
            if c == ")":
                if paren_depth == 0:
                    raise ScanError("unbalanced ')'", self.filename, lineno)
                paren_depth -= 1
                append(Token(TokenKind.RPAREN, c, lineno))
                i += 1
                continue
            if paren_depth > 0 and c == "+":
                append(Token(TokenKind.PLUS, c, lineno))
                i += 1
                continue
            if paren_depth > 0 and c == "-":
                append(Token(TokenKind.MINUS, c, lineno))
                i += 1
                continue
            if c in SINGLE_CHAR:
                append(Token(SINGLE_CHAR[c], c, lineno))
                i += 1
                continue
            if c in OP_CHARS:
                append(Token(TokenKind.OP, c, lineno))
                i += 1
                continue
            if c == '"':
                j = line.find('"', i + 1)
                if j < 0:
                    raise ScanError("unterminated string",
                                    self.filename, lineno)
                append(Token(TokenKind.STRING, line[i + 1:j], lineno))
                i = j + 1
                continue
            raise ScanError(f"unexpected character {c!r}",
                            self.filename, lineno)
        return paren_depth


def scan_text(text: str, filename: str = "<stdin>") -> list[Token]:
    """Convenience: tokenize ``text`` with the hand-rolled scanner."""
    return Scanner(text, filename).tokens()
