"""Token definitions shared by both scanners.

The input language is line-oriented: a statement ends at a newline unless
the next line begins with whitespace (classic UUCP-map continuation) or
the line ends with a backslash.  Comments run from ``#`` to end of line.

Host names may contain letters, digits and ``. - _ +`` and may begin with
``.`` (a domain).  Inside parentheses — cost-expression context — ``+``
and ``-`` become operators instead of name characters; this is how
``HOURLY-5`` stays an expression while ``UNC-dwarf`` stays a name.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    NAME = "name"
    NUMBER = "number"
    STRING = "string"
    COMMA = ","
    EQUALS = "="
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    OP = "op"          # routing operator character: ! @ : %
    NEWLINE = "eol"    # statement boundary
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A lexical token with source coordinates for diagnostics."""

    kind: TokenKind
    text: str
    line: int
    value: int = 0  # numeric payload for NUMBER tokens

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, line {self.line})"


#: Characters legal in a host name outside cost context.
NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-+")

#: Characters legal in a name inside cost context (no arithmetic chars).
COST_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._")

#: Single-character tokens valid in either context.
SINGLE_CHAR = {
    ",": TokenKind.COMMA,
    "=": TokenKind.EQUALS,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
}

#: Routing operator characters (position decides LEFT/RIGHT).
OP_CHARS = frozenset("!@:%")

DIGITS = frozenset("0123456789")
