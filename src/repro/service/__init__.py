"""The persistent route service.

"Output from pathalias is a simple linear file, in the UNIX tradition.
If desired, a separate program may be used to convert this file into a
format appropriate for rapid database retrieval."  This package is that
separate program, grown into a serving tier:

* :mod:`repro.service.store` — a binary on-disk *route snapshot*: a
  compiled graph plus every source's route table in flat,
  offset-indexed sections, opened and searched by bisection without
  re-parsing or re-mapping;
* :mod:`repro.service.incremental` — diff-driven snapshot updates that
  remap only the sources a map revision can actually affect;
* :mod:`repro.service.daemon` — a long-running asyncio lookup server
  (``ROUTE`` / ``RELOAD`` / ``STATS`` over a line protocol) with atomic
  hot-swap of snapshots mid-traffic, plus the synchronous client that
  lets :class:`repro.mailer.router.MailRouter` route through it.
"""

from repro.service.store import (
    SnapshotError,
    SnapshotInfo,
    SnapshotReader,
    SnapshotTable,
    build_snapshot,
)
from repro.service.incremental import UpdateReport, update_snapshot
from repro.service.daemon import (
    DaemonRouteDatabase,
    RouteService,
    serve,
)

__all__ = [
    "SnapshotError",
    "SnapshotInfo",
    "SnapshotReader",
    "SnapshotTable",
    "build_snapshot",
    "UpdateReport",
    "update_snapshot",
    "DaemonRouteDatabase",
    "RouteService",
    "serve",
]
