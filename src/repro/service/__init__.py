"""The persistent route service.

"Output from pathalias is a simple linear file, in the UNIX tradition.
If desired, a separate program may be used to convert this file into a
format appropriate for rapid database retrieval."  This package is that
separate program, grown into a serving tier:

* :mod:`repro.service.resolver` — the one :class:`Resolver` contract
  every lookup surface satisfies (in-process snapshot, daemon client,
  federation, in-memory mailer table) and the shared implementation
  of the paper's domain-suffix search;
* :mod:`repro.service.cache` — caching as a composable *layer*: any
  resolver wrapped in a bounded, generation-stamped result cache,
  invalidated O(1) by bumping a generation token on every snapshot
  swap (RELOAD, ATTACH/DETACH, NOTIFY-driven re-syncs);
* :mod:`repro.service.store` — a binary on-disk *route snapshot*: a
  compiled graph plus every source's route table in flat,
  offset-indexed sections, opened and searched by bisection without
  re-parsing or re-mapping;
* :mod:`repro.service.incremental` — diff-driven snapshot updates that
  remap only the sources a map revision can actually affect;
* :mod:`repro.service.daemon` — a long-running asyncio lookup server
  (``ROUTE`` / ``RELOAD`` / ``STATS`` over a line protocol) with atomic
  hot-swap of snapshots mid-traffic, plus the synchronous client that
  lets :class:`repro.mailer.router.MailRouter` route through it;
* :mod:`repro.service.shard` / :mod:`repro.service.federation` — many
  regional snapshots (backbone, universities, ARPA, ...) served as
  independently reloadable *shards* behind one front end, with
  cross-shard routes stitched through gateway hosts;
* :mod:`repro.service.backend` — the scale-out tier: a shard served
  by a separate per-shard daemon *process*, fanned out to over a
  pooled socket client, so the front end shards CPU and not just
  snapshots.

See ``docs/architecture.md`` for the layer map, ``docs/protocol.md``
for the normative line-protocol reference, and
``docs/snapshot-format.md`` for the byte-level store layout.
"""

from repro.service.resolver import (
    Resolution,
    Resolver,
    SuffixResolver,
    domain_suffixes,
)
from repro.service.cache import (
    DEFAULT_CACHE_SIZE,
    CachingResolver,
    Generations,
    ResultCache,
)
from repro.service.store import (
    SnapshotError,
    SnapshotInfo,
    SnapshotReader,
    SnapshotResolver,
    SnapshotTable,
    build_snapshot,
    upgrade_snapshot,
)
from repro.service.incremental import UpdateReport, update_snapshot
from repro.service.daemon import (
    DaemonRouteDatabase,
    LineService,
    RouteService,
    serve,
)
from repro.service.shard import (
    FederatedResolution,
    FederationResolver,
    FederationView,
    Shard,
)
from repro.service.backend import (
    BackendShard,
    ShardBackend,
    parse_backend_spec,
)
from repro.service.federation import (
    FederatedRouteDatabase,
    FederationService,
)

__all__ = [
    "Resolution",
    "Resolver",
    "SuffixResolver",
    "domain_suffixes",
    "DEFAULT_CACHE_SIZE",
    "CachingResolver",
    "Generations",
    "ResultCache",
    "SnapshotError",
    "SnapshotInfo",
    "SnapshotReader",
    "SnapshotResolver",
    "SnapshotTable",
    "build_snapshot",
    "upgrade_snapshot",
    "UpdateReport",
    "update_snapshot",
    "DaemonRouteDatabase",
    "LineService",
    "RouteService",
    "serve",
    "Shard",
    "FederationResolver",
    "FederationView",
    "FederatedResolution",
    "FederatedRouteDatabase",
    "FederationService",
    "BackendShard",
    "ShardBackend",
    "parse_backend_spec",
]
