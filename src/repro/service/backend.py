"""Remote federation backends: per-shard daemons behind a client pool.

The federation front end (:mod:`repro.service.federation`) historically
answered every lookup itself from in-process
:class:`~repro.service.store.SnapshotReader` objects — sharded
snapshots, one CPU.  This module is the scale-out tier: each shard can
instead be a separate :class:`~repro.service.daemon.RouteService`
*process*, and the front end becomes a fan-out router that pushes the
whole per-shard lookup — the suffix walk, the binary searches, the
table decode — down to the shard daemon over the existing line
protocol.

Two classes:

* :class:`ShardBackend` — the asyncio client pool for one shard
  daemon: a bounded set of persistent connections, concurrent
  in-flight requests (one per pooled connection), transparent
  single-retry on a stale pooled socket, reconnect-with-backoff while
  the daemon restarts, and health state (``connected`` / ``down`` /
  counters) surfaced through the federation's ``STATS`` line.

* :class:`BackendShard` — a federation shard whose answers come from a
  backend daemon.  It quacks exactly like an in-process
  :class:`~repro.service.shard.Shard`: the ownership index and source
  set are fetched once at attach time with the daemon's bulk ``TABLE``
  verb, gateway legs are fetched batched (one ``TABLE``/``COSTS``
  round trip per Dijkstra expansion, cached per entry) and the final
  in-shard lookup is one ``ROUTE``/``EXACT`` dispatched to the daemon.
  A :class:`~repro.service.shard.FederationView` mixes local and
  backend shards freely, and stitched answers are byte-identical to
  the in-process federation over the same snapshots.

Because the remote daemon owns its snapshot, a backend shard's cached
view data describes the snapshot as of attach time; the federation's
``RELOAD <shard> <snapshot>`` verb forwards the reload to the backend
daemon and re-synchronizes the cached index in one step.
"""

from __future__ import annotations

import asyncio
import re

from repro.errors import FederationError
from repro.service.daemon import (
    RECONNECT_DELAY,
    RECONNECT_DELAY_MAX,
    wire_token,
)

#: ``host:port`` — how a remote backend is named on the CLI
#: (``--backend NAME=HOST:PORT``) and in the ``ATTACH`` verb (which
#: tells a backend spec from a snapshot path by this shape).
_BACKEND_SPEC = re.compile(r"^(?P<host>[^\s/:]+):(?P<port>\d{1,5})$")


def parse_backend_spec(spec: str) -> tuple[str, int] | None:
    """``(host, port)`` for a ``host:port`` backend spec, else None."""
    match = _BACKEND_SPEC.match(spec)
    if match is None:
        return None
    port = int(match.group("port"))
    if not 0 < port < 65536:
        return None
    return match.group("host"), port


class _BackendConnection:
    """One persistent daemon connection plus its protocol registers.

    ``bound_source`` mirrors the daemon's per-connection source
    register so repeated queries from the same entry host skip the
    redundant ``SOURCE`` round trip.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.bound_source: str | None = None

    async def request(self, line: str) -> str:
        """One request line out, the first reply line back."""
        self.writer.write(line.encode("utf-8") + b"\n")
        await self.writer.drain()
        raw = await self.reader.readline()
        if not raw:
            raise ConnectionError("backend closed the connection")
        return raw.decode("utf-8").rstrip("\r\n")

    async def request_bulk(self, line: str) -> tuple[str, list[str]]:
        """A bulk request: the ``OK <kind> <n>`` head line plus its
        ``n`` continuation lines (none for an ``ERR`` head)."""
        head = await self.request(line)
        if not head.startswith("OK"):
            return head, []
        try:
            count = int(head.split()[-1])
        except ValueError:
            raise FederationError(
                f"backend protocol error: {head!r}") from None
        lines = []
        for _ in range(count):
            raw = await self.reader.readline()
            if not raw:
                raise ConnectionError("backend closed mid-reply")
            lines.append(raw.decode("utf-8").rstrip("\r\n"))
        return head, lines

    def close(self) -> None:
        """Close the transport (errors at teardown are moot)."""
        try:
            self.writer.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass


class ShardBackend:
    """An asyncio client pool for one per-shard route daemon.

    At most ``pool_size`` persistent connections; concurrent requests
    each hold one connection for their round trip, so up to
    ``pool_size`` requests are in flight at once and the rest queue on
    the pool semaphore.  A request that finds its pooled socket stale
    (the daemon restarted since the last call) transparently opens a
    fresh connection — waiting out a restart window up to
    ``reconnect_patience`` seconds with exponential backoff — and
    retries exactly once.  Health is observable: :attr:`state` plus
    the request/error/connect counters, which the federation daemon
    reports per backend in its ``STATS`` line.
    """

    def __init__(self, name: str, host: str, port: int,
                 pool_size: int = 2, timeout: float = 5.0,
                 reconnect_patience: float = 2.0):
        self.name = name
        self.host = host
        self.port = port
        self.pool_size = max(1, pool_size)
        self.timeout = timeout
        self.reconnect_patience = reconnect_patience
        self._idle: list[_BackendConnection] = []
        self._slots = asyncio.Semaphore(self.pool_size)
        self.requests = 0
        self.errors = 0
        self.connects = 0
        self._inflight = 0
        self._ever_connected = False
        self._last_failure: str | None = None
        self._draining = False

    # -- health ---------------------------------------------------------------

    @property
    def address(self) -> str:
        """The backend daemon's ``host:port``."""
        return f"{self.host}:{self.port}"

    @property
    def state(self) -> str:
        """One-word health: ``new`` (never connected), ``connected``,
        ``down`` (last connect attempt failed), or ``closed``."""
        if self._draining:
            return "closed"
        if self._last_failure is not None:
            return "down"
        return "connected" if self._ever_connected else "new"

    def health(self) -> str:
        """The ``STATS`` token value:
        ``<state>:<requests>:<errors>:<connects>``."""
        return (f"{self.state}:{self.requests}:{self.errors}:"
                f"{self.connects}")

    # -- pool mechanics -------------------------------------------------------

    async def _open(self) -> _BackendConnection:
        """Dial the daemon, waiting out a restart with backoff."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + (self.reconnect_patience
                                  if self._ever_connected else 0.0)
        delay = RECONNECT_DELAY
        while True:
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    self.timeout)
                break
            except (OSError, asyncio.TimeoutError) as exc:
                if loop.time() + delay > deadline:
                    self._last_failure = str(exc) or type(exc).__name__
                    raise FederationError(
                        f"backend {self.name} ({self.address}) "
                        f"unreachable: {self._last_failure}") from None
                await asyncio.sleep(delay)
                delay = min(delay * 2, RECONNECT_DELAY_MAX)
        self._ever_connected = True
        self._last_failure = None
        self.connects += 1
        return _BackendConnection(reader, writer)

    async def _roundtrip(self, fn):
        """Run ``fn(conn)`` on a pooled connection.

        One transparent retry on a connection-class failure: the
        pooled socket may be stale after a daemon restart, and a fresh
        connect (patient, see :meth:`_open`) plus one resend is
        indistinguishable from a healthy first attempt.  Protocol
        errors (``ERR`` replies) are not retried — they reached the
        daemon and back.
        """
        if self._draining:
            raise FederationError(
                f"backend {self.name} ({self.address}) is closed")
        await self._slots.acquire()
        self._inflight += 1
        self.requests += 1
        conn = None
        try:
            conn = self._idle.pop() if self._idle else await self._open()
            try:
                result = await asyncio.wait_for(fn(conn), self.timeout)
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError):
                conn.close()
                conn = None
                conn = await self._open()
                result = await asyncio.wait_for(fn(conn), self.timeout)
        except Exception:
            self.errors += 1
            if conn is not None:
                conn.close()
                conn = None
            raise
        finally:
            if conn is not None:
                if self._draining:
                    conn.close()
                else:
                    self._idle.append(conn)
            self._inflight -= 1
            self._slots.release()
        return result

    async def aclose(self, grace: float = 2.0) -> None:
        """Close the pool after a grace window.

        A lookup pinned to a just-detached view may still need
        *future* round trips on this backend (it is between awaits,
        holding no connection yet), so the pool keeps serving for the
        whole ``grace`` window before it starts refusing — then idle
        connections close immediately and stragglers get a short
        drain.  Callers that hold the swap lock should not await
        this; the federation retires pools on a background task.
        """
        loop = asyncio.get_running_loop()
        if grace > 0:
            await asyncio.sleep(grace)
        self._draining = True
        for conn in self._idle:
            conn.close()
        self._idle.clear()
        deadline = loop.time() + max(grace, 0.1)
        while self._inflight and loop.time() < deadline:
            await asyncio.sleep(0.01)

    # -- the daemon conversation ----------------------------------------------

    #: the one shared wire-token validator (see
    #: :func:`repro.service.daemon.wire_token`)
    _token = staticmethod(wire_token)

    async def _bound(self, conn: _BackendConnection,
                     entry: str) -> None:
        """Bind the connection's source register to ``entry``."""
        if conn.bound_source == entry:
            return
        reply = await conn.request(f"SOURCE {entry}")
        if not reply.startswith("OK"):
            conn.bound_source = None
            raise FederationError(
                f"backend {self.name}: {reply}")
        conn.bound_source = entry

    async def stats(self) -> dict[str, str]:
        """The backend daemon's ``STATS`` counters as a dict."""
        async def fn(conn):
            reply = await conn.request("STATS")
            if not reply.startswith("OK "):
                raise FederationError(
                    f"backend {self.name} protocol error: {reply!r}")
            out = {}
            for token in reply[3:].split():
                key, _, value = token.partition("=")
                out[key] = value
            return out

        return await self._roundtrip(fn)

    async def routing_index(self) -> list[tuple[str, bool]]:
        """The daemon's source/domain ownership index (bulk
        ``TABLE``): sorted ``(name, is_domain)`` pairs."""
        async def fn(conn):
            head, lines = await conn.request_bulk("TABLE")
            if not head.startswith("OK index"):
                raise FederationError(
                    f"backend {self.name} protocol error: {head!r}")
            out = []
            for line in lines:
                kind, _, name = line.partition(" ")
                if kind not in ("S", "D") or not name:
                    raise FederationError(
                        f"backend {self.name} protocol error: {line!r}")
                out.append((name, kind == "D"))
            return out

        return await self._roundtrip(fn)

    async def table_rows(self, source: str, dests=None
                         ) -> dict[str, tuple[int, str]]:
        """Route records from ``source``'s table, in one round trip.

        With ``dests``, a batched exact lookup (misses absent from the
        answer); without, the whole table.
        """
        request = f"TABLE {self._token(source, 'source')}"
        if dests:
            request += "".join(f" {self._token(d, 'destination')}"
                               for d in dests)

        async def fn(conn):
            head, lines = await conn.request_bulk(request)
            if not head.startswith("OK table"):
                raise FederationError(
                    f"backend {self.name}: {head}")
            out = {}
            for line in lines:
                parts = line.split()
                if len(parts) != 3:
                    raise FederationError(
                        f"backend {self.name} protocol error: {line!r}")
                cost, name, route = parts
                if cost == "-":
                    continue  # batched miss
                out[name] = (int(cost), route)
            return out

        return await self._roundtrip(fn)

    async def state_costs(self, source: str, names=None
                          ) -> dict[str, int] | None:
        """Exact per-state costs by name (bulk ``COSTS``), or None
        when the backend serves a v1 snapshot (``ERR no-state-costs``)
        — callers fall back to printed record costs, exactly like an
        in-process v1 shard."""
        request = f"COSTS {self._token(source, 'source')}"
        if names:
            request += "".join(f" {self._token(n, 'name')}"
                               for n in names)

        async def fn(conn):
            head, lines = await conn.request_bulk(request)
            if head.startswith("ERR no-state-costs"):
                return None
            if not head.startswith("OK costs"):
                raise FederationError(
                    f"backend {self.name}: {head}")
            out = {}
            for line in lines:
                cost, _, name = line.partition(" ")
                if cost == "-":
                    continue
                out[name] = int(cost)
            return out

        return await self._roundtrip(fn)

    async def route(self, entry: str, target: str):
        """The whole in-shard lookup, dispatched to the daemon:
        ``SOURCE entry`` + ``ROUTE target`` on one pooled connection.

        Returns ``(cost, relative template, matched key)`` — the
        daemon's suffix walk did the work — or None on ``ERR
        noroute``.
        """
        entry = self._token(entry, "entry host")
        target = self._token(target, "destination")

        async def fn(conn):
            await self._bound(conn, entry)
            reply = await conn.request(f"ROUTE {target}")
            if reply.startswith("ERR noroute"):
                return None
            parts = reply.split()
            if len(parts) != 5 or parts[0] != "OK":
                raise FederationError(
                    f"backend {self.name}: {reply}")
            _, cost, matched, _route, address = parts
            # without a user the address IS the relative template
            return int(cost), address, matched

        return await self._roundtrip(fn)

    async def exact(self, entry: str, target: str):
        """Exact-name lookup dispatched to the daemon:
        ``(cost, route)`` or None on a miss."""
        entry = self._token(entry, "entry host")
        target = self._token(target, "destination")

        async def fn(conn):
            await self._bound(conn, entry)
            reply = await conn.request(f"EXACT {target}")
            if reply.startswith("ERR noroute"):
                return None
            parts = reply.split()
            if len(parts) != 4 or parts[0] != "OK":
                raise FederationError(
                    f"backend {self.name}: {reply}")
            return int(parts[1]), parts[3]

        return await self._roundtrip(fn)

    async def reload(self, snapshot_path: str) -> str:
        """Forward a snapshot reload to the backend daemon; returns
        the daemon's ``OK reloaded ...`` reply (raises
        :class:`FederationError` on refusal)."""
        async def fn(conn):
            reply = await conn.request(f"RELOAD {snapshot_path}")
            if not reply.startswith("OK reloaded"):
                raise FederationError(
                    f"backend {self.name} refused reload: {reply}")
            return reply

        return await self._roundtrip(fn)

    def __repr__(self) -> str:
        return (f"ShardBackend({self.name!r}, {self.address!r}, "
                f"{self.state})")


class BackendShard:
    """A federation shard answered by a remote daemon process.

    Quacks like an in-process :class:`~repro.service.shard.Shard` —
    the same ownership, gateway, and async entry-query surface the
    :class:`~repro.service.shard.FederationView` stitches over — but
    every answer comes from the backend daemon: the index was fetched
    at attach time (bulk ``TABLE``), gateway legs are fetched batched
    and cached per entry (``TABLE``/``COSTS``), and the final in-shard
    lookup is a ``ROUTE``/``EXACT`` executed *by the daemon*, which is
    what actually shards the CPU.

    Immutable after :meth:`connect`, like every shard: the cached
    index describes the backend's snapshot as of attach time, and the
    federation's per-shard RELOAD re-connects a fresh instance.
    """

    def __init__(self, name: str, backend: ShardBackend,
                 index: list[tuple[str, bool]], version: int,
                 snapshot: str):
        self.name = name
        self.backend = backend
        self._index = list(index)
        self._sources = [n for n, is_domain in index if not is_domain]
        self._source_set = frozenset(self._sources)
        self._domains = [n for n, is_domain in index if is_domain]
        self._version = version
        self._snapshot = snapshot
        #: per-(entry, gate) leg cache: the leg tuple, or None for a
        #: confirmed miss.  Keyed per gate (not per requested subset)
        #: so it is bounded by entries x gateways and every repeat
        #: expansion hits, whatever subset the Dijkstra asks for.
        self._legs: dict[tuple[str, str], tuple[int, str] | None] = {}

    @classmethod
    async def connect(cls, name: str,
                      backend: ShardBackend) -> "BackendShard":
        """Assemble the shard from backend answers: one ``STATS`` for
        the format/snapshot identity, one bulk ``TABLE`` for the
        ownership index."""
        stats, index = await asyncio.gather(backend.stats(),
                                            backend.routing_index())
        try:
            version = int(stats.get("format", ""))
        except ValueError:
            raise FederationError(
                f"backend {name} ({backend.address}) reported no "
                f"snapshot format in STATS") from None
        return cls(name, backend, index, version,
                   stats.get("snapshot", ""))

    # -- the Shard surface ----------------------------------------------------

    def sources(self) -> list[str]:
        """Hosts with route tables in the backend, sorted."""
        return list(self._sources)

    @property
    def source_set(self) -> frozenset:
        """The table-owning hosts as a set (gateway intersection)."""
        return self._source_set

    def domains(self) -> list[str]:
        """Sorted public domain names the backend's map declares."""
        return list(self._domains)

    @property
    def source_count(self) -> int:
        """Number of route tables behind the backend."""
        return len(self._sources)

    @property
    def path(self) -> str:
        """Where the shard's answers come from: the backend address
        (the remote snapshot path is in :attr:`snapshot`)."""
        return f"tcp://{self.backend.address}"

    @property
    def snapshot(self) -> str:
        """The backend daemon's snapshot path, as it reported it."""
        return self._snapshot

    @property
    def version(self) -> int:
        """The backend's snapshot format version (from STATS)."""
        return self._version

    def routing_index(self) -> list[tuple[str, bool]]:
        """The prefetched source/domain ownership index."""
        return list(self._index)

    def has_source(self, source: str) -> bool:
        """Whether the backend holds a table for ``source``."""
        return source in self._source_set

    def drop_cached_legs(self) -> None:
        """Forget every cached gateway leg.

        Called by the federation's forwarded-RELOAD path: the remote
        daemon swaps snapshots the moment it accepts the reload, so a
        lookup pinned to the outgoing view can cache legs from the
        *new* (or, after a rollback, the briefly-served) snapshot on
        this outgoing shard — clearing the cache keeps any such
        mixture from outliving the swap window.
        """
        self._legs.clear()

    # -- the async entry-query surface ----------------------------------------

    async def route_legs(self, entry: str,
                         gates: list[str]) -> dict[str, tuple[int, str]]:
        """Gateway legs out of ``entry``, one batched round trip.

        ``TABLE entry g1 g2 ...`` for the printed templates and (on a
        v2 backend, concurrently) ``COSTS entry g1 g2 ...`` for the
        exact per-state prices — the same cost selection an in-process
        shard makes.  Cached per ``(entry, gate)`` — misses included —
        and only the uncached gates ride the wire: the backend's
        snapshot is pinned for this shard's lifetime, so repeat
        expansions cost nothing whatever subset the stitch asks for.
        """
        cache = self._legs
        missing = [g for g in gates if (entry, g) not in cache]
        if missing:
            if self._version >= 2:
                rows, costs = await asyncio.gather(
                    self.backend.table_rows(entry, missing),
                    self.backend.state_costs(entry, missing))
            else:
                rows = await self.backend.table_rows(entry, missing)
                costs = None
            if costs is None:
                costs = {}
            for gate in missing:
                hit = rows.get(gate)
                cache[(entry, gate)] = None if hit is None else \
                    (costs.get(gate, hit[0]), hit[1])
        out = {}
        for gate in gates:
            leg = cache[(entry, gate)]
            if leg is not None:
                out[gate] = leg
        return out

    async def entry_resolve(self, entry: str, target: str):
        """The whole domain-suffix lookup, executed by the daemon:
        ``(cost, relative template, matched)`` or None on a miss."""
        return await self.backend.route(entry, target)

    async def entry_exact(self, entry: str, target: str):
        """Exact-name lookup executed by the daemon:
        ``(cost, route, target)`` or None on a miss."""
        hit = await self.backend.exact(entry, target)
        if hit is None:
            return None
        cost, route = hit
        return cost, route, target

    def __repr__(self) -> str:
        return (f"BackendShard({self.name!r}, {self.source_count} "
                f"sources, {self.path!r})")
