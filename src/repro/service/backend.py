"""Remote federation backends: per-shard daemons behind a client pool.

The federation front end (:mod:`repro.service.federation`) historically
answered every lookup itself from in-process
:class:`~repro.service.store.SnapshotReader` objects — sharded
snapshots, one CPU.  This module is the scale-out tier: each shard can
instead be a separate :class:`~repro.service.daemon.RouteService`
*process*, and the front end becomes a fan-out router that pushes the
whole per-shard lookup — the suffix walk, the binary searches, the
table decode — down to the shard daemon over the existing line
protocol.

Two classes:

* :class:`ShardBackend` — the asyncio client for one shard daemon.
  Against a pipelining daemon (negotiated with one ``PIPELINE`` probe
  per connection) it runs a single multiplexed connection: a writer
  task serializes tagged request frames onto the wire and a reply
  demultiplexer routes tagged reply frames — out of order, bulk
  replies interleaved — back to their waiting futures, so many
  requests share one connection's round trip instead of queueing for
  pooled sockets.  Against an older daemon (``ERR unknown-command
  PIPELINE``) it transparently falls back to the lockstep connection
  pool, so mixed-version clusters interoperate unchanged.  Both modes
  keep the transparent single-retry on a stale socket,
  reconnect-with-backoff while the daemon restarts, and health state
  (``connected`` / ``down`` / counters, including pipelined-request
  and out-of-order-reply counts) surfaced through the federation's
  ``STATS`` line.

* :class:`BackendShard` — a federation shard whose answers come from a
  backend daemon.  It quacks exactly like an in-process
  :class:`~repro.service.shard.Shard`: the ownership index and source
  set are fetched once at attach time with the daemon's bulk ``TABLE``
  verb, gateway legs are fetched batched (one ``TABLE``/``COSTS``
  round trip per Dijkstra expansion, cached per entry) and the final
  in-shard lookup is one ``ROUTE``/``EXACT`` dispatched to the daemon.
  A :class:`~repro.service.shard.FederationView` mixes local and
  backend shards freely, and stitched answers are byte-identical to
  the in-process federation over the same snapshots.

Because the remote daemon owns its snapshot, a backend shard's cached
view data describes the snapshot as of attach time; the federation's
``RELOAD <shard> <snapshot>`` verb forwards the reload to the backend
daemon and re-synchronizes the cached index in one step.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import re

from repro.errors import FederationError
from repro.service.daemon import (
    RECONNECT_DELAY,
    RECONNECT_DELAY_MAX,
    wire_token,
)
from repro.service.fsm import (
    NAME_F_DOMAIN,
    AutomatonError,
    FlatSuffixAutomaton,
    SuffixAutomaton,
)

#: ``host:port`` — how a remote backend is named on the CLI
#: (``--backend NAME=HOST:PORT``) and in the ``ATTACH`` verb (which
#: tells a backend spec from a snapshot path by this shape).
_BACKEND_SPEC = re.compile(r"^(?P<host>[^\s/:]+):(?P<port>\d{1,5})$")


def parse_backend_spec(spec: str) -> tuple[str, int] | None:
    """``(host, port)`` for a ``host:port`` backend spec, else None."""
    match = _BACKEND_SPEC.match(spec)
    if match is None:
        return None
    port = int(match.group("port"))
    if not 0 < port < 65536:
        return None
    return match.group("host"), port


class _BackendConnection:
    """One persistent daemon connection plus its protocol registers.

    ``bound_source`` mirrors the daemon's per-connection source
    register so repeated queries from the same entry host skip the
    redundant ``SOURCE`` round trip.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.bound_source: str | None = None

    async def request(self, line: str) -> str:
        """One request line out, the first reply line back."""
        self.writer.write(line.encode("utf-8") + b"\n")
        await self.writer.drain()
        raw = await self.reader.readline()
        if not raw:
            raise ConnectionError("backend closed the connection")
        return raw.decode("utf-8").rstrip("\r\n")

    async def request_bulk(self, line: str) -> tuple[str, list[str]]:
        """A bulk request: the ``OK <kind> <n>`` head line plus its
        ``n`` continuation lines (none for an ``ERR`` head)."""
        head = await self.request(line)
        if not head.startswith("OK"):
            return head, []
        try:
            count = int(head.split()[-1])
        except ValueError:
            raise FederationError(
                f"backend protocol error: {head!r}") from None
        lines = []
        for _ in range(count):
            raw = await self.reader.readline()
            if not raw:
                raise ConnectionError("backend closed mid-reply")
            lines.append(raw.decode("utf-8").rstrip("\r\n"))
        return head, lines

    def close(self) -> None:
        """Close the transport (errors at teardown are moot)."""
        try:
            self.writer.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass


#: Sentinel returned by the mux path when the PIPELINE probe found an
#: old lockstep-only daemon: the caller reruns on the pooled path.
_LOCKSTEP = object()


class _Pending:
    """One in-flight tagged request's reassembly state."""

    __slots__ = ("fut", "bulk", "head", "lines", "want")

    def __init__(self, fut: asyncio.Future, bulk: bool):
        self.fut = fut
        self.bulk = bulk
        self.head: str | None = None
        self.lines: list[str] = []
        self.want = 0


class _MuxConnection:
    """One pipelined daemon connection shared by many requests.

    A writer task drains a frame queue onto the socket (one writer,
    so concurrent requests never interleave partial writes or race
    the stream's drain), and a reader task demultiplexes tagged reply
    frames into per-request futures.  Bulk replies reassemble by tag:
    the head frame (``@<tag> OK table <n>``) announces how many
    continuation frames belong to that tag, so two bulk replies can
    interleave arbitrarily on the wire and still come apart cleanly.

    ``SOURCE`` ordering: the daemon applies a tagged ``SOURCE``
    inline in read order, so enqueueing ``@a SOURCE x`` immediately
    before ``@b ROUTE y`` (one queue item, atomic on the wire)
    guarantees the ROUTE runs against source ``x``.  The connection
    tracks the last *enqueued* source; dependent requests keep a
    reference to their SOURCE's future and fail if it failed —
    correctness never depends on the speculative send being right.
    """

    def __init__(self, owner: "ShardBackend",
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.owner = owner
        self.reader = reader
        self.writer = writer
        self.broken: Exception | None = None
        self._pending: dict[str, _Pending] = {}
        self._queue: asyncio.Queue = asyncio.Queue()
        self._next_tag = 0
        self._wire_source: str | None = None
        self._source_fut: asyncio.Future | None = None
        loop = asyncio.get_running_loop()
        self._writer_task = loop.create_task(self._write_loop())
        self._reader_task = loop.create_task(self._read_loop())

    # -- submitting requests --------------------------------------------------

    def _tag(self) -> str:
        self._next_tag += 1
        return str(self._next_tag)

    def _register(self, bulk: bool) -> tuple[str, asyncio.Future]:
        tag = self._tag()
        fut = asyncio.get_running_loop().create_future()
        self._pending[tag] = _Pending(fut, bulk)
        return tag, fut

    def submit(self, line: str, *, bulk: bool = False,
               source: str | None = None
               ) -> tuple[asyncio.Future, asyncio.Future | None]:
        """Enqueue one tagged request; returns ``(reply future,
        source future or None)``.

        With ``source``, a tagged ``SOURCE`` ride-along is enqueued
        first when the wire register differs — atomically, in the
        same queue item — and the returned source future must be
        checked ``OK`` by the caller before trusting the reply.
        """
        if self.broken is not None:
            raise ConnectionError(str(self.broken))
        frames = []
        src_fut = None
        if source is not None:
            if self._wire_source != source:
                stag, sfut = self._register(False)
                frames.append(f"@{stag} SOURCE {source}")
                self._wire_source = source
                self._source_fut = sfut
            src_fut = self._source_fut
        tag, fut = self._register(bulk)
        frames.append(f"@{tag} {line}")
        self.owner.pipelined += len(frames)
        self._queue.put_nowait(
            "".join(f + "\n" for f in frames).encode("utf-8"))
        return fut, src_fut

    def reset_source(self, source: str) -> None:
        """Forget a speculative source binding that the daemon
        refused, so the next request for it re-sends ``SOURCE``."""
        if self._wire_source == source:
            self._wire_source = None
            self._source_fut = None

    # -- the two connection tasks ---------------------------------------------

    async def _write_loop(self) -> None:
        """Serialize queued frames onto the socket, coalescing
        whatever is queued into one write+drain."""
        try:
            while True:
                data = await self._queue.get()
                if data is None:
                    return
                while not self._queue.empty():
                    more = self._queue.get_nowait()
                    if more is None:
                        self._queue.put_nowait(None)
                        break
                    data += more
                self.writer.write(data)
                await self.writer.drain()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail(exc)

    async def _read_loop(self) -> None:
        """Demultiplex tagged reply frames into pending futures."""
        try:
            while True:
                raw = await self.reader.readline()
                if not raw:
                    raise ConnectionError(
                        "backend closed the connection")
                line = raw.decode("utf-8").rstrip("\r\n")
                if not line.startswith("@"):
                    # Untagged junk mid-pipeline (an ERR overflow /
                    # encoding diagnostic we cannot correlate): the
                    # framing can no longer be trusted.
                    raise ConnectionError(
                        f"untagged frame on pipelined connection: "
                        f"{line!r}")
                tagtok, _, frame = line.partition(" ")
                tag = tagtok[1:]
                pend = self._pending.get(tag)
                if pend is None:
                    raise ConnectionError(
                        f"reply for unknown tag: {line!r}")
                self._deliver(tag, pend, frame)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail(exc)

    def _deliver(self, tag: str, pend: _Pending, frame: str) -> None:
        """Feed one reply frame into its request's reassembly; resolve
        the future when the reply is complete."""
        if pend.bulk and pend.head is None and frame.startswith("OK"):
            try:
                pend.want = int(frame.split()[-1])
            except ValueError:
                raise ConnectionError(
                    f"backend protocol error: {frame!r}") from None
            pend.head = frame
            if pend.want > 0:
                return  # continuation frames follow
            result: object = (frame, [])
        elif pend.bulk and pend.head is None:
            result = (frame, [])  # ERR head: no continuation
        elif pend.bulk:
            pend.lines.append(frame)
            if len(pend.lines) < pend.want:
                return
            result = (pend.head, pend.lines)
        else:
            result = frame
        oldest = next(iter(self._pending))
        del self._pending[tag]
        if oldest != tag:
            self.owner.out_of_order += 1
        if not pend.fut.done():
            pend.fut.set_result(result)

    # -- teardown -------------------------------------------------------------

    def _fail(self, exc: Exception) -> None:
        """Mark the connection dead and fail every pending request
        with a retryable :class:`ConnectionError`."""
        if self.broken is not None:
            return
        self.broken = exc
        detail = str(exc) or type(exc).__name__
        for pend in self._pending.values():
            if not pend.fut.done():
                pend.fut.set_exception(ConnectionError(detail))
                # mark retrieved: a caller that already failed on its
                # own future may never await this shared one
                pend.fut.exception()
        self._pending.clear()
        self._queue.put_nowait(None)
        try:
            self.writer.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass

    def abort(self, exc: Exception | None = None) -> None:
        """Tear the connection down (idempotent): fail pending
        requests and stop both connection tasks."""
        self._fail(exc or ConnectionError("connection closed"))
        self._reader_task.cancel()
        self._writer_task.cancel()


class ShardBackend:
    """An asyncio client pool for one per-shard route daemon.

    At most ``pool_size`` persistent connections; concurrent requests
    each hold one connection for their round trip, so up to
    ``pool_size`` requests are in flight at once and the rest queue on
    the pool semaphore.  A request that finds its pooled socket stale
    (the daemon restarted since the last call) transparently opens a
    fresh connection — waiting out a restart window up to
    ``reconnect_patience`` seconds with exponential backoff — and
    retries exactly once.  Health is observable: :attr:`state` plus
    the request/error/connect counters, which the federation daemon
    reports per backend in its ``STATS`` line.

    A backend address served by ``serve --workers N`` needs no special
    handling: the kernel lands each pooled connection on some worker,
    and because every request round trip states its ``SOURCE``
    per-connection and the workers serve one identical mmapped
    snapshot, any worker answers any pooled request identically.
    """

    def __init__(self, name: str, host: str, port: int,
                 pool_size: int = 2, timeout: float = 5.0,
                 reconnect_patience: float = 2.0,
                 pipeline: bool = True):
        """``pipeline=False`` forces the lockstep pool even against a
        daemon that would negotiate the tagged protocol."""
        self.name = name
        self.host = host
        self.port = port
        self.pool_size = max(1, pool_size)
        self.timeout = timeout
        self.reconnect_patience = reconnect_patience
        self.pipeline = pipeline
        self._idle: list[_BackendConnection] = []
        self._slots = asyncio.Semaphore(self.pool_size)
        self.requests = 0
        self.errors = 0
        self.connects = 0
        #: Tagged request frames sent on the pipelined path, and
        #: replies that completed out of submission order — the two
        #: extra fields of the :meth:`health` token.
        self.pipelined = 0
        self.out_of_order = 0
        #: Whether the daemon answered the PIPELINE probe (None until
        #: the first connection learns the answer).
        self._pipeline_ok: bool | None = None
        self._mux: _MuxConnection | None = None
        self._mux_lock = asyncio.Lock()
        self._inflight = 0
        self._ever_connected = False
        self._last_failure: str | None = None
        self._draining = False
        #: The NOTIFY push channel (see :meth:`subscribe_reloads`):
        #: its dedicated connection, the listener task, and the count
        #: of reload pushes received on it.
        self._notify_conn: _BackendConnection | None = None
        self._notify_task: asyncio.Task | None = None
        self.notifies = 0

    # -- health ---------------------------------------------------------------

    @property
    def address(self) -> str:
        """The backend daemon's ``host:port``."""
        return f"{self.host}:{self.port}"

    @property
    def state(self) -> str:
        """One-word health: ``new`` (never connected), ``connected``,
        ``down`` (last connect attempt failed), or ``closed``."""
        if self._draining:
            return "closed"
        if self._last_failure is not None:
            return "down"
        return "connected" if self._ever_connected else "new"

    def health(self) -> str:
        """The ``STATS`` token value:
        ``<state>:<requests>:<errors>:<connects>:<pipelined>:<ooo>``
        — the last two are tagged request frames sent and replies
        that returned out of submission order (0:0 for a lockstep
        backend)."""
        return (f"{self.state}:{self.requests}:{self.errors}:"
                f"{self.connects}:{self.pipelined}:"
                f"{self.out_of_order}")

    # -- pool mechanics -------------------------------------------------------

    async def _open(self) -> _BackendConnection:
        """Dial the daemon, waiting out a restart with backoff."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + (self.reconnect_patience
                                  if self._ever_connected else 0.0)
        delay = RECONNECT_DELAY
        while True:
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    self.timeout)
                break
            except (OSError, asyncio.TimeoutError) as exc:
                if loop.time() + delay > deadline:
                    self._last_failure = str(exc) or type(exc).__name__
                    raise FederationError(
                        f"backend {self.name} ({self.address}) "
                        f"unreachable: {self._last_failure}") from None
                await asyncio.sleep(delay)
                delay = min(delay * 2, RECONNECT_DELAY_MAX)
        self._ever_connected = True
        self._last_failure = None
        self.connects += 1
        return _BackendConnection(reader, writer)

    async def _roundtrip(self, fn):
        """Run ``fn(conn)`` on a pooled connection.

        One transparent retry on a connection-class failure: the
        pooled socket may be stale after a daemon restart, and a fresh
        connect (patient, see :meth:`_open`) plus one resend is
        indistinguishable from a healthy first attempt.  Protocol
        errors (``ERR`` replies) are not retried — they reached the
        daemon and back.
        """
        if self._draining:
            raise FederationError(
                f"backend {self.name} ({self.address}) is closed")
        await self._slots.acquire()
        self._inflight += 1
        self.requests += 1
        conn = None
        try:
            conn = self._idle.pop() if self._idle else await self._open()
            try:
                result = await asyncio.wait_for(fn(conn), self.timeout)
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError):
                conn.close()
                conn = None
                conn = await self._open()
                result = await asyncio.wait_for(fn(conn), self.timeout)
        except Exception:
            self.errors += 1
            if conn is not None:
                conn.close()
                conn = None
            raise
        except BaseException:
            # cancelled mid-roundtrip (a speculative prefetch the
            # stitch abandoned): the request may be on the wire with
            # its reply unread, so the socket must not go back in the
            # pool — the next request would read the stale reply
            if conn is not None:
                conn.close()
                conn = None
            raise
        finally:
            if conn is not None:
                if self._draining:
                    conn.close()
                else:
                    self._idle.append(conn)
            self._inflight -= 1
            self._slots.release()
        return result

    # -- the pipelined path ---------------------------------------------------

    async def _mux_get(self) -> _MuxConnection | None:
        """The shared pipelined connection, dialing and probing
        ``PIPELINE`` if needed; None when the daemon is lockstep-only
        (the probed connection is handed to the pool instead)."""
        conn = self._mux
        if conn is not None and conn.broken is None:
            return conn
        async with self._mux_lock:
            conn = self._mux
            if conn is not None and conn.broken is None:
                return conn
            if self._draining:
                raise FederationError(
                    f"backend {self.name} ({self.address}) is closed")
            if self._pipeline_ok is False:
                return None
            raw = await self._open()
            try:
                probe = await asyncio.wait_for(
                    raw.request("PIPELINE"), self.timeout)
            except Exception:
                raw.close()
                raise
            if not probe.startswith("OK pipeline"):
                # An older daemon: remember, and donate the perfectly
                # good probed connection to the lockstep pool.
                self._pipeline_ok = False
                self._idle.append(raw)
                return None
            self._pipeline_ok = True
            self._mux = _MuxConnection(self, raw.reader, raw.writer)
            return self._mux

    def _drop_mux(self, conn: _MuxConnection, exc: Exception) -> None:
        """Tear down a failed mux connection (the next request
        re-dials, with the usual restart patience)."""
        conn.abort(ConnectionError(str(exc) or type(exc).__name__))
        if self._mux is conn:
            self._mux = None

    async def _mux_roundtrip(self, line: str, *, bulk: bool,
                             source: str | None):
        """One tagged request over the shared mux connection, with
        the same transparent single-retry the pooled path has: a
        connection-class failure tears the mux down, re-dials (with
        restart patience) and resubmits exactly once.  Returns the
        reply (or ``(head, lines)`` for bulk), or the
        :data:`_LOCKSTEP` sentinel when the daemon cannot pipeline.
        """
        if self._draining:
            raise FederationError(
                f"backend {self.name} ({self.address}) is closed")
        self._inflight += 1
        self.requests += 1
        try:
            for attempt in (0, 1):
                conn = None
                try:
                    conn = await self._mux_get()
                    if conn is None:
                        self.requests -= 1  # the pooled path recounts
                        return _LOCKSTEP
                    fut, src_fut = conn.submit(line, bulk=bulk,
                                               source=source)
                    result = await asyncio.wait_for(fut, self.timeout)
                    if src_fut is not None:
                        # resolved before our own reply (the daemon
                        # answers SOURCE inline, in read order), so
                        # this never actually waits — shielded
                        # because the future is shared
                        src = await asyncio.wait_for(
                            asyncio.shield(src_fut), self.timeout)
                        if not src.startswith("OK"):
                            conn.reset_source(source)
                            raise FederationError(
                                f"backend {self.name}: {src}")
                    return result
                except (ConnectionError, OSError, asyncio.TimeoutError,
                        asyncio.IncompleteReadError) as exc:
                    if conn is not None:
                        self._drop_mux(conn, exc)
                    if attempt:
                        self.errors += 1
                        raise
                except Exception:
                    self.errors += 1
                    raise
        finally:
            self._inflight -= 1

    # -- the one request surface ----------------------------------------------

    def _use_pipeline(self) -> bool:
        """Whether requests should try the tagged mux path."""
        return self.pipeline and self._pipeline_ok is not False

    async def _call(self, line: str, *,
                    source: str | None = None) -> str:
        """One single-line request, on whichever wire mode the daemon
        negotiated; with ``source``, the connection's source register
        is bound first (pipelined: a tagged ride-along; lockstep: a
        ``SOURCE`` round trip skipped when already bound)."""
        if self._use_pipeline():
            result = await self._mux_roundtrip(line, bulk=False,
                                               source=source)
            if result is not _LOCKSTEP:
                return result

        async def fn(conn):
            if source is not None:
                await self._bound(conn, source)
            return await conn.request(line)

        return await self._roundtrip(fn)

    async def _call_bulk(self, line: str, *,
                         source: str | None = None
                         ) -> tuple[str, list[str]]:
        """One bulk request (``OK <kind> <n>`` head plus ``n``
        continuation lines), on whichever wire mode the daemon
        negotiated."""
        if self._use_pipeline():
            result = await self._mux_roundtrip(line, bulk=True,
                                               source=source)
            if result is not _LOCKSTEP:
                return result

        async def fn(conn):
            if source is not None:
                await self._bound(conn, source)
            return await conn.request_bulk(line)

        return await self._roundtrip(fn)

    async def aclose(self, grace: float = 2.0) -> None:
        """Close the pool after a grace window.

        A lookup pinned to a just-detached view may still need
        *future* round trips on this backend (it is between awaits,
        holding no connection yet), so the pool keeps serving for the
        whole ``grace`` window before it starts refusing — then idle
        connections close immediately and stragglers get a short
        drain.  Callers that hold the swap lock should not await
        this; the federation retires pools on a background task.
        """
        loop = asyncio.get_running_loop()
        if grace > 0:
            await asyncio.sleep(grace)
        self._draining = True
        for conn in self._idle:
            conn.close()
        self._idle.clear()
        deadline = loop.time() + max(grace, 0.1)
        while self._inflight and loop.time() < deadline:
            await asyncio.sleep(0.01)
        # stragglers have drained (or forfeited their window): the
        # mux connection and its two tasks can go away now
        if self._mux is not None:
            self._mux.abort(ConnectionError(
                f"backend {self.name} closed"))
            self._mux = None
        if self._notify_task is not None:
            self._notify_task.cancel()
            self._notify_task = None
        if self._notify_conn is not None:
            self._notify_conn.close()
            self._notify_conn = None

    # -- the daemon conversation ----------------------------------------------

    #: the one shared wire-token validator (see
    #: :func:`repro.service.daemon.wire_token`)
    _token = staticmethod(wire_token)

    async def _bound(self, conn: _BackendConnection,
                     entry: str) -> None:
        """Bind the connection's source register to ``entry``."""
        if conn.bound_source == entry:
            return
        reply = await conn.request(f"SOURCE {entry}")
        if not reply.startswith("OK"):
            conn.bound_source = None
            raise FederationError(
                f"backend {self.name}: {reply}")
        conn.bound_source = entry

    async def stats(self) -> dict[str, str]:
        """The backend daemon's ``STATS`` counters as a dict."""
        reply = await self._call("STATS")
        if not reply.startswith("OK "):
            raise FederationError(
                f"backend {self.name} protocol error: {reply!r}")
        out = {}
        for token in reply[3:].split():
            key, _, value = token.partition("=")
            out[key] = value
        return out

    async def routing_index(self) -> list[tuple[str, bool]]:
        """The daemon's source/domain ownership index (bulk
        ``TABLE``): sorted ``(name, is_domain)`` pairs."""
        head, lines = await self._call_bulk("TABLE")
        if not head.startswith("OK index"):
            raise FederationError(
                f"backend {self.name} protocol error: {head!r}")
        out = []
        for line in lines:
            kind, _, name = line.partition(" ")
            if kind not in ("S", "D") or not name:
                raise FederationError(
                    f"backend {self.name} protocol error: {line!r}")
            out.append((name, kind == "D"))
        return out

    async def index_fsm(self) -> bytes | None:
        """The daemon's ownership index as a compiled suffix-automaton
        block (bulk ``TABLE --fsm``), or None against an older daemon
        that does not serve the block (callers fall back to the text
        :meth:`routing_index`)."""
        head, lines = await self._call_bulk("TABLE --fsm")
        if head.startswith("ERR unknown-source") or \
                head.startswith("ERR unknown-command") or \
                head.startswith("ERR usage"):
            return None  # pre-FSM daemon: it parsed --fsm as a source
        if not head.startswith("OK fsm"):
            raise FederationError(
                f"backend {self.name} protocol error: {head!r}")
        try:
            return base64.b64decode("".join(lines), validate=True)
        except binascii.Error as exc:
            raise FederationError(
                f"backend {self.name} sent a corrupt index "
                f"automaton: {exc}") from None

    async def table_rows(self, source: str, dests=None
                         ) -> dict[str, tuple[int, str]]:
        """Route records from ``source``'s table, in one round trip.

        With ``dests``, a batched exact lookup (misses absent from the
        answer); without, the whole table.
        """
        request = f"TABLE {self._token(source, 'source')}"
        if dests:
            request += "".join(f" {self._token(d, 'destination')}"
                               for d in dests)
        head, lines = await self._call_bulk(request)
        if not head.startswith("OK table"):
            raise FederationError(
                f"backend {self.name}: {head}")
        out = {}
        for line in lines:
            parts = line.split()
            if len(parts) != 3:
                raise FederationError(
                    f"backend {self.name} protocol error: {line!r}")
            cost, name, route = parts
            if cost == "-":
                continue  # batched miss
            out[name] = (int(cost), route)
        return out

    async def state_costs(self, source: str, names=None
                          ) -> dict[str, int] | None:
        """Exact per-state costs by name (bulk ``COSTS``), or None
        when the backend serves a v1 snapshot (``ERR no-state-costs``)
        — callers fall back to printed record costs, exactly like an
        in-process v1 shard."""
        request = f"COSTS {self._token(source, 'source')}"
        if names:
            request += "".join(f" {self._token(n, 'name')}"
                               for n in names)
        head, lines = await self._call_bulk(request)
        if head.startswith("ERR no-state-costs"):
            return None
        if not head.startswith("OK costs"):
            raise FederationError(
                f"backend {self.name}: {head}")
        out = {}
        for line in lines:
            cost, _, name = line.partition(" ")
            if cost == "-":
                continue
            out[name] = int(cost)
        return out

    async def route(self, entry: str, target: str):
        """The whole in-shard lookup, dispatched to the daemon:
        ``SOURCE entry`` + ``ROUTE target`` on one connection.

        Returns ``(cost, relative template, matched key)`` — the
        daemon's suffix walk did the work — or None on ``ERR
        noroute``.
        """
        entry = self._token(entry, "entry host")
        target = self._token(target, "destination")
        reply = await self._call(f"ROUTE {target}", source=entry)
        if reply.startswith("ERR noroute"):
            return None
        parts = reply.split()
        if len(parts) != 5 or parts[0] != "OK":
            raise FederationError(
                f"backend {self.name}: {reply}")
        _, cost, matched, _route, address = parts
        # without a user the address IS the relative template
        return int(cost), address, matched

    async def exact(self, entry: str, target: str):
        """Exact-name lookup dispatched to the daemon:
        ``(cost, route)`` or None on a miss."""
        entry = self._token(entry, "entry host")
        target = self._token(target, "destination")
        reply = await self._call(f"EXACT {target}", source=entry)
        if reply.startswith("ERR noroute"):
            return None
        parts = reply.split()
        if len(parts) != 4 or parts[0] != "OK":
            raise FederationError(
                f"backend {self.name}: {reply}")
        return int(parts[1]), parts[3]

    async def reload(self, snapshot_path: str) -> str:
        """Forward a snapshot reload to the backend daemon; returns
        the daemon's ``OK reloaded ...`` reply (raises
        :class:`FederationError` on refusal).  A multi-worker backend
        (``serve --workers N``) acknowledges only after propagating
        the swap to its whole worker pool, so one forwarded RELOAD
        suffices no matter how many workers answer the address."""
        reply = await self._call(f"RELOAD {snapshot_path}")
        if not reply.startswith("OK reloaded"):
            raise FederationError(
                f"backend {self.name} refused reload: {reply}")
        return reply

    # -- reload push (NOTIFY) -------------------------------------------------

    async def subscribe_reloads(self, callback) -> bool:
        """Subscribe to the daemon's reload push channel.

        Opens a **dedicated** connection — never the pool and never
        the mux, since push frames are untagged and the pipelined mux
        treats any untagged frame as a framing violation — sends
        ``NOTIFY``, and spawns a listener task that calls
        ``callback(path)`` (a plain callable; exceptions are
        swallowed) for every ``NOTIFY reloaded <sources> <path>``
        frame the daemon pushes.  Returns True once subscribed, or
        False against a daemon that predates the verb (``ERR
        unknown-command``), leaving the caller on pull-only behavior.
        The listener resubscribes with backoff if the daemon
        restarts; :meth:`aclose` tears it down.
        """
        if self._notify_task is not None:
            return True
        conn = await self._open()
        try:
            reply = await asyncio.wait_for(conn.request("NOTIFY"),
                                           self.timeout)
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            conn.close()
            raise FederationError(
                f"backend {self.name} ({self.address}) notify "
                f"subscription failed: {exc}") from None
        if not reply.startswith("OK"):
            conn.close()
            if reply.startswith("ERR unknown-command"):
                return False
            raise FederationError(
                f"backend {self.name} refused notify: {reply}")
        self._notify_conn = conn
        self._notify_task = asyncio.get_running_loop().create_task(
            self._notify_loop(callback))
        return True

    async def _notify_loop(self, callback) -> None:
        """Listener body: deliver push frames, outlive restarts."""
        while not self._draining:
            conn = self._notify_conn
            if conn is None:
                return
            try:
                raw = await conn.reader.readline()
            except (ConnectionError, OSError):
                raw = b""
            if raw:
                parts = str(raw, "utf-8", "replace").strip() \
                    .split(None, 3)
                if len(parts) == 4 and parts[0] == "NOTIFY" \
                        and parts[1] == "reloaded":
                    self.notifies += 1
                    try:
                        callback(parts[3])
                    except Exception:
                        pass  # a broken callback never kills the loop
                continue
            # EOF or error: the daemon went away — resubscribe.
            conn.close()
            self._notify_conn = None
            delay = RECONNECT_DELAY
            while not self._draining:
                try:
                    conn = await self._open()
                    reply = await asyncio.wait_for(
                        conn.request("NOTIFY"), self.timeout)
                except (FederationError, ConnectionError, OSError,
                        asyncio.TimeoutError):
                    await asyncio.sleep(delay)
                    delay = min(delay * 2, RECONNECT_DELAY_MAX)
                    continue
                if reply.startswith("OK"):
                    self._notify_conn = conn
                    break
                conn.close()
                return  # verb refused after a restart: stop pushing

    def __repr__(self) -> str:
        return (f"ShardBackend({self.name!r}, {self.address!r}, "
                f"{self.state})")


class BackendShard:
    """A federation shard answered by a remote daemon process.

    Quacks like an in-process :class:`~repro.service.shard.Shard` —
    the same ownership, gateway, and async entry-query surface the
    :class:`~repro.service.shard.FederationView` stitches over — but
    every answer comes from the backend daemon: the index was fetched
    at attach time (bulk ``TABLE``), gateway legs are fetched batched
    and cached per entry (``TABLE``/``COSTS``), and the final in-shard
    lookup is a ``ROUTE``/``EXACT`` executed *by the daemon*, which is
    what actually shards the CPU.

    Immutable after :meth:`connect`, like every shard: the cached
    index describes the backend's snapshot as of attach time, and the
    federation's per-shard RELOAD re-connects a fresh instance.
    """

    #: Remote shards suspend on socket I/O: the stitched Dijkstra
    #: prefetches their answers speculatively (local shards answer in
    #: place and are never worth a task).
    remote = True

    def __init__(self, name: str, backend: ShardBackend,
                 index: list[tuple[str, bool]], version: int,
                 snapshot: str,
                 index_auto: SuffixAutomaton | None = None):
        self.name = name
        self.backend = backend
        #: the backend's ownership index as a ready-made suffix
        #: automaton when the daemon shipped its compiled ``DFSM``
        #: block (``TABLE --fsm``); None against pre-FSM daemons.
        self.index_automaton = index_auto
        self._index = list(index)
        self._sources = [n for n, is_domain in index if not is_domain]
        self._source_set = frozenset(self._sources)
        self._domains = [n for n, is_domain in index if is_domain]
        self._version = version
        self._snapshot = snapshot
        #: per-(entry, gate) leg cache: the leg tuple, or None for a
        #: confirmed miss.  Keyed per gate (not per requested subset)
        #: so it is bounded by entries x gateways and every repeat
        #: expansion hits, whatever subset the Dijkstra asks for.
        self._legs: dict[tuple[str, str], tuple[int, str] | None] = {}
        #: single-flight registry: (entry, gate) keys a fetch already
        #: has in flight, mapped to that fetch's completion future —
        #: concurrent lookups await it instead of multiplying the
        #: same TABLE/COSTS round trip.
        self._leg_pending: dict[tuple[str, str], asyncio.Future] = {}

    @classmethod
    async def connect(cls, name: str,
                      backend: ShardBackend) -> "BackendShard":
        """Assemble the shard from backend answers: one ``STATS`` for
        the format/snapshot identity, one bulk ``TABLE --fsm`` that
        ships the daemon's compiled ownership automaton verbatim (the
        index names and flags ride inside the block, so nothing is
        re-derived from dicts).  Pre-FSM daemons answer with an error
        for ``--fsm``; the shard falls back to the text ``TABLE``
        index and leaves :attr:`index_automaton` unset."""
        stats, blob = await asyncio.gather(backend.stats(),
                                           backend.index_fsm())
        auto = None
        if blob is None:
            index = await backend.routing_index()
        else:
            try:
                flat = FlatSuffixAutomaton(blob)
                index = [(n, bool(flags & NAME_F_DOMAIN))
                         for n, flags in flat.names()]
                auto = flat.inflate()
            except AutomatonError as exc:
                raise FederationError(
                    f"backend {name} ({backend.address}) sent a "
                    f"corrupt index automaton: {exc}") from None
        try:
            version = int(stats.get("format", ""))
        except ValueError:
            raise FederationError(
                f"backend {name} ({backend.address}) reported no "
                f"snapshot format in STATS") from None
        return cls(name, backend, index, version,
                   stats.get("snapshot", ""), index_auto=auto)

    # -- the Shard surface ----------------------------------------------------

    def sources(self) -> list[str]:
        """Hosts with route tables in the backend, sorted."""
        return list(self._sources)

    @property
    def source_set(self) -> frozenset:
        """The table-owning hosts as a set (gateway intersection)."""
        return self._source_set

    def domains(self) -> list[str]:
        """Sorted public domain names the backend's map declares."""
        return list(self._domains)

    @property
    def source_count(self) -> int:
        """Number of route tables behind the backend."""
        return len(self._sources)

    @property
    def path(self) -> str:
        """Where the shard's answers come from: the backend address
        (the remote snapshot path is in :attr:`snapshot`)."""
        return f"tcp://{self.backend.address}"

    @property
    def snapshot(self) -> str:
        """The backend daemon's snapshot path, as it reported it."""
        return self._snapshot

    @property
    def version(self) -> int:
        """The backend's snapshot format version (from STATS)."""
        return self._version

    def routing_index(self) -> list[tuple[str, bool]]:
        """The prefetched source/domain ownership index."""
        return list(self._index)

    def has_source(self, source: str) -> bool:
        """Whether the backend holds a table for ``source``."""
        return source in self._source_set

    def drop_cached_legs(self) -> None:
        """Forget every cached gateway leg.

        Called by the federation's forwarded-RELOAD path: the remote
        daemon swaps snapshots the moment it accepts the reload, so a
        lookup pinned to the outgoing view can cache legs from the
        *new* (or, after a rollback, the briefly-served) snapshot on
        this outgoing shard — clearing the cache keeps any such
        mixture from outliving the swap window.
        """
        self._legs.clear()

    # -- the async entry-query surface ----------------------------------------

    async def _fetch_legs(self, entry: str, fetch: list[str]) -> None:
        """One batched TABLE (+COSTS on v2) round trip for ``fetch``,
        filling the per-(entry, gate) cache — misses included."""
        if self._version >= 2:
            rows, costs = await asyncio.gather(
                self.backend.table_rows(entry, fetch),
                self.backend.state_costs(entry, fetch))
        else:
            rows = await self.backend.table_rows(entry, fetch)
            costs = None
        if costs is None:
            costs = {}
        for gate in fetch:
            hit = rows.get(gate)
            self._legs[(entry, gate)] = None if hit is None else \
                (costs.get(gate, hit[0]), hit[1])

    async def route_legs(self, entry: str,
                         gates: list[str]) -> dict[str, tuple[int, str]]:
        """Gateway legs out of ``entry``, one batched round trip.

        ``TABLE entry g1 g2 ...`` for the printed templates and (on a
        v2 backend, concurrently) ``COSTS entry g1 g2 ...`` for the
        exact per-state prices — the same cost selection an in-process
        shard makes.  Cached per ``(entry, gate)`` — misses included —
        and only the uncached gates ride the wire: the backend's
        snapshot is pinned for this shard's lifetime, so repeat
        expansions cost nothing whatever subset the stitch asks for.

        **Single-flight:** concurrent lookups asking for overlapping
        ``(entry, gate)`` keys share one in-flight fetch instead of
        multiplying identical backend round trips — the speculative
        stitch and every concurrent request coalesce here.
        """
        cache = self._legs
        pending = self._leg_pending
        while True:
            missing = [g for g in gates if (entry, g) not in cache]
            if not missing:
                break
            waits = {pending[(entry, g)] for g in missing
                     if (entry, g) in pending}
            fetch = [g for g in missing if (entry, g) not in pending]
            if fetch:
                done = asyncio.get_running_loop().create_future()
                for g in fetch:
                    pending[(entry, g)] = done
                try:
                    await self._fetch_legs(entry, fetch)
                finally:
                    for g in fetch:
                        pending.pop((entry, g), None)
                    # waiters re-check the cache; on a failed fetch
                    # they find the keys unclaimed and retry them
                    if not done.done():
                        done.set_result(None)
            elif waits:
                # wait(), not gather(): gather propagates a waiter's
                # cancellation into the shared in-flight future, so a
                # cancelled speculative stitch would poison the fetch
                # for every request coalesced on it (and the owner's
                # set_result above would then blow up on the
                # already-cancelled future)
                await asyncio.wait(waits)
        out = {}
        for gate in gates:
            leg = cache[(entry, gate)]
            if leg is not None:
                out[gate] = leg
        return out

    async def entry_resolve(self, entry: str, target: str):
        """The whole domain-suffix lookup, executed by the daemon:
        ``(cost, relative template, matched)`` or None on a miss."""
        return await self.backend.route(entry, target)

    async def entry_exact(self, entry: str, target: str):
        """Exact-name lookup executed by the daemon:
        ``(cost, route, target)`` or None on a miss."""
        hit = await self.backend.exact(entry, target)
        if hit is None:
            return None
        cost, route = hit
        return cost, route, target

    def __repr__(self) -> str:
        return (f"BackendShard({self.name!r}, {self.source_count} "
                f"sources, {self.path!r})")
