"""The generation-stamped result cache: caching as a resolver *layer*.

The pathalias tables are recomputed rarely but queried constantly —
the serving tier answers millions of lookups between map revisions,
yet every ``ROUTE``/``EXACT`` still walks the snapshot.  This module
makes caching a composable layer rather than a feature bolted onto
one surface:

* :class:`Generations` — per-shard generation tokens plus one
  composite *epoch*.  Invalidation is an O(1) counter bump, never a
  key scan: entries are stamped with the epoch at insert and a bump
  strands every older stamp.
* :class:`ResultCache` — a bounded LRU of generation-stamped lookup
  results, with *negative* results (unresolvable destinations) held
  under their own, separate capacity so a scan of garbage names can
  never evict the hot positive set.
* :class:`CachingResolver` — an implementation of the
  :class:`~repro.service.resolver.Resolver` protocol that wraps *any*
  inner resolver (an in-process :class:`~repro.service.store.\
SnapshotResolver`, a :class:`~repro.service.daemon.\
DaemonRouteDatabase` client, a :class:`~repro.service.shard.\
FederationResolver`, the mailer's in-memory
  :class:`~repro.mailer.routedb.RouteDatabase`) with one of these
  caches.

**What is cached.**  The relative-template form of a resolution (the
``user="%s"`` answer): exact and domain matches alike instantiate for
any later user by substituting the template's single ``%s``, so one
cached entry serves every user addressing the same ``(source, dest)``
pair.  Misses are cached too — as the *error* (class and message), so
a cached ``FederationError`` replays byte-identical to a computed one.

**Why stamps, not per-shard entry tags.**  A federation's stitched
answer can change when *any* shard reloads — a repriced shard the old
route never touched can now offer a cheaper gateway chain — so
entry-level dependency tracking cannot invalidate safely.  Instead
every bump (of any shard's token) advances the composite epoch, and
validity is one integer comparison; the per-shard tokens exist so the
swap paths can say *which* shard moved (and coalesce duplicate
notifications) while correctness rides the epoch.

**The insertion race.**  Results are computed against a pinned
snapshot/view, possibly across await points; an entry computed
against generation N must never be inserted as generation N+1.  The
discipline: read :attr:`ResultCache.epoch` at the same moment the
snapshot is pinned (no await between), compute, then insert with that
*stamp* — :meth:`ResultCache.put` drops the entry if the epoch moved.
The mutator's mirror obligation: bump *after* publishing the new
snapshot (and before acknowledging the reload), so anything stamped
with the new epoch was computed against the new data.

The dict-walk differential oracles are never cached:
:meth:`CachingResolver.resolve_with_cost_dict` bypasses the cache
unconditionally, and a service pinned to ``dispatch="dict"`` disables
its cache outright — an oracle that answered from a cache would be
comparing cache to cache.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import RouteError
from repro.service.resolver import Resolution

#: Positive-entry capacity a service cache defaults to (``serve
#: --cache SIZE`` overrides; ``--no-cache`` disables).
DEFAULT_CACHE_SIZE = 4096

#: The generation key local (single-snapshot) surfaces bump — there is
#: only one "shard" behind them.
LOCAL_GENERATION = "*"


def negative_capacity(size: int) -> int:
    """The default negative-side capacity for a positive capacity:
    a quarter of it, floored at 32 — big enough to absorb retry storms
    on dead names, small enough that garbage scans stay contained."""
    return max(32, size // 4)


class Generations:
    """Per-shard generation tokens plus the composite epoch.

    ``bump(shard)`` advances that shard's token *and* the epoch; cache
    entries are stamped with the epoch, so any bump invalidates every
    older entry in O(1) (stale entries are discarded lazily, on probe
    or LRU pressure — never scanned).
    """

    __slots__ = ("_tokens", "_epoch")

    def __init__(self) -> None:
        self._tokens: dict[str, int] = {}
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """The composite generation: advances on every bump."""
        return self._epoch

    def token(self, shard: str = LOCAL_GENERATION) -> int:
        """One shard's own generation token (0 if never bumped)."""
        return self._tokens.get(shard, 0)

    def bump(self, shard: str = LOCAL_GENERATION) -> int:
        """Advance ``shard``'s token and the epoch; returns the new
        epoch.  O(1) — this is the whole invalidation."""
        self._tokens[shard] = self._tokens.get(shard, 0) + 1
        self._epoch += 1
        return self._epoch


class ResultCache:
    """A bounded LRU of generation-stamped lookup results.

    Keys are whatever tuple the caller chooses — the services use
    ``(kind, source, dest)`` — and values are opaque to the cache.
    Negative results (cached errors) live in their own LRU with a
    separate, smaller capacity (:func:`negative_capacity` by default),
    so unresolvable-name scans compete only with each other.

    Counters (``hits``/``misses``/``invalidations``) are owned by the
    cache object, which outlives every snapshot swap — exactly the
    RELOAD-surviving discipline the services' other counters follow.
    """

    def __init__(self, size: int, negative_size: int | None = None,
                 generations: Generations | None = None):
        """``size`` bounds positive entries; ``negative_size`` bounds
        cached misses (default :func:`negative_capacity` of ``size``).
        A shared :class:`Generations` may be injected so several
        caches invalidate together."""
        if size < 1:
            raise ValueError(f"cache size {size}: need at least 1")
        self.size = size
        self.negative_size = (negative_capacity(size)
                              if negative_size is None else negative_size)
        self.generations = generations or Generations()
        self._pos: OrderedDict = OrderedDict()
        self._neg: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @property
    def epoch(self) -> int:
        """The composite generation entries are stamped with; read it
        when pinning the snapshot/view a result will be computed
        from, and hand it back to :meth:`put` as the stamp."""
        return self.generations.epoch

    def bump(self, shard: str = LOCAL_GENERATION) -> int:
        """Invalidate every current entry: O(1) generation bump of
        ``shard``'s token (no key scanning; stale entries are
        discarded lazily).  Returns the new epoch."""
        self.invalidations += 1
        return self.generations.bump(shard)

    def __len__(self) -> int:
        return len(self._pos) + len(self._neg)

    def _probe(self, store: OrderedDict, key, epoch: int):
        entry = store.get(key)
        if entry is None:
            return None
        if entry[0] != epoch:
            del store[key]  # stranded by a bump; reap on contact
            return None
        store.move_to_end(key)
        return entry

    def get(self, key):
        """``(negative, payload)`` for a live entry, else None.

        ``negative`` False: ``payload`` is whatever :meth:`put`
        stored.  ``negative`` True: ``payload`` is the
        ``(error class, message)`` pair :meth:`put_negative` stored.
        Counts a hit or a miss either way; a stamp-stranded entry is
        discarded and counted as a miss.
        """
        epoch = self.generations.epoch
        entry = self._probe(self._pos, key, epoch)
        if entry is not None:
            self.hits += 1
            return False, entry[1]
        entry = self._probe(self._neg, key, epoch)
        if entry is not None:
            self.hits += 1
            return True, entry[1]
        self.misses += 1
        return None

    def put(self, key, payload, stamp: int) -> bool:
        """Insert a positive entry stamped ``stamp``.

        ``stamp`` must be the epoch read when the computation pinned
        its snapshot; if a bump landed since, the entry describes a
        retired generation and is dropped (returns False).
        """
        if stamp != self.generations.epoch:
            return False
        self._neg.pop(key, None)
        self._pos[key] = (stamp, payload)
        self._pos.move_to_end(key)
        if len(self._pos) > self.size:
            self._pos.popitem(last=False)
        return True

    def put_negative(self, key, exc: RouteError, stamp: int) -> bool:
        """Insert a cached miss: the error's class and message, so a
        replay raises the same type with the same text (a
        ``FederationError`` must not come back as a plain noroute).
        Same stamp discipline as :meth:`put`; bounded by
        :attr:`negative_size`, never by the positive capacity.
        """
        if stamp != self.generations.epoch:
            return False
        self._pos.pop(key, None)
        self._neg[key] = (stamp, (type(exc), str(exc)))
        self._neg.move_to_end(key)
        if len(self._neg) > self.negative_size:
            self._neg.popitem(last=False)
        return True

    @staticmethod
    def raise_negative(payload):
        """Re-raise a cached miss: a fresh instance of the stored
        error class with the stored message."""
        cls, message = payload
        raise cls(message)

    def stats(self) -> dict:
        """Counter snapshot: the ``n_cache_*`` STATS keys' source."""
        return {"cache": str(self.size),
                "n_cache_hits": str(self.hits),
                "n_cache_misses": str(self.misses),
                "n_cache_invalidations": str(self.invalidations)}


def cache_stats_tokens(cache: ResultCache | None) -> str:
    """The ``cache=``/``n_cache_*`` STATS tokens — one formatter used
    by both daemons so the wire keys cannot drift; a disabled cache
    reports ``cache=0`` with zeroed counters.  The ``n_`` prefix is
    what makes the counters pool-aggregated: multi-worker STATS sums
    every ``n_`` key across workers."""
    stats = cache.stats() if cache is not None else {
        "cache": "0", "n_cache_hits": "0", "n_cache_misses": "0",
        "n_cache_invalidations": "0"}
    return " ".join(f"{key}={value}" for key, value in stats.items())


def instantiate(template: Resolution, user: str) -> Resolution:
    """A cached relative-template resolution, re-addressed for
    ``user`` — the template's single ``%s`` is the substitution
    point, exactly as when stitched templates concatenate."""
    if user == "%s":
        return template
    return Resolution(
        target=template.target, matched=template.matched,
        route=template.route,
        address=template.address.replace("%s", user, 1))


class CachingResolver:
    """Any :class:`~repro.service.resolver.Resolver`, wrapped in a
    generation-stamped result cache.

    Composes over every lookup surface — the four the serving tier
    ships and anything else satisfying the protocol — without the
    inner surface knowing it is cached.  The wrapper caches the
    relative-template form and instantiates per user, so one entry
    serves every user of a pair; misses are cached as their error
    (bounded separately — see :class:`ResultCache`).

    Invalidation: :meth:`bump` — O(1), called by whoever swaps the
    data under the inner resolver.  An inner surface that is immutable
    (a pinned snapshot table, a bound federation view, the in-memory
    mailer database) never needs it.

    The differential-oracle alias :meth:`resolve_with_cost_dict`
    bypasses the cache *unconditionally*, delegating to the inner
    surface's own oracle — fuzz suites comparing engine to oracle
    must never compare cache to cache.
    """

    def __init__(self, inner, size: int = DEFAULT_CACHE_SIZE,
                 cache: ResultCache | None = None):
        """Wrap ``inner``; ``cache`` (when given) overrides ``size``
        and may be shared across wrappers so one bump invalidates
        all of them."""
        self.inner = inner
        self.cache = cache if cache is not None else ResultCache(size)

    def bump(self, shard: str = LOCAL_GENERATION) -> int:
        """Invalidate everything cached so far (O(1) epoch bump)."""
        return self.cache.bump(shard)

    def _resolve_template(self, target: str) -> tuple[int, Resolution]:
        """The cached ``user="%s"`` resolution of ``target``."""
        cache = self.cache
        key = ("R", target)
        stamp = cache.epoch
        hit = cache.get(key)
        if hit is not None:
            negative, payload = hit
            if negative:
                cache.raise_negative(payload)
            return payload
        try:
            result = self.inner.resolve_with_cost(target, "%s")
        except RouteError as exc:
            cache.put_negative(key, exc, stamp)
            raise
        cache.put(key, result, stamp)
        return result

    def resolve_with_cost(self, target: str, user: str = "%s"
                          ) -> tuple[int, Resolution]:
        """Cached domain-suffix lookup: ``(cost, resolution)``,
        byte-identical to the inner surface's answer."""
        if "%s" in target:  # cannot template-substitute such a name
            return self.inner.resolve_with_cost(target, user)
        cost, template = self._resolve_template(target)
        return cost, instantiate(template, user)

    def resolve(self, target: str, user: str = "%s") -> Resolution:
        """Cached domain-suffix lookup, resolution only."""
        return self.resolve_with_cost(target, user)[1]

    def resolve_bang(self, bang_address: str) -> Resolution:
        """Resolve ``host!rest`` forms through the cache."""
        if "!" not in bang_address:
            raise RouteError(
                f"address {bang_address!r} names no user (expected "
                f"target!user)")
        target, user = bang_address.split("!", 1)
        return self.resolve(target, user)

    def resolve_with_cost_dict(self, target: str, user: str = "%s"
                               ) -> tuple[int, Resolution]:
        """The differential-oracle path: **bypasses the cache
        unconditionally**, delegating to the inner surface's own
        dict-walk oracle (or its plain resolve where none exists) —
        a poisoned or stale cache entry is invisible here."""
        oracle = getattr(self.inner, "resolve_with_cost_dict", None)
        if oracle is None:
            oracle = self.inner.resolve_with_cost
        return oracle(target, user)

    def lookup(self, name: str) -> tuple[int, str] | None:
        """Cached exact-name lookup (None on a miss, like the inner
        surface); only available when the inner surface has it."""
        cache = self.cache
        key = ("E", name)
        stamp = cache.epoch
        hit = cache.get(key)
        if hit is not None:
            negative, payload = hit
            return None if negative else payload
        result = self.inner.lookup(name)
        if result is None:
            cache.put_negative(
                key, RouteError(f"no route to {name!r}"), stamp)
        else:
            cache.put(key, result, stamp)
        return result

    def source_table(self) -> str | None:
        """The inner surface's bound source."""
        return self.inner.source_table()

    def stats(self) -> dict:
        """The inner surface's counters plus the cache's own."""
        out = dict(self.inner.stats())
        out.update(self.cache.stats())
        return out

    def __repr__(self) -> str:
        return (f"CachingResolver({self.inner!r}, "
                f"size={self.cache.size})")
