"""The route lookup daemon: snapshots served over a line protocol.

The paper places the pathalias query inside the delivery agent; at
mapping-project scale the query belongs in a long-running process that
many delivery agents share.  This daemon serves a
:class:`~repro.service.store.SnapshotReader` over TCP, one UTF-8 line
per request:

========================  ===================================================
``ROUTE <dest> [user]``   domain-suffix search from the connection's
                          source; replies ``OK <cost> <matched> <route>
                          <address>``.  Without a user the address is
                          the relative template (``%s`` left in place).
``EXACT <dest>``          exact-name lookup only; ``OK <cost> <dest>
                          <route>``.
``SOURCE <host>``         switch this connection's source table.
``TABLE [src] [dest...]`` bulk export: the routing index, a whole
                          source table, or batched exact lookups —
                          multi-line replies a federation front end
                          assembles its remote view from.
``COSTS <src> [name...]`` bulk per-state costs (format v2) by node
                          name — exact gateway-leg pricing over the
                          wire.
``RELOAD <snapshot>``     open a new snapshot off-loop and hot-swap it;
                          in-flight lookups keep the old reader (the
                          old mmap stays valid until its last view
                          drains) so no request is ever dropped or
                          mixed mid-swap.  In multi-worker mode the
                          swap is propagated to every sibling worker
                          before the OK comes back.
``WRELOAD <snapshot>``    worker-local reload: same swap, never
                          re-broadcast — it *is* the broadcast RELOAD
                          sends to sibling workers.
``NOTIFY``                subscribe this connection to reload pushes:
                          after ``OK notify 1``, every later snapshot
                          swap writes an unsolicited ``NOTIFY reloaded
                          <sources> <path>`` frame here.  Dedicate the
                          connection — push frames are untagged and
                          would poison pipelined framing.
``PIPELINE``              capability probe: ``OK pipeline 1`` means the
                          daemon accepts *tagged* requests (below); an
                          older daemon answers ``ERR unknown-command``
                          and the client stays lockstep.
``STATS``                 one ``key=value`` line of counters; in
                          multi-worker mode the *aggregate* across all
                          workers, plus ``workers=`` and per-worker
                          health tokens.
``WSTATS``                this one worker's raw, unaggregated counters
                          (what STATS aggregates over the control
                          channel).
``QUIT``                  close the connection.
========================  ===================================================

Errors come back as ``ERR <code> <detail>``; the connection survives
them.  All daemon state lives in :class:`RouteService`, which is also
directly usable in-process (the benchmark drives it without sockets).

**Pipelining.**  A request line may be prefixed with a tag —
``@<tag> ROUTE topaz`` — in which case the client may have many
requests in flight on one connection and replies may return out of
order; *every* reply frame (including each continuation line of a
bulk ``TABLE``/``COSTS`` reply) carries the same ``@<tag> `` prefix,
so interleaved bulk replies reassemble by tag.  Untagged requests
keep the exact lockstep one-in/one-out behavior, so old clients are
unchanged byte-for-byte; see ``docs/protocol.md`` for the grammar.

**Multi-worker serving.**  ``pathalias serve --workers N``
(:func:`run_multi_daemon`) forks N worker processes that each
``SO_REUSEPORT``-listen on the same address — the kernel load-balances
connections across them — and each mmap the same snapshot file, so N
workers share *one* page-cache copy instead of holding N parsed ones.
Every worker also runs a loopback **control listener** speaking this
same protocol; the workers know each other's control ports, which is
how ``STATS`` aggregates every worker's counters (via ``WSTATS``) and
how ``RELOAD`` swaps the snapshot on every worker (via ``WRELOAD``)
before acknowledging.

:class:`DaemonRouteDatabase` is the synchronous client side: it speaks
the same protocol and quacks like
:class:`~repro.mailer.routedb.RouteDatabase`, so a
:class:`~repro.mailer.router.MailRouter` can route live traffic
through a daemon instead of an in-memory table.
"""

from __future__ import annotations

import asyncio
import base64
import multiprocessing
import signal
import socket
import sys
import time

from repro.errors import RouteError
from repro.service.cache import (DEFAULT_CACHE_SIZE, ResultCache,
                                 cache_stats_tokens, instantiate)
from repro.service.resolver import Resolution
from repro.service.store import SnapshotError, SnapshotReader

#: Reconnect backoff shared by every client of the line protocol
#: (the sync :class:`DaemonRouteDatabase` and the async
#: :class:`repro.service.backend.ShardBackend`): first retry delay,
#: doubling per attempt up to the cap.
RECONNECT_DELAY = 0.02
RECONNECT_DELAY_MAX = 0.25

#: Cap on concurrently *executing* tagged requests per connection: a
#: client that floods one connection with tagged work queues here
#: instead of spawning an unbounded task set.  Requests past the cap
#: are still read and answered — just not all at once.
MAX_INFLIGHT = 128


def wire_token(value: str, what: str) -> str:
    """Reject names that cannot ride the space-delimited wire.

    The one validator every client uses (sync and async), so the
    token rules cannot drift between them.
    """
    if not value or any(ch.isspace() for ch in value):
        raise RouteError(f"{what} {value!r} does not fit the "
                         f"daemon's whitespace-delimited protocol")
    return value


class LineService:
    """The shared newline-delimited connection loop.

    Subclasses implement :meth:`handle_line` (one request line in, one
    reply line out) and :meth:`initial_state` (per-connection mutable
    state, e.g. the chosen source table).  Both the single-snapshot
    :class:`RouteService` and the federated
    :class:`~repro.service.federation.FederationService` serve through
    this loop, so :func:`serve` works for either.

    The loop also owns the **per-verb counters**: every request line
    whose verb appears in the subclass's ``VERBS`` table bumps
    ``verb_counts[verb]`` before dispatch.  The counters live on the
    service — not on any snapshot or view — so a ``RELOAD`` (which
    swaps those) can never reset them; ``STATS`` reports them as
    ``n_<verb>`` keys and the reload-under-load tests assert they
    stay consistent across swaps.
    """

    #: Protocol verbs (subclasses override; used to seed verb_counts).
    VERBS: tuple = ()

    #: Verbs handled *inline in read order* even when tagged, because
    #: they mutate connection or service state (or close the
    #: connection): a pipelined ``SOURCE`` deterministically governs
    #: exactly the tagged requests read after it, and a tagged
    #: ``RELOAD``/``ATTACH``/``DETACH`` swap is never reordered
    #: against the requests around it on this connection.
    INLINE_VERBS = frozenset({"SOURCE", "RELOAD", "WRELOAD", "NOTIFY",
                              "ATTACH", "DETACH", "PIPELINE", "QUIT"})

    def __init__(self, require_format: int | None = None) -> None:
        self.connections = 0
        self.verb_counts = {verb: 0 for verb in self.VERBS}
        #: Requests answered with an ``ERR`` reply (malformed lines,
        #: bad encodings, misses, refused reloads, ...).  Service-owned
        #: like the verb counters: reported as ``n_errors`` by STATS
        #: and never reset by a RELOAD/ATTACH/DETACH.
        self.errors = 0
        #: Tagged (pipelined) requests received, across connections —
        #: the ``n_pipelined`` STATS key, so an operator can see
        #: whether clients actually negotiated pipelining.
        self.pipelined = 0
        #: Concurrently executing tagged requests right now, and the
        #: high-water mark since start (the ``inflight_hwm`` STATS
        #: key): the observable pipeline depth.
        self.inflight = 0
        self.inflight_hwm = 0
        #: Pinned snapshot format version (``--format``): services
        #: check it against every snapshot they open — at startup and
        #: on every later RELOAD/ATTACH — via :meth:`_check_format`.
        self.require_format = require_format

    def _check_format(self, reader) -> None:
        """Refuse a snapshot whose format differs from the pin.

        Duck-typed on ``version``/``path``: callers hand it a
        :class:`~repro.service.store.SnapshotReader`, a local
        :class:`~repro.service.shard.Shard`, or a remote
        :class:`~repro.service.backend.BackendShard` — the pin applies
        identically to all three.
        """
        if self.require_format is not None \
                and reader.version != self.require_format:
            raise SnapshotError(
                f"{reader.path}: snapshot format v{reader.version}, "
                f"but --format {self.require_format} was required")

    def initial_state(self) -> dict:
        """Fresh per-connection state for :meth:`handle_line`."""
        return {}

    def connection_closed(self, state: dict) -> None:
        """Hook: the connection owning ``state`` is gone.

        The base loop calls this exactly once per connection, from its
        teardown path; subclasses use it to drop per-connection
        registrations (a NOTIFY subscription, say) so a dead socket
        never accumulates push targets.
        """

    def verb_stats(self) -> str:
        """The ``n_<verb>=count`` tokens for :meth:`stats_line` — one
        formatter so the two daemons' wire keys cannot drift — plus
        the service-owned ``n_errors`` counter."""
        tokens = [f"n_{verb.lower()}={count}"
                  for verb, count in self.verb_counts.items()]
        tokens.append(f"n_errors={self.errors}")
        tokens.append(f"n_pipelined={self.pipelined}")
        tokens.append(f"inflight_hwm={self.inflight_hwm}")
        return " ".join(tokens)

    async def handle_line(self, line: str, state: dict) -> str | None:
        """One request in, one reply line out (None closes)."""
        raise NotImplementedError

    @staticmethod
    async def _read_request_line(reader: asyncio.StreamReader
                                 ) -> tuple[bytes, bool]:
        """One request line, with deterministic oversized-line
        handling: ``(line bytes, overflowed)``.

        A line that outgrows the stream's frame limit is discarded
        *through its terminating newline* — however many buffer
        refills that takes — and reported as a single overflow, so a
        request/reply-lockstep client sees exactly one ``ERR`` for it
        and the connection's framing stays aligned.  (Plain
        ``readline`` would clear only the buffered prefix and then
        serve the line's tail as phantom extra requests.)
        """
        try:
            return await reader.readuntil(b"\n"), False
        except asyncio.IncompleteReadError as exc:
            return exc.partial, False  # EOF (maybe a final bare line)
        except asyncio.LimitOverrunError as exc:
            consumed = exc.consumed
            while True:
                if consumed:
                    await reader.readexactly(consumed)
                try:
                    await reader.readuntil(b"\n")
                    return b"", True
                except asyncio.IncompleteReadError:
                    return b"", True  # EOF amid the junk
                except asyncio.LimitOverrunError as again:
                    consumed = again.consumed

    @staticmethod
    def _tagged_frames(tag: str, reply: str) -> bytes:
        """Encode ``reply`` with every frame carrying ``@<tag> `` —
        bulk replies are newline-joined strings, and each of their
        lines is its own wire frame, so each gets the prefix."""
        return "".join(f"@{tag} {frame}\n"
                       for frame in reply.split("\n")).encode("utf-8")

    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """Serve one client connection until QUIT or disconnect.

        A malformed request — non-UTF-8 bytes, or a line so long the
        stream's frame limit cuts it off — errors *that one request*
        with a single protocol ``ERR`` reply, counted in ``n_errors``;
        the connection, its framing, and every service-owned counter
        survive it untouched.

        **Tagged requests** (``@<tag> VERB ...``) run concurrently:
        each spawns a per-request task over a *snapshot* of the
        connection state, its reply frames written atomically under a
        per-connection lock, so replies may interleave and return out
        of order — the tag is the correlation.  Verbs that mutate
        connection or service state (:attr:`INLINE_VERBS`) are applied
        inline in read order even when tagged, which is what makes
        ``@1 SOURCE a`` / ``@2 ROUTE x`` deterministic: the SOURCE is
        in effect — and its reply on the wire — before the ROUTE is
        even read.  Untagged requests keep the strict lockstep
        behavior, including draining all in-flight tagged work first,
        so the two styles serialize cleanly if a client mixes them.
        """
        self.connections += 1
        state = self.initial_state()
        wlock = asyncio.Lock()
        gate = asyncio.Semaphore(MAX_INFLIGHT)
        tasks: set = set()

        async def write_frames(data: bytes) -> None:
            async with wlock:
                writer.write(data)
                await writer.drain()

        # NOTIFY subscriptions push unsolicited frames through this
        # same locked writer, so a push can interleave *between*
        # reply frames but never tear one mid-line.
        state["#push"] = write_frames

        async def answer_tagged(tag: str, line: str,
                                snapshot: dict) -> None:
            self.inflight += 1
            self.inflight_hwm = max(self.inflight_hwm, self.inflight)
            try:
                reply = await self.handle_line(line, snapshot)
            finally:
                self.inflight -= 1
                gate.release()
            if reply is None:  # unreachable: QUIT is inline
                reply = "OK bye"
            if reply.startswith("ERR"):
                self.errors += 1
            await write_frames(self._tagged_frames(tag, reply))

        async def drain_tagged() -> None:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)

        try:
            while True:
                raw, overflowed = await self._read_request_line(reader)
                if overflowed:
                    self.errors += 1
                    await write_frames(
                        b"ERR overflow request line exceeds "
                        b"the frame limit\n")
                    continue
                if not raw:
                    break
                try:
                    line = raw.decode("utf-8").strip()
                except UnicodeDecodeError:
                    self.errors += 1
                    await write_frames(b"ERR encoding expected UTF-8\n")
                    continue
                tag = None
                if line.startswith("@"):
                    first, _, body = line.partition(" ")
                    tag, line = first[1:], body.strip()
                    if not tag:
                        self.errors += 1
                        await write_frames(
                            b"ERR usage tagged request needs a "
                            b"non-empty tag: @<tag> VERB ...\n")
                        continue
                    self.pipelined += 1
                verb = line.split(None, 1)[0].upper() if line else ""
                if verb in self.verb_counts:
                    self.verb_counts[verb] += 1
                if tag is not None and line \
                        and verb not in self.INLINE_VERBS:
                    await gate.acquire()
                    task = asyncio.get_running_loop().create_task(
                        answer_tagged(tag, line, dict(state)))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                    continue
                if tag is None:
                    # Untagged lockstep: one in, one out, in order —
                    # after any in-flight tagged work has drained, so
                    # a client that mixes styles still sees strictly
                    # ordered lockstep replies.
                    await drain_tagged()
                reply = await self.handle_line(line, state)
                if reply is None:
                    await drain_tagged()
                    data = b"OK bye\n" if tag is None else \
                        self._tagged_frames(tag, "OK bye")
                    await write_frames(data)
                    break
                if reply.startswith("ERR"):
                    self.errors += 1
                data = reply.encode("utf-8") + b"\n" if tag is None \
                    else self._tagged_frames(tag, reply)
                await write_frames(data)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server teardown while this handler awaited a read; the
            # connection is finished either way — end quietly instead
            # of logging cancellation noise through the task callback.
            pass
        finally:
            self.connection_closed(state)
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            # close() alone: awaiting wait_closed() here would raise
            # CancelledError noise when the loop tears down while a
            # handler drains, and the transport closes regardless.
            writer.close()


class RouteService(LineService):
    """Daemon state: the current snapshot reader plus counters.

    Swapping snapshots is a single attribute assignment of an immutable
    reader, so concurrent lookups need no locking — each request grabs
    the reader reference once and works against that snapshot for its
    whole lifetime.
    """

    #: The verbs this daemon's line protocol implements, in the order
    #: ``docs/protocol.md`` documents them (the CI docs job checks the
    #: page against this table).  TABLE and COSTS are the *bulk*
    #: verbs a federation front end assembles its remote view from;
    #: WRELOAD and WSTATS are the worker-coordination halves of RELOAD
    #: and STATS (present — and harmless — in single-worker mode too).
    VERBS = ("ROUTE", "EXACT", "SOURCE", "TABLE", "COSTS", "RELOAD",
             "WRELOAD", "NOTIFY", "PIPELINE", "STATS", "WSTATS",
             "QUIT")

    #: STATS counters summed across workers in an aggregated reply
    #: (the ``n_<verb>``/``n_errors``/``n_pipelined`` keys are summed
    #: too, matched by their ``n_`` prefix).
    STATS_SUM_KEYS = frozenset({"lookups", "hits", "misses", "reloads",
                                "notify_pushes", "connections"})

    def __init__(self, snapshot_path: str | None = None,
                 reader: SnapshotReader | None = None,
                 default_source: str | None = None,
                 require_format: int | None = None,
                 dispatch: str = "fsm",
                 cache_size: int | None = None):
        """``require_format`` pins the snapshot format version: the
        initial snapshot *and every later RELOAD* must match, so an
        operator who depends on v2-only data (per-state costs) cannot
        be silently downgraded mid-flight.  ``dispatch`` selects the
        suffix-search engine — ``fsm`` (the compiled automaton,
        default) or ``dict`` (the original walk, kept as a live
        differential oracle; ``serve --dispatch dict``).
        ``cache_size`` bounds the generation-stamped result cache
        (``serve --cache``): None takes the default, 0 disables
        (``--no-cache``), and ``dict`` dispatch forces it off — the
        dict walk *is* the differential oracle, and an oracle that
        answered from a cache would compare cache to cache."""
        super().__init__(require_format=require_format)
        self.dispatch = dispatch
        if dispatch == "dict":
            cache_size = 0
        size = DEFAULT_CACHE_SIZE if cache_size is None else cache_size
        #: The generation-stamped result cache (None when disabled).
        #: Service-owned like every counter here: a RELOAD swaps the
        #: reader and bumps the cache's generation, but the cache
        #: object — and its hit/miss/invalidation counters — survive.
        self.cache: ResultCache | None = \
            ResultCache(size) if size > 0 else None
        if reader is None:
            if snapshot_path is None:
                raise SnapshotError("RouteService needs a snapshot "
                                    "path or an open reader")
            reader = SnapshotReader.open(snapshot_path)
        self._check_format(reader)
        self.reader = reader
        if default_source is None:
            sources = reader.sources()
            if not sources:
                raise SnapshotError(f"{reader.path}: snapshot has no "
                                    f"source tables")
            default_source = sources[0]
        elif not reader.has_source(default_source):
            raise SnapshotError(
                f"{reader.path}: no table for source "
                f"{default_source!r}")
        self.default_source = default_source
        self.started = time.monotonic()
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        #: Automaton dispatches that matched / missed — service-owned
        #: like every counter here, so RELOAD (which swaps readers and
        #: their compiled automata) never resets them.  Both stay 0 in
        #: ``dict`` mode, which is how an operator reads the active
        #: engine off STATS (`dispatch=` says it explicitly too).
        self.fsm_hits = 0
        self.fsm_misses = 0
        self.reloads = 0
        self._reload_lock = asyncio.Lock()
        #: Per-connection push callables registered by the NOTIFY
        #: verb: every snapshot swap writes an unsolicited ``NOTIFY
        #: reloaded ...`` frame to each.  Entries are the connection's
        #: locked frame writer, discarded by :meth:`connection_closed`
        #: (or on the first failed push).
        self.notify_subscribers: set = set()
        #: Reload-push frames successfully written to subscribers —
        #: the ``notify_pushes`` STATS key.
        self.notify_pushes = 0
        self._notify_tasks: set = set()
        #: This process's worker id (0 outside multi-worker mode) and
        #: the control-channel map ``{worker_id: loopback port}`` over
        #: *all* workers, itself included.  An empty map means
        #: single-worker mode: STATS answers locally and RELOAD
        #: broadcasts to nobody.
        self.worker_id = 0
        self.worker_peers: dict[int, int] = {}

    # -- operations -----------------------------------------------------------

    def _resolve_pinned(self, reader: SnapshotReader, source: str,
                        target: str, user: str | None
                        ) -> tuple[int, Resolution]:
        """The uncached suffix search against one pinned reader,
        counting lookups/hits/misses and the dispatch counters."""
        self.lookups += 1
        fsm = self.dispatch != "dict"
        try:
            # The cached SnapshotTable *is* the in-process Resolver
            # surface; no per-request wrapper on the hot path.  The
            # suffix search runs through the table's compiled
            # automaton, or the original dict walk in ``dict`` mode.
            table = reader.table(source)
            if fsm:
                cost, resolution = table.resolve_with_cost(
                    target, "%s" if user is None else user)
            else:
                cost, resolution = table.resolve_with_cost_dict(
                    target, "%s" if user is None else user)
        except RouteError:
            self.misses += 1
            if fsm:
                self.fsm_misses += 1
            raise
        except SnapshotError:
            # the connection's source table vanished in a RELOAD
            self.misses += 1
            raise
        self.hits += 1
        if fsm:
            self.fsm_hits += 1
        return cost, resolution

    def lookup(self, source: str, target: str,
               user: str | None = None) -> tuple[int, Resolution]:
        """Suffix-search ``target`` in ``source``'s table.

        Returns ``(cost, resolution)``; raises
        :class:`~repro.errors.RouteError` on a miss.  Counts both ways.

        With the result cache on, the relative-template resolution of
        ``(source, target)`` is cached generation-stamped and
        instantiated per user, so repeat traffic on a hot pair skips
        the suffix walk entirely; a cache hit bumps ``lookups`` and
        ``hits`` (or ``misses`` for a cached noroute) but *not* the
        ``fsm_*`` dispatch counters — no dispatch ran.  The stamp is
        read before the reader is pinned, and :meth:`reload` bumps
        only after publishing its swap, so an entry stamped current
        was computed against the current snapshot.
        """
        cache = self.cache
        if cache is None or "%s" in target:
            # a literal %s in the name cannot template-substitute
            return self._resolve_pinned(self.reader, source, target,
                                        user)
        stamp = cache.epoch   # read the stamp, *then* pin: a swap
        reader = self.reader  # between the two strands the stamp
        key = ("R", source, target)
        hit = cache.get(key)
        if hit is not None:
            self.lookups += 1
            negative, payload = hit
            if negative:
                self.misses += 1
                cache.raise_negative(payload)
            self.hits += 1
            cost, template = payload
            return cost, instantiate(template,
                                     "%s" if user is None else user)
        try:
            cost, template = self._resolve_pinned(reader, source,
                                                  target, None)
        except SnapshotError:
            raise  # never cached: the source may reappear on reload
        except RouteError as exc:
            cache.put_negative(key, exc, stamp)
            raise
        cache.put(key, (cost, template), stamp)
        return cost, instantiate(template,
                                 "%s" if user is None else user)

    def _exact_pinned(self, reader: SnapshotReader, source: str,
                      target: str) -> tuple[int, str]:
        """The uncached exact-name lookup against one pinned reader."""
        self.lookups += 1
        try:
            hit = reader.table(source).lookup(target)
        except SnapshotError:
            self.misses += 1
            raise
        if hit is None:
            self.misses += 1
            raise RouteError(f"no route to {target!r}")
        self.hits += 1
        return hit

    def exact(self, source: str, target: str) -> tuple[int, str]:
        """Exact-name lookup in ``source``'s table: ``(cost, route)``.

        Cached under its own key kind (``EXACT`` and ``ROUTE`` answers
        for one pair differ), with the same stamp discipline as
        :meth:`lookup`."""
        cache = self.cache
        if cache is None:
            return self._exact_pinned(self.reader, source, target)
        stamp = cache.epoch
        reader = self.reader
        key = ("E", source, target)
        hit = cache.get(key)
        if hit is not None:
            self.lookups += 1
            negative, payload = hit
            if negative:
                self.misses += 1
                cache.raise_negative(payload)
            self.hits += 1
            return payload
        try:
            result = self._exact_pinned(reader, source, target)
        except SnapshotError:
            raise
        except RouteError as exc:
            cache.put_negative(key, exc, stamp)
            raise
        cache.put(key, result, stamp)
        return result

    def table_reply(self, args: list[str]) -> str:
        """The TABLE bulk verb: a multi-line data export.

        Four forms, all answered from one pinned snapshot:

        * ``TABLE`` — the routing index (``OK index <n>`` then one
          ``S <name>`` / ``D <name>`` line per source/domain);
        * ``TABLE --fsm`` — the routing index as a precompiled
          suffix-automaton block (``OK fsm <n>`` then n base64 lines
          of the serialized ``DFSM`` bytes, names embedded): the
          front end inflates it in one linear pass instead of
          re-deriving dicts.  An older daemon answers this form ``ERR
          unknown-source --fsm`` (it parses ``--fsm`` as a source
          name), which clients treat as "fall back to ``TABLE``";
        * ``TABLE <source>`` — the whole route table (``OK table <n>``
          then ``<cost> <name> <route>`` lines in name order);
        * ``TABLE <source> <dest>...`` — batched exact lookups, one
          line per requested destination (``- <dest> -`` on a miss).

        This is what lets a federation front end build its ownership
        index and fetch a whole gateway-leg set in one round trip
        instead of one ``EXACT`` per destination.
        """
        reader = self.reader  # pin one snapshot for the whole reply
        if not args:
            lines = [f"{'D' if is_domain else 'S'} {name}"
                     for name, is_domain in reader.routing_index()]
            return "\n".join([f"OK index {len(lines)}"] + lines)
        if args[0] == "--fsm":
            if len(args) > 1:
                return "ERR usage TABLE [--fsm | <source> [dest ...]]"
            blob = base64.b64encode(
                reader.index_fsm_bytes()).decode("ascii")
            lines = [blob[i:i + 76] for i in range(0, len(blob), 76)]
            return "\n".join([f"OK fsm {len(lines)}"] + lines)
        source, dests = args[0], args[1:]
        if not reader.has_source(source):
            return f"ERR unknown-source {source}"
        table = reader.table(source)
        if dests:
            lines = []
            for dest in dests:
                hit = table.lookup(dest)
                lines.append(f"- {dest} -" if hit is None
                             else f"{hit[0]} {dest} {hit[1]}")
        else:
            lines = [f"{cost} {name} {route}"
                     for cost, name, route in table.records()]
        return "\n".join([f"OK table {len(lines)}"] + lines)

    def costs_reply(self, args: list[str]) -> str:
        """The COSTS bulk verb: exact per-state costs by node name.

        ``COSTS <source> [name ...]`` answers ``OK costs <n>`` then
        one ``<cost> <name>`` line per node (``- <name>`` for an
        unreached or unknown name when names were given; without
        names, every reachable public node).  Costs come from the
        format-v2 ``STAT`` records — exact mapper state costs, keyed
        by node, covering nets/domains and hosts the route records
        display under domain-qualified names.  A v1 snapshot answers
        ``ERR no-state-costs``, and clients fall back to the printed
        record costs, exactly as an in-process v1 shard does.
        """
        reader = self.reader
        if not args:
            return "ERR usage COSTS <source> [name ...]"
        source, names = args[0], args[1:]
        if not reader.has_source(source):
            return f"ERR unknown-source {source}"
        if not reader.has_state_costs:
            return (f"ERR no-state-costs format v{reader.version} "
                    f"snapshots store no per-state records")
        if names:
            lines = []
            for name in names:
                cost = reader.state_cost(source, name)
                lines.append(f"- {name}" if cost is None
                             else f"{cost} {name}")
        else:
            table = reader.table(source)
            by_name = reader.decode_graph().cid_by_name
            lines = []
            for name in sorted(by_name):
                cost = table.state_cost_of(by_name[name])
                if cost is not None:
                    lines.append(f"{cost} {name}")
        return "\n".join([f"OK costs {len(lines)}"] + lines)

    async def reload(self, snapshot_path: str) -> SnapshotReader:
        """Open a new snapshot off the event loop and swap it in.

        The old reader stays valid for requests that already hold it;
        a failed open leaves the current snapshot serving.
        """
        async with self._reload_lock:
            reader = await asyncio.to_thread(SnapshotReader.open,
                                             snapshot_path)
            self._check_format(reader)
            if not reader.has_source(self.default_source):
                sources = reader.sources()
                if not sources:
                    raise SnapshotError(
                        f"{reader.path}: snapshot has no source tables")
                self.default_source = sources[0]
            self.reader = reader
            self.reloads += 1
            if self.cache is not None:
                # Bump *after* publishing the swap and *before* the
                # caller acks: no post-ack request can be answered
                # from a pre-swap cache entry.
                self.cache.bump()
            self._push_reloaded(reader)
            return reader

    def _push_reloaded(self, reader: SnapshotReader) -> None:
        """Fan a ``NOTIFY reloaded`` push frame out to subscribers.

        Fire-and-forget per subscriber: pushes ride each target
        connection's own locked writer as background tasks, so a slow
        or dead subscriber never stalls the reload (or the other
        subscribers).  Runs for WRELOAD too — in multi-worker mode
        every worker notifies its own connections after its local
        swap, which is exactly the pool-wide fan-out an operator
        expects from one RELOAD.
        """
        if not self.notify_subscribers:
            return
        frame = (f"NOTIFY reloaded {reader.source_count} "
                 f"{reader.path}\n").encode("utf-8")
        loop = asyncio.get_running_loop()
        for push in tuple(self.notify_subscribers):
            task = loop.create_task(self._push_one(push, frame))
            self._notify_tasks.add(task)
            task.add_done_callback(self._notify_tasks.discard)

    async def _push_one(self, push, frame: bytes) -> None:
        """Write one push frame; a dead connection unsubscribes."""
        try:
            await push(frame)
        except (ConnectionError, OSError):
            self.notify_subscribers.discard(push)
        else:
            self.notify_pushes += 1

    def connection_closed(self, state: dict) -> None:
        """Drop this connection's reload-push subscription, if any."""
        self.notify_subscribers.discard(state.get("#push"))

    # -- worker coordination --------------------------------------------------

    async def peer_request(self, port: int, line: str,
                           timeout: float = 5.0) -> str:
        """One request/reply round trip to a sibling worker's
        loopback control listener; returns the reply line."""
        conn = asyncio.open_connection("127.0.0.1", port)
        reader, writer = await asyncio.wait_for(conn, timeout)
        try:
            writer.write(line.encode("utf-8") + b"\n")
            await writer.drain()
            raw = await asyncio.wait_for(reader.readline(), timeout)
        finally:
            writer.close()
        if not raw:
            raise ConnectionError(
                "worker closed the control connection")
        return str(raw, "utf-8").rstrip("\r\n")

    def _peer_ports(self) -> list[tuple[int, int]]:
        """``(worker_id, control port)`` for every *other* worker."""
        return [(wid, port)
                for wid, port in sorted(self.worker_peers.items())
                if wid != self.worker_id]

    async def broadcast_reload(self, path: str) -> list[str]:
        """Push a snapshot swap to every sibling worker.

        Sends ``WRELOAD`` (which swaps locally and never re-broadcasts,
        so the fan-out cannot loop) to each peer concurrently; returns
        a ``worker <id>: <why>`` note per worker that failed to swap —
        empty means the whole pool now serves the new snapshot.
        """
        async def push(wid: int, port: int) -> str | None:
            try:
                reply = await self.peer_request(port, f"WRELOAD {path}")
            except (OSError, asyncio.TimeoutError,
                    ConnectionError) as exc:
                return f"worker {wid}: {exc}"
            if not reply.startswith("OK"):
                return f"worker {wid}: {reply}"
            return None

        notes = await asyncio.gather(
            *(push(wid, port) for wid, port in self._peer_ports()))
        return [note for note in notes if note]

    @staticmethod
    def _parse_stats(reply: str) -> dict[str, str]:
        """``OK k=v k=v ...`` into an ordered ``{k: v}`` dict."""
        out: dict[str, str] = {}
        for token in reply.split()[1:]:
            key, _, value = token.partition("=")
            out[key] = value
        return out

    async def stats_reply(self) -> str:
        """The STATS reply: local counters, or — in multi-worker mode
        — the aggregate across the whole worker pool.

        Each sibling is asked for its raw ``WSTATS``; count keys
        (:attr:`STATS_SUM_KEYS` and the ``n_`` prefix) are summed,
        ``inflight_hwm``/``uptime_sec`` take the pool max, and
        snapshot-identity keys stay the answering worker's (every
        worker maps the same file).  ``workers=<n>`` plus one
        ``worker_<id>=ok:<lookups>`` / ``worker_<id>=down`` token per
        worker report pool size and health; an unreachable worker
        degrades its token, never the reply.
        """
        local = f"OK {self.stats_line()}"
        if not self.worker_peers:
            return local

        async def fetch(wid: int, port: int):
            try:
                reply = await self.peer_request(port, "WSTATS")
            except (OSError, asyncio.TimeoutError, ConnectionError):
                return wid, None
            if not reply.startswith("OK"):
                return wid, None
            return wid, self._parse_stats(reply)

        per_worker: dict[int, dict[str, str] | None] = {
            self.worker_id: self._parse_stats(local)}
        for wid, stats in await asyncio.gather(
                *(fetch(wid, port) for wid, port in self._peer_ports())):
            per_worker[wid] = stats
        merged = dict(per_worker[self.worker_id] or {})
        merged.pop("worker", None)
        for wid, stats in per_worker.items():
            if wid == self.worker_id or stats is None:
                continue
            for key, value in stats.items():
                if key not in merged:
                    continue
                try:
                    if key in self.STATS_SUM_KEYS \
                            or key.startswith("n_"):
                        merged[key] = str(int(merged[key]) + int(value))
                    elif key == "inflight_hwm":
                        merged[key] = str(max(int(merged[key]),
                                              int(value)))
                    elif key == "uptime_sec":
                        merged[key] = \
                            f"{max(float(merged[key]), float(value)):.1f}"
                except ValueError:
                    pass  # a non-numeric stray never breaks STATS
        tokens = [f"{key}={value}" for key, value in merged.items()]
        tokens.append(f"workers={len(self.worker_peers)}")
        for wid in sorted(self.worker_peers):
            stats = per_worker.get(wid)
            tokens.append(
                f"worker_{wid}=down" if stats is None
                else f"worker_{wid}=ok:{stats.get('lookups', '0')}")
        return "OK " + " ".join(tokens)

    def stats_line(self) -> str:
        """The one-line ``key=value`` counters the STATS verb returns.

        ``format`` is the *current* snapshot's format version (it can
        flip when a RELOAD swaps in a file of the other format); the
        ``n_<verb>`` counters live on the service and survive every
        reload.
        """
        reader = self.reader
        uptime = time.monotonic() - self.started
        verbs = self.verb_stats()
        cache = cache_stats_tokens(self.cache)
        return (f"lookups={self.lookups} hits={self.hits} "
                f"misses={self.misses} reloads={self.reloads} "
                f"notify_pushes={self.notify_pushes} "
                f"connections={self.connections} "
                f"sources={reader.source_count} "
                f"snapshot_bytes={reader.size} "
                f"format={reader.version} "
                f"dispatch={self.dispatch} "
                f"n_fsm_hits={self.fsm_hits} "
                f"n_fsm_misses={self.fsm_misses} "
                f"{cache} "
                f"{verbs} "
                f"uptime_sec={uptime:.1f} "
                f"source={self.default_source} "
                f"snapshot={reader.path}")

    # -- protocol -------------------------------------------------------------

    async def handle_line(self, line: str, state: dict) -> str | None:
        """One request in, one reply line out (None closes)."""
        parts = line.split(None, 1)
        if not parts:
            return "ERR empty-request send ROUTE/EXACT/SOURCE/TABLE/" \
                   "COSTS/RELOAD/WRELOAD/NOTIFY/PIPELINE/STATS/" \
                   "WSTATS/QUIT"
        command = parts[0].upper()
        rest = parts[1] if len(parts) > 1 else ""
        if command == "ROUTE":
            args = rest.split()
            if not args or len(args) > 2:
                return "ERR usage ROUTE <dest> [user]"
            try:
                cost, res = self.lookup(
                    state["source"], args[0],
                    args[1] if len(args) == 2 else None)
            except RouteError:
                return f"ERR noroute {args[0]}"
            except SnapshotError:
                # a RELOAD replaced the snapshot and this connection's
                # chosen source is not in the new one
                return f"ERR unknown-source {state['source']}"
            return (f"OK {cost} {res.matched} {res.route} "
                    f"{res.address}")
        if command == "EXACT":
            args = rest.split()
            if len(args) != 1:
                return "ERR usage EXACT <dest>"
            try:
                cost, route = self.exact(state["source"], args[0])
            except RouteError:
                return f"ERR noroute {args[0]}"
            except SnapshotError:
                return f"ERR unknown-source {state['source']}"
            return f"OK {cost} {args[0]} {route}"
        if command == "SOURCE":
            args = rest.split()
            if len(args) != 1:
                return "ERR usage SOURCE <host>"
            if not self.reader.has_source(args[0]):
                return f"ERR unknown-source {args[0]}"
            state["source"] = args[0]
            return f"OK source {args[0]}"
        if command == "TABLE":
            return self.table_reply(rest.split())
        if command == "COSTS":
            return self.costs_reply(rest.split())
        if command == "RELOAD":
            path = rest.strip()
            if not path:
                return "ERR usage RELOAD <snapshot>"
            try:
                reader = await self.reload(path)
            except SnapshotError as exc:
                return f"ERR reload {exc}"
            if self.worker_peers:
                failures = await self.broadcast_reload(path)
                if failures:
                    return "ERR reload " + "; ".join(failures)
            return f"OK reloaded {reader.source_count} {reader.path}"
        if command == "WRELOAD":
            path = rest.strip()
            if not path:
                return "ERR usage WRELOAD <snapshot>"
            try:
                reader = await self.reload(path)
            except SnapshotError as exc:
                return f"ERR reload {exc}"
            return f"OK reloaded {reader.source_count} {reader.path}"
        if command == "NOTIFY":
            if rest.strip():
                return "ERR usage NOTIFY"
            push = state.get("#push")
            if push is None:
                return ("ERR notify this transport cannot carry "
                        "unsolicited push frames")
            self.notify_subscribers.add(push)
            return "OK notify 1"
        if command == "PIPELINE":
            if rest.strip():
                return "ERR usage PIPELINE"
            return "OK pipeline 1"
        if command == "STATS":
            return await self.stats_reply()
        if command == "WSTATS":
            return f"OK worker={self.worker_id} {self.stats_line()}"
        if command == "QUIT":
            return None
        return f"ERR unknown-command {command}"

    def initial_state(self) -> dict:
        """Each connection starts on the default source table."""
        return {"source": self.default_source}


async def serve(service: LineService, host: str = "127.0.0.1",
                port: int = 0) -> asyncio.AbstractServer:
    """Start serving; ``port=0`` picks a free port (see
    ``server.sockets[0].getsockname()``)."""
    return await asyncio.start_server(service.handle_connection,
                                      host, port)


def run_daemon(snapshot_path: str, host: str = "127.0.0.1",
               port: int = 4176, source: str | None = None,
               require_format: int | None = None,
               workers: int = 1, dispatch: str = "fsm",
               cache_size: int | None = None) -> int:
    """Blocking daemon entry point for ``pathalias serve``.

    ``workers > 1`` hands off to :func:`run_multi_daemon`: N
    ``SO_REUSEPORT`` worker processes sharing one mapped snapshot.
    """
    if workers > 1:
        return run_multi_daemon(snapshot_path, host=host, port=port,
                                source=source,
                                require_format=require_format,
                                workers=workers, dispatch=dispatch,
                                cache_size=cache_size)

    async def main() -> None:
        service = RouteService(snapshot_path, default_source=source,
                               require_format=require_format,
                               dispatch=dispatch,
                               cache_size=cache_size)
        server = await serve(service, host, port)
        bound = server.sockets[0].getsockname()
        print(f"pathalias: serve: {service.reader.source_count} "
              f"sources from {snapshot_path}; listening on "
              f"{bound[0]}:{bound[1]}", file=sys.stderr, flush=True)
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("pathalias: serve: interrupted", file=sys.stderr)
    return 0


async def _worker_serve(worker_id: int, snapshot_path: str, host: str,
                        port: int, source: str | None,
                        require_format: int | None, conn,
                        dispatch: str = "fsm",
                        cache_size: int | None = None) -> None:
    """One worker's async body: the shared-port listener, the loopback
    control listener, and the control-port exchange with the parent."""
    service = RouteService(snapshot_path, default_source=source,
                           require_format=require_format,
                           dispatch=dispatch, cache_size=cache_size)
    service.worker_id = worker_id
    server = await asyncio.start_server(
        service.handle_connection, host, port, reuse_port=True)
    control = await asyncio.start_server(
        service.handle_connection, "127.0.0.1", 0)
    conn.send(control.sockets[0].getsockname()[1])
    # the parent answers with every worker's control port
    service.worker_peers = conn.recv()
    conn.close()
    async with server, control:
        await asyncio.gather(server.serve_forever(),
                             control.serve_forever())


def _worker_main(worker_id: int, snapshot_path: str, host: str,
                 port: int, source: str | None,
                 require_format: int | None, conn,
                 dispatch: str = "fsm",
                 cache_size: int | None = None) -> None:
    """Process entry point of one SO_REUSEPORT worker."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent coordinates
    try:
        asyncio.run(_worker_serve(worker_id, snapshot_path, host, port,
                                  source, require_format, conn,
                                  dispatch=dispatch,
                                  cache_size=cache_size))
    except SnapshotError as exc:
        print(f"pathalias: serve: worker {worker_id}: {exc}",
              file=sys.stderr, flush=True)
        raise SystemExit(1) from None


def run_multi_daemon(snapshot_path: str, host: str = "127.0.0.1",
                     port: int = 4176, source: str | None = None,
                     require_format: int | None = None,
                     workers: int = 2, dispatch: str = "fsm",
                     cache_size: int | None = None) -> int:
    """Serve one snapshot from N ``SO_REUSEPORT`` worker processes.

    Every worker listens on the *same* ``host:port`` — the kernel
    load-balances accepted connections across them — and mmaps the
    same snapshot file, so the pool shares a single page-cache copy
    of the data no matter how many workers run.  ``port=0`` has the
    parent reserve a free port (with a bound, never-listening
    ``SO_REUSEPORT`` socket, so no connection ever lands on it) and
    every worker binds that.  The parent prints the usual single
    ``listening on host:port`` line once the whole pool is up, then
    supervises: SIGTERM/SIGINT tears the pool down.

    Workers exchange loopback control ports through the parent at
    startup; that control mesh is what makes ``STATS`` aggregate and
    ``RELOAD`` swap the snapshot pool-wide (see the module docstring).
    Requires ``SO_REUSEPORT`` (Linux, the BSDs, macOS).
    """
    if workers < 1:
        raise SnapshotError(f"--workers {workers}: need at least 1")
    if not hasattr(socket, "SO_REUSEPORT"):
        raise SnapshotError(
            "--workers needs SO_REUSEPORT, which this platform "
            "lacks; run single-worker daemons on separate ports "
            "behind --backend fan-out instead")
    # Validate snapshot, source, and format pin once, up front — one
    # clear error beats N concurrent worker tracebacks.
    probe = RouteService(snapshot_path, default_source=source,
                         require_format=require_format,
                         dispatch=dispatch)
    source_count = probe.reader.source_count
    probe.reader.close()
    # Reserve the port (resolving port=0) without ever accepting:
    # a bound but not listening SO_REUSEPORT socket holds the number,
    # and the kernel only balances across *listening* sockets.
    guard = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    guard.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    guard.bind((host, port))
    port = guard.getsockname()[1]

    ctx = multiprocessing.get_context("spawn")
    procs: list = []
    pipes: list = []
    interrupted = False
    try:
        for wid in range(workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(wid, snapshot_path, host, port, source,
                      require_format, child_conn, dispatch,
                      cache_size))
            proc.start()
            child_conn.close()
            procs.append(proc)
            pipes.append(parent_conn)
        control_ports: dict[int, int] = {}
        for wid, parent_conn in enumerate(pipes):
            if not parent_conn.poll(30):
                raise SnapshotError(
                    f"worker {wid} did not report its control port")
            try:
                control_ports[wid] = parent_conn.recv()
            except EOFError:
                raise SnapshotError(
                    f"worker {wid} died during startup (see its "
                    f"error above)") from None
        for parent_conn in pipes:
            parent_conn.send(control_ports)
        print(f"pathalias: serve: {source_count} sources from "
              f"{snapshot_path}; workers={workers}; listening on "
              f"{host}:{port}", file=sys.stderr, flush=True)

        def _terminate(signum, frame):  # SIGTERM == operator stop
            raise KeyboardInterrupt

        previous = signal.signal(signal.SIGTERM, _terminate)
        try:
            for proc in procs:
                proc.join()
        finally:
            signal.signal(signal.SIGTERM, previous)
    except KeyboardInterrupt:
        interrupted = True
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5)
        guard.close()
    if interrupted:
        print("pathalias: serve: interrupted", file=sys.stderr)
    return 0


class DaemonRouteDatabase:
    """A live daemon behind the
    :class:`~repro.service.resolver.Resolver` protocol.

    One blocking TCP connection, reconnected transparently if the
    daemon restarted between requests.  Host and user tokens travel on
    a whitespace-delimited wire, so addresses containing spaces are
    rejected rather than silently corrupted.  The query surface is the
    same contract the in-process snapshot and the federation view
    satisfy, so a :class:`~repro.mailer.router.MailRouter` plugs in a
    daemon exactly where it would plug in an in-memory
    :class:`~repro.mailer.routedb.RouteDatabase`.
    """

    def __init__(self, address: tuple[str, int],
                 source: str | None = None, timeout: float = 5.0,
                 reconnect_patience: float = 2.0):
        """``reconnect_patience`` bounds how long a *re*-connect keeps
        retrying the TCP connect while the daemon restarts (the very
        first connect still fails fast on a wrong address)."""
        self.address = address
        self.timeout = timeout
        self.reconnect_patience = reconnect_patience
        self.source = source
        self._sock: socket.socket | None = None
        self._file = None
        self._ever_connected = False

    # -- wire -----------------------------------------------------------------

    def _connect(self) -> None:
        self.close()
        # A daemon bounce closes the listener for a moment; once this
        # client has talked to the address successfully, give the
        # restart a short, bounded window instead of surfacing the
        # first ECONNREFUSED.  A never-reached address keeps failing
        # immediately — misconfiguration should not look like a bounce.
        deadline = time.monotonic() + (
            self.reconnect_patience if self._ever_connected else 0.0)
        delay = RECONNECT_DELAY
        while True:
            try:
                sock = socket.create_connection(self.address,
                                                timeout=self.timeout)
                break
            except OSError:
                if time.monotonic() + delay > deadline:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, RECONNECT_DELAY_MAX)
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._ever_connected = True
        if self.source is not None:
            reply = self._send(f"SOURCE {self.source}")
            if not reply.startswith("OK"):
                raise RouteError(f"daemon rejected source "
                                 f"{self.source!r}: {reply}")

    def _send(self, line: str) -> str:
        if any(ch in "\r\n" for ch in line):
            raise RouteError(f"request {line!r} contains a newline")
        self._file.write(line.encode("utf-8") + b"\n")
        self._file.flush()
        raw = self._file.readline()
        if not raw:
            raise ConnectionError("daemon closed the connection")
        return raw.decode("utf-8").rstrip("\r\n")

    def _request(self, line: str) -> str:
        if self._sock is None:
            self._connect()
            return self._send(line)
        try:
            return self._send(line)
        except (ConnectionError, OSError, socket.timeout):
            # One transparent reconnect: the daemon may have been
            # restarted (or hot-swapped hosts) since the last call.
            self._connect()
            return self._send(line)

    def close(self) -> None:
        """Close the daemon connection (reopened lazily on next use)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "DaemonRouteDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the Resolver protocol surface ----------------------------------------

    _token = staticmethod(wire_token)

    def route(self, name: str) -> str | None:
        """Exact-name route lookup (no suffix search)."""
        reply = self._request(f"EXACT {self._token(name, 'host')}")
        if reply.startswith("ERR noroute"):
            return None
        parts = reply.split()
        if len(parts) != 4 or parts[0] != "OK":
            raise RouteError(f"daemon protocol error: {reply!r}")
        return parts[3]

    def __contains__(self, name: str) -> bool:
        return self.route(name) is not None

    def resolve_with_cost(self, target: str,
                          user: str = "%s") -> tuple[int, Resolution]:
        """Like :meth:`resolve`, also returning the daemon's mapped
        cost for the route (the first OK field)."""
        reply = self._request(
            f"ROUTE {self._token(target, 'host')} "
            f"{self._token(user, 'user')}")
        if reply.startswith("ERR noroute"):
            raise RouteError(f"no route to {target!r}")
        if reply.startswith("ERR federation"):
            from repro.errors import FederationError

            raise FederationError(reply[len("ERR federation "):])
        parts = reply.split()
        if len(parts) != 5 or parts[0] != "OK":
            raise RouteError(f"daemon protocol error: {reply!r}")
        _, cost, matched, route, address = parts
        return int(cost), Resolution(target=target, matched=matched,
                                     route=route, address=address)

    def resolve(self, target: str, user: str = "%s") -> Resolution:
        """Resolve mail for ``user`` at ``target`` via the daemon's
        domain-suffix search."""
        return self.resolve_with_cost(target, user)[1]

    def source_table(self) -> str | None:
        """The source this connection is bound to (None: the daemon's
        default source answers)."""
        return self.source

    def resolve_bang(self, bang_address: str) -> Resolution:
        """Resolve ``host!rest`` forms, like RouteDatabase."""
        if "!" not in bang_address:
            raise RouteError(
                f"address {bang_address!r} names no user (expected "
                f"target!user)")
        target, user = bang_address.split("!", 1)
        return self.resolve(target, user)

    def cached(self, size: int = DEFAULT_CACHE_SIZE):
        """This client behind a *client-side* generation-stamped
        result cache: hot pairs skip the network round trip entirely.
        The daemon's own cache invalidates itself on RELOAD; a
        client-side layer must be bumped by whoever learns of the
        swap (e.g. a NOTIFY subscription) — or sized small enough
        that staleness is bounded by LRU turnover."""
        from repro.service.cache import CachingResolver

        return CachingResolver(self, size=size)

    def stats(self) -> dict[str, str]:
        """The daemon's STATS counters as a string-valued dict."""
        reply = self._request("STATS")
        if not reply.startswith("OK "):
            raise RouteError(f"daemon protocol error: {reply!r}")
        out: dict[str, str] = {}
        for token in reply[3:].split():
            key, _, value = token.partition("=")
            out[key] = value
        return out

    def reload(self, snapshot_path: str) -> int:
        """Ask the daemon to hot-swap a new snapshot; returns its
        source count."""
        reply = self._request(f"RELOAD {snapshot_path}")
        parts = reply.split()
        if len(parts) < 3 or parts[:2] != ["OK", "reloaded"]:
            raise RouteError(f"daemon refused reload: {reply}")
        return int(parts[2])
