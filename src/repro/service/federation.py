"""The federation daemon: N regional snapshot shards behind one port.

The single-snapshot daemon (:mod:`repro.service.daemon`) serves one
map; real deployments stitched many regional maps — backbone,
universities, ARPA — into one routing picture.  This front end owns a
:class:`~repro.service.shard.FederationView` over named
:class:`~repro.service.shard.Shard` objects and speaks the same line
protocol, extended with shard administration:

========================  ===================================================
``ROUTE <dest> [user]``   federated domain-suffix search from the
                          connection's source; replies ``OK <cost>
                          <matched> <route> <address>``, byte-compatible
                          with the single-snapshot daemon — the route
                          may be stitched across shards through
                          gateway hosts.
``EXACT <dest>``          exact-name federated lookup; ``OK <cost>
                          <dest> <route>``.
``SOURCE <host>``         switch this connection's source (the host's
                          home shard is found automatically).
``SHARDS``                list attached shards: ``OK <n>
                          <name>=<sources>:<path>`` ...
``ATTACH <name> <spec>``  add a shard (or replace one, by name); the
                          spec is a snapshot path, or ``host:port``
                          for a remote backend daemon.
``DETACH <name>``         remove a shard.
``RELOAD <name> <snap>``  hot-swap one shard's snapshot; the other
                          shards keep serving, and in-flight federated
                          lookups keep the view they started with.
                          For a backend shard the reload is forwarded
                          to its daemon and the cached index re-synced.
``PIPELINE``              capability probe: ``OK pipeline 1`` — the
                          front end accepts tagged (pipelined)
                          requests, exactly like the single-snapshot
                          daemon.
``STATS``                 one ``key=value`` line of counters.
``QUIT``                  close the connection.
========================  ===================================================

A shard is either a **local snapshot** (the front end reads the file
in process) or a **remote backend** (a per-shard
:class:`~repro.service.daemon.RouteService` daemon the front end fans
out to through a :class:`~repro.service.backend.ShardBackend`
connection pool — see :mod:`repro.service.backend`); the two mix
freely in one view, and the reply bytes are identical either way.
The front end also subscribes to each backend daemon's ``NOTIFY``
reload push channel: when a backend reloads *itself* (an operator
RELOADs the shard daemon directly), the push re-syncs this front
end's cached ownership index and leg cache within one round trip —
no front-end RELOAD required (the ``resyncs`` STATS counter).

Every mutation builds a *new* immutable view and swaps it in with one
attribute assignment — the same no-dropped-requests discipline the
single daemon's RELOAD has, now per shard.  Request handlers pin
``self.view`` exactly once and never re-read it mid-request — with
remote backends a lookup awaits socket I/O, so ATTACH/DETACH/RELOAD
can (and do) land *between* its await points; the pinned-view
discipline is what keeps a half-swapped picture unobservable.  A
federated route failure (owner shard known but no gateway chain
reaches it) reports the distinct ``federation`` error code so callers
can tell a topology gap from a plain miss.

:class:`FederatedRouteDatabase` extends the synchronous
:class:`~repro.service.daemon.DaemonRouteDatabase` client with the
shard-administration verbs; the query surface is unchanged, so a
:class:`~repro.mailer.router.MailRouter` plugs into a federation
daemon exactly as it plugs into a single-snapshot one.
"""

from __future__ import annotations

import asyncio
import sys
import time

from repro.errors import (
    FederationError,
    RouteError,
    UnknownShardError,
)
from repro.service.backend import (
    BackendShard,
    ShardBackend,
    parse_backend_spec,
)
from repro.service.cache import (DEFAULT_CACHE_SIZE, ResultCache,
                                 cache_stats_tokens, instantiate)
from repro.service.daemon import DaemonRouteDatabase, LineService, serve
from repro.service.resolver import Resolution
from repro.service.shard import FederationView, Shard
from repro.service.store import SnapshotError, SnapshotReader


class FederationService(LineService):
    """Daemon state: the current federation view plus counters.

    The view is immutable; ATTACH/DETACH/RELOAD build a new one under
    a lock and swap it in, so concurrent lookups pin a consistent
    picture with a single attribute read.
    """

    #: The verbs this daemon's line protocol implements (the CI docs
    #: job checks ``docs/protocol.md`` against this table).
    VERBS = ("ROUTE", "EXACT", "SOURCE", "SHARDS", "ATTACH", "DETACH",
             "RELOAD", "PIPELINE", "STATS", "QUIT")

    def __init__(self, shards, default_source: str | None = None,
                 require_format: int | None = None,
                 dispatch: str = "fsm",
                 cache_size: int | None = None):
        """``shards`` maps shard names to snapshot paths (or is an
        iterable of :class:`Shard` / :class:`BackendShard` objects —
        remote backends need the async :meth:`create` constructor).
        ``require_format`` pins every shard's snapshot format — at
        startup and on every later ATTACH/RELOAD.  ``dispatch``
        selects the suffix-dispatch engine for the ownership index
        and every locally-served shard table: ``fsm`` (the compiled
        automaton, default) or ``dict`` (the original walk — the
        differential oracle, ``serve --dispatch dict``).
        ``cache_size`` bounds the generation-stamped result cache:
        None takes the default, 0 disables, and ``dict`` dispatch
        forces it off (the oracle must never answer from a cache)."""
        super().__init__(require_format=require_format)
        self.dispatch = dispatch
        if dispatch == "dict":
            cache_size = 0
        size = DEFAULT_CACHE_SIZE if cache_size is None else cache_size
        #: The generation-stamped result cache (None when disabled).
        #: Every view swap — ATTACH, DETACH, per-shard RELOAD, and
        #: NOTIFY-driven re-syncs — bumps the reloaded shard's
        #: generation token, which strands every stamped entry: a
        #: repriced shard can change the best *stitched* route for
        #: pairs whose old answer never touched it, so per-entry
        #: dependency tracking could not invalidate safely.
        self.cache: ResultCache | None = \
            ResultCache(size) if size > 0 else None
        if isinstance(shards, dict):
            shards = [Shard.open(name, path, dispatch=dispatch)
                      for name, path in sorted(shards.items())]
        else:
            shards = list(shards)
        if not shards:
            raise SnapshotError(
                "FederationService needs at least one shard")
        for shard in shards:
            # shards duck-type the reader's version/path attributes,
            # so the format pin applies to backends identically
            self._check_format(shard)
        self.view = FederationView(shards, dispatch=dispatch)
        if default_source is None:
            first = next(iter(self.view.shards.values()))
            sources = first.sources()
            if not sources:
                raise SnapshotError(
                    f"{first.path}: snapshot has no source tables")
            default_source = sources[0]
        elif self.view.home_shard(default_source) is None:
            raise SnapshotError(
                f"no shard holds a table for source "
                f"{default_source!r}")
        self.default_source = default_source
        self.started = time.monotonic()
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        #: Suffix dispatches answered through the compiled automaton
        #: path that matched / missed — service-owned, so per-shard
        #: RELOADs and view swaps never reset them; both stay 0 in
        #: ``dict`` mode.
        self.fsm_hits = 0
        self.fsm_misses = 0
        self.federated = 0
        self.reloads = 0
        self.attaches = 0
        self.detaches = 0
        #: View swaps driven by a backend daemon's ``NOTIFY reloaded``
        #: push (the backend reloaded *itself*; the front end re-synced
        #: its cached ownership index without being asked) — the
        #: ``resyncs`` STATS key.
        self.resyncs = 0
        self._resync_pending: set = set()
        self._resync_tasks: set = set()
        #: Connection-pool width for backend shards attached at
        #: runtime (ATTACH host:port); :meth:`create` overrides it
        #: with its ``pool_size`` so later attaches match startup.
        self.backend_pool_size = 2
        #: Whether backend shards attached at runtime may negotiate
        #: the pipelined (tagged) wire protocol; :meth:`create`
        #: overrides it with its ``pipeline`` flag so later attaches
        #: match startup (``serve --no-pipeline`` forces lockstep).
        self.backend_pipeline = True
        #: How long a replaced/detached backend pool keeps serving
        #: lookups still pinned to the outgoing view before closing.
        self.retire_grace = 2.0
        self._swap_lock = asyncio.Lock()
        self._retiring: set = set()

    @classmethod
    async def create(cls, shards=None, backends=None,
                     default_source: str | None = None,
                     require_format: int | None = None,
                     pool_size: int = 2,
                     pipeline: bool = True,
                     dispatch: str = "fsm",
                     cache_size: int | None = None
                     ) -> "FederationService":
        """Build a service over local snapshots *and* remote backends.

        ``shards`` maps shard names to snapshot paths (served in
        process); ``backends`` maps shard names to ``host:port``
        specs, each dialed now — the ownership index is fetched from
        the daemon before the service answers its first request.
        ``pool_size`` is the per-backend connection pool width;
        ``pipeline=False`` forces the lockstep wire protocol even
        against a backend daemon that would negotiate tagging.
        ``dispatch`` picks the suffix-dispatch engine (see
        :class:`FederationService`).
        """
        objs: list = [Shard.open(name, path, dispatch=dispatch)
                      for name, path in sorted((shards or {}).items())]
        for name, spec in sorted((backends or {}).items()):
            addr = parse_backend_spec(spec)
            if addr is None:
                raise FederationError(
                    f"backend {name}={spec!r} is not of the form "
                    f"HOST:PORT")
            backend = ShardBackend(name, addr[0], addr[1],
                                   pool_size=pool_size,
                                   pipeline=pipeline)
            objs.append(await BackendShard.connect(name, backend))
        service = cls(objs, default_source=default_source,
                      require_format=require_format, dispatch=dispatch,
                      cache_size=cache_size)
        service.backend_pool_size = pool_size
        service.backend_pipeline = pipeline
        for name, shard in service.view.shards.items():
            backend = getattr(shard, "backend", None)
            if backend is not None:
                await service._subscribe_backend(name, backend)
        return service

    # -- operations -----------------------------------------------------------
    #
    # The swap-path discipline, audited: every request handler reads
    # ``self.view`` exactly once and works against that immutable
    # object for its whole lifetime — across every await point.  The
    # mutators below build a new view under ``_swap_lock`` and publish
    # it with one attribute assignment, so a racing request sees the
    # old picture or the new one, never a mixture; backend pools are
    # closed only after the swap, with a grace window for requests
    # still pinned to the outgoing view.

    async def _lookup_pinned(self, view, source: str, target: str,
                             user: str | None):
        """The uncached federated search against one pinned view,
        counting lookups/hits/misses and the dispatch counters;
        returns the :class:`~repro.service.shard.FederatedResolution`.
        """
        self.lookups += 1
        fsm = self.dispatch != "dict"
        if view.home_shard(source) is None:
            self.misses += 1
            raise SnapshotError(f"no shard owns source {source!r}")
        try:
            fed = await view.aresolve_with_cost(
                source, target, "%s" if user is None else user)
        except RouteError:  # includes FederationError
            self.misses += 1
            if fsm:
                self.fsm_misses += 1
            raise
        self.hits += 1
        if fsm:
            self.fsm_hits += 1
        if fed.federated:
            self.federated += 1
        return fed

    async def lookup(self, source: str, target: str,
                     user: str | None = None) -> tuple[int, Resolution]:
        """Federated suffix-search from ``source``: ``(cost, resolution)``.

        Raises :class:`FederationError` when the owner shard is
        unreachable through gateways, :class:`RouteError` on a plain
        miss, and :class:`SnapshotError` when no shard owns ``source``
        (it may have vanished in a DETACH or RELOAD).

        With the result cache on, the relative-template answer for
        ``(source, target)`` is cached generation-stamped —
        *including* federated misses, cached as their error class so a
        replayed ``FederationError`` still reports the ``federation``
        wire code.  The stamp is read in the same event-loop step that
        pins the view (no await between), and every mutator bumps
        only *after* publishing its swap, so a stitched answer
        computed across await points against a swapped-out view can
        never be inserted as current: its stamp is already stranded
        and :meth:`~repro.service.cache.ResultCache.put` drops it.
        """
        cache = self.cache
        if cache is None or "%s" in target:
            # a literal %s in the name cannot template-substitute
            fed = await self._lookup_pinned(self.view, source,
                                            target, user)
            return fed.cost, fed.resolution
        stamp = cache.epoch  # stamp, *then* pin — same loop step
        view = self.view
        key = ("R", source, target)
        hit = cache.get(key)
        if hit is not None:
            self.lookups += 1
            negative, payload = hit
            if negative:
                self.misses += 1
                cache.raise_negative(payload)
            self.hits += 1
            cost, template, federated = payload
            if federated:
                self.federated += 1
            return cost, instantiate(template,
                                     "%s" if user is None else user)
        try:
            fed = await self._lookup_pinned(view, source, target, None)
        except SnapshotError:
            raise  # never cached: sources can reappear on ATTACH
        except RouteError as exc:
            cache.put_negative(key, exc, stamp)
            raise
        cache.put(key, (fed.cost, fed.resolution, fed.federated),
                  stamp)
        return fed.cost, instantiate(fed.resolution,
                                     "%s" if user is None else user)

    def resolver(self, source: str):
        """The bound :class:`~repro.service.resolver.Resolver` surface
        over the *current* view (see
        :class:`~repro.service.shard.FederationResolver`); pins one
        federation picture, like every request handler does."""
        return self.view.resolver(source)

    async def _exact_pinned(self, view, source: str,
                            target: str) -> tuple[int, str, bool]:
        """The uncached exact federated lookup against one pinned
        view: ``(cost, route template, crossed a shard boundary)``."""
        self.lookups += 1
        if view.home_shard(source) is None:
            self.misses += 1
            raise SnapshotError(f"no shard owns source {source!r}")
        try:
            fed = await view.aexact(source, target)
        except RouteError:
            self.misses += 1
            raise
        self.hits += 1
        if fed.federated:
            self.federated += 1
        return fed.cost, fed.resolution.route, fed.federated

    async def exact(self, source: str, target: str) -> tuple[int, str]:
        """Exact-name federated lookup: ``(cost, route template)``.

        Cached under its own key kind (EXACT and ROUTE answers for a
        pair differ), with the same stamp discipline as
        :meth:`lookup`."""
        cache = self.cache
        if cache is None:
            cost, route, _ = await self._exact_pinned(self.view,
                                                      source, target)
            return cost, route
        stamp = cache.epoch
        view = self.view
        key = ("E", source, target)
        hit = cache.get(key)
        if hit is not None:
            self.lookups += 1
            negative, payload = hit
            if negative:
                self.misses += 1
                cache.raise_negative(payload)
            self.hits += 1
            cost, route, federated = payload
            if federated:
                self.federated += 1
            return cost, route
        try:
            cost, route, federated = await self._exact_pinned(
                view, source, target)
        except SnapshotError:
            raise
        except RouteError as exc:
            cache.put_negative(key, exc, stamp)
            raise
        cache.put(key, (cost, route, federated), stamp)
        return cost, route

    def _retire(self, old) -> None:
        """Schedule a replaced/removed backend shard's pool for
        closing on a background task: the view has already swapped,
        and the pool keeps serving lookups pinned to the outgoing
        view for :attr:`retire_grace` seconds before it drains —
        without holding up the ATTACH/DETACH reply."""
        backend = getattr(old, "backend", None)
        if backend is None:
            return
        task = asyncio.get_running_loop().create_task(
            backend.aclose(self.retire_grace))
        self._retiring.add(task)
        task.add_done_callback(self._retiring.discard)

    async def _open_shard(self, name: str, spec: str):
        """Open an attachable shard from its spec: a ``host:port``
        backend (dialed and index-synced now) or a snapshot path
        (opened off-loop).  Format pin enforced either way; a backend
        that fails the sync or the pin has its freshly-opened pool
        closed rather than leaked."""
        addr = parse_backend_spec(spec)
        if addr is not None:
            backend = ShardBackend(name, addr[0], addr[1],
                                   pool_size=self.backend_pool_size,
                                   pipeline=self.backend_pipeline)
            try:
                shard = await BackendShard.connect(name, backend)
                self._check_format(shard)
            except Exception:
                await backend.aclose(grace=0.0)
                raise
            await self._subscribe_backend(name, backend)
            return shard
        reader = await asyncio.to_thread(SnapshotReader.open, spec)
        shard = Shard(name, reader, dispatch=self.dispatch)
        self._check_format(shard)
        return shard

    async def _subscribe_backend(self, name: str,
                                 backend: ShardBackend) -> bool:
        """Best-effort NOTIFY subscription on a backend daemon.

        Once up, the backend's own reloads push ``NOTIFY reloaded``
        frames and :meth:`_on_backend_reload` re-syncs this front
        end's cached ownership index and leg cache — no front-end
        RELOAD needed.  A daemon that predates the verb (or an
        unreachable one) degrades to pull-only behavior; subscription
        failure never fails the attach.
        """
        try:
            return await backend.subscribe_reloads(
                lambda path, _n=name: self._on_backend_reload(_n, path))
        except FederationError:
            return False

    def _on_backend_reload(self, name: str, path: str) -> None:
        """Push callback: schedule a re-sync of shard ``name``.

        Runs on the backend's notify-listener task, so it only
        *schedules* — the swap itself takes ``_swap_lock``.  Pushes
        for a shard whose re-sync is already pending coalesce.

        The result cache is bumped *immediately* (before the re-sync
        lands): the backend daemon has already swapped its snapshot,
        so cached answers touching this shard may already be stale —
        exactly the shard's generation token moves.  The bump is
        skipped when the view already describes the pushed path,
        which is the forwarded-RELOAD coalescing case:
        :meth:`reload_shard` re-synced and bumped inside its own
        swap, and this push is its echo.  (A daemon too old to carry
        NOTIFY never calls this at all — the front end degrades to
        pull-only re-syncs, exactly its pre-push behavior.)
        """
        if self.cache is not None:
            current = self.view.shards.get(name)
            if getattr(current, "snapshot", "") != path:
                self.cache.bump(name)
        if name in self._resync_pending:
            return
        self._resync_pending.add(name)
        task = asyncio.get_running_loop().create_task(
            self._resync_backend(name, path))
        self._resync_tasks.add(task)
        task.add_done_callback(self._resync_tasks.discard)

    async def _resync_backend(self, name: str, path: str) -> None:
        """Re-fetch a backend shard's index after its daemon's own
        reload and swap the refreshed picture into the view.

        Skips when the view already describes ``path`` — that is the
        forwarded-RELOAD case, where :meth:`reload_shard` re-synced
        inside the same swap and the push would only repeat the work.
        A failed re-fetch leaves the current view serving; the next
        push (or a front-end RELOAD) tries again.
        """
        try:
            async with self._swap_lock:
                current = self.view.shards.get(name)
                backend = getattr(current, "backend", None)
                if backend is None:
                    return
                if getattr(current, "snapshot", "") == path:
                    return
                try:
                    shard = await BackendShard.connect(name, backend)
                    self._check_format(shard)
                except (FederationError, SnapshotError):
                    return
                current.drop_cached_legs()
                self.view = self.view.with_shard(shard)
                self.resyncs += 1
                if self.cache is not None:
                    # a second bump, after the swap: lookups cached
                    # during the push-to-re-sync window were computed
                    # against the outgoing view and must not outlive it
                    self.cache.bump(name)
        finally:
            self._resync_pending.discard(name)

    async def attach(self, name: str, spec: str):
        """Attach (or replace, by name) a shard: a snapshot path or a
        ``host:port`` remote backend spec."""
        async with self._swap_lock:
            shard = await self._open_shard(name, spec)
            old = self.view.shards.get(name)
            self.view = self.view.with_shard(shard)
            self.attaches += 1
            if self.cache is not None:
                self.cache.bump(name)
        if old is not None:
            self._retire(old)
        return shard

    async def detach(self, name: str) -> None:
        """Remove a shard; the remaining shards keep serving.

        A backend shard's connection pool is closed only after the
        view swap, on a background task with a
        :attr:`retire_grace` window: a lookup that pinned the old
        view mid-flight finishes its round trips before the pool
        drains.
        """
        async with self._swap_lock:
            old = self.view.shards.get(name)
            self.view = self.view.without_shard(name)
            self.detaches += 1
            if self.cache is not None:
                self.cache.bump(name)
        self._retire(old)

    async def reload_shard(self, name: str, snapshot_path: str):
        """Hot-swap one shard's snapshot, leaving the others serving.

        The shard must already be attached (ATTACH adds new ones).  A
        failed open leaves the current view intact; in-flight lookups
        keep the view — and therefore every shard generation — they
        started with.  For a **backend shard** the reload is forwarded
        to its daemon (the path names a file on the backend's host)
        and the cached ownership index re-synchronized in the same
        swap.  One honest caveat there: the remote daemon swaps the
        moment it accepts the forwarded reload, so a lookup pinned to
        the outgoing view can reach the daemon during the short
        re-sync window and see new-snapshot legs — the outgoing
        shard's leg cache is cleared (below) so nothing from that
        window outlives it, but remote shards cannot give the perfect
        generation pinning local (in-memory) shards do.
        """
        async with self._swap_lock:
            current = self.view.shards.get(name)
            if current is None:
                raise UnknownShardError(f"no shard named {name!r}")
            backend = getattr(current, "backend", None)
            if backend is not None:
                await backend.reload(snapshot_path)
                try:
                    shard = await BackendShard.connect(name, backend)
                    self._check_format(shard)
                except (FederationError, SnapshotError):
                    # The backend daemon already swapped; serving on
                    # with the OLD cached index against its NEW
                    # snapshot would split-brain the shard.  Best
                    # effort: roll the daemon back to the snapshot
                    # this view still describes, then report the
                    # failure.
                    old_snap = getattr(current, "snapshot", "")
                    if old_snap:
                        try:
                            await backend.reload(old_snap)
                        except FederationError:
                            pass  # daemon gone mid-reload; the next
                            # lookup will surface its health anyway
                    # an in-flight lookup may have cached legs from
                    # the pre-rollback snapshot on the shard we are
                    # keeping — drop them so nothing poisoned persists
                    current.drop_cached_legs()
                    if self.cache is not None:
                        # ... and result-cache entries stitched from
                        # those legs; no swap happened, so only an
                        # explicit bump strands them
                        self.cache.bump(name)
                    raise
                # same window, success path: the outgoing shard stays
                # pinned by in-flight lookups; stale-vs-new mixtures
                # must not survive in its cache either
                current.drop_cached_legs()
            else:
                reader = await asyncio.to_thread(SnapshotReader.open,
                                                 snapshot_path)
                shard = Shard(name, reader, dispatch=self.dispatch)
                self._check_format(shard)
            self.view = self.view.with_shard(shard)
            self.reloads += 1
            if self.cache is not None:
                # after the swap, before the ack: no post-ack request
                # can be answered from a pre-swap cache entry
                self.cache.bump(name)
            return shard

    def stats_line(self) -> str:
        """The one-line ``key=value`` counters the STATS verb returns.

        ``formats`` lists the attached shards' snapshot format
        versions in shard-name order (a per-shard RELOAD can flip
        one); the ``n_<verb>`` counters live on the service and
        survive every view swap.  Remote backends add ``backends=``
        plus one health token per backend —
        ``backend_<name>=<state>:<requests>:<errors>:<connects>`` —
        so an operator sees a bouncing shard daemon from the front
        end's STATS line alone.
        """
        view = self.view
        uptime = time.monotonic() - self.started
        tables = sum(s.source_count for s in view.shards.values())
        formats = view.shard_formats()
        verbs = self.verb_stats()
        backends = [(name, shard.backend)
                    for name, shard in view.shards.items()
                    if getattr(shard, "backend", None) is not None]
        health = "".join(
            f"backend_{name}={backend.health()} "
            for name, backend in backends)
        cache = cache_stats_tokens(self.cache)
        return (f"lookups={self.lookups} hits={self.hits} "
                f"misses={self.misses} federated={self.federated} "
                f"dispatch={self.dispatch} "
                f"n_fsm_hits={self.fsm_hits} "
                f"n_fsm_misses={self.fsm_misses} "
                f"{cache} "
                f"reloads={self.reloads} resyncs={self.resyncs} "
                f"attaches={self.attaches} "
                f"detaches={self.detaches} "
                f"connections={self.connections} "
                f"shards={len(view.shards)} tables={tables} "
                f"formats={formats} "
                f"backends={len(backends)} {health}"
                f"{verbs} "
                f"uptime_sec={uptime:.1f} "
                f"source={self.default_source} "
                f"shard_names={','.join(view.shard_names())}")

    def shards_line(self) -> str:
        """The SHARDS reply: ``<n> <name>=<sources>:<path>`` sorted."""
        view = self.view
        parts = [f"{name}={shard.source_count}:{shard.path}"
                 for name, shard in view.shards.items()]
        return " ".join([str(len(parts))] + parts)

    # -- protocol -------------------------------------------------------------

    async def handle_line(self, line: str, state: dict) -> str | None:
        """One request in, one reply line out (None closes)."""
        parts = line.split(None, 1)
        if not parts:
            return "ERR empty-request send ROUTE/EXACT/SOURCE/SHARDS/" \
                   "ATTACH/DETACH/RELOAD/PIPELINE/STATS/QUIT"
        command = parts[0].upper()
        rest = parts[1] if len(parts) > 1 else ""
        if command == "ROUTE":
            args = rest.split()
            if not args or len(args) > 2:
                return "ERR usage ROUTE <dest> [user]"
            try:
                cost, res = await self.lookup(
                    state["source"], args[0],
                    args[1] if len(args) == 2 else None)
            except FederationError as exc:
                return f"ERR federation {exc}"
            except RouteError:
                return f"ERR noroute {args[0]}"
            except SnapshotError:
                return f"ERR unknown-source {state['source']}"
            return (f"OK {cost} {res.matched} {res.route} "
                    f"{res.address}")
        if command == "EXACT":
            args = rest.split()
            if len(args) != 1:
                return "ERR usage EXACT <dest>"
            try:
                cost, route = await self.exact(state["source"],
                                               args[0])
            except FederationError as exc:
                return f"ERR federation {exc}"
            except RouteError:
                return f"ERR noroute {args[0]}"
            except SnapshotError:
                return f"ERR unknown-source {state['source']}"
            return f"OK {cost} {args[0]} {route}"
        if command == "SOURCE":
            args = rest.split()
            if len(args) != 1:
                return "ERR usage SOURCE <host>"
            home = self.view.home_shard(args[0])
            if home is None:
                return f"ERR unknown-source {args[0]}"
            state["source"] = args[0]
            return f"OK source {args[0]} {home.name}"
        if command == "SHARDS":
            return f"OK {self.shards_line()}"
        if command == "ATTACH":
            args = rest.split()
            if len(args) != 2:
                return "ERR usage ATTACH <name> <snapshot|host:port>"
            try:
                shard = await self.attach(args[0], args[1])
            except (SnapshotError, FederationError) as exc:
                return f"ERR attach {exc}"
            return (f"OK attached {shard.name} {shard.source_count} "
                    f"{shard.path}")
        if command == "DETACH":
            args = rest.split()
            if len(args) != 1:
                return "ERR usage DETACH <name>"
            try:
                await self.detach(args[0])
            except UnknownShardError:
                return f"ERR unknown-shard {args[0]}"
            return f"OK detached {args[0]}"
        if command == "RELOAD":
            args = rest.split()
            if len(args) != 2:
                return "ERR usage RELOAD <shard> <snapshot>"
            try:
                shard = await self.reload_shard(args[0], args[1])
            except UnknownShardError:
                return f"ERR unknown-shard {args[0]}"
            except (SnapshotError, FederationError) as exc:
                # a refused local open, or a backend daemon refusing
                # (or being unreachable for) the forwarded reload
                return f"ERR reload {exc}"
            return (f"OK reloaded {shard.name} {shard.source_count} "
                    f"{shard.path}")
        if command == "PIPELINE":
            if rest.strip():
                return "ERR usage PIPELINE"
            return "OK pipeline 1"
        if command == "STATS":
            return f"OK {self.stats_line()}"
        if command == "QUIT":
            return None
        return f"ERR unknown-command {command}"

    def initial_state(self) -> dict:
        """Each connection starts on the default source."""
        return {"source": self.default_source}


def run_federation_daemon(shards: dict, host: str = "127.0.0.1",
                          port: int = 4176,
                          source: str | None = None,
                          require_format: int | None = None,
                          backends: dict | None = None,
                          pipeline: bool = True,
                          dispatch: str = "fsm",
                          cache_size: int | None = None) -> int:
    """Blocking entry point for ``pathalias serve --shard/--backend``.

    ``shards`` maps names to local snapshot paths, ``backends`` maps
    names to ``host:port`` daemon addresses; the two mix freely.
    ``pipeline=False`` (``--no-pipeline``) keeps the backend
    connections on the lockstep wire protocol.

    The front end itself is one process (its work is stitching, not
    route computation); the CPU-heavy half scales by pointing each
    ``--backend`` at a ``serve --workers N`` pool — the fan-out treats
    a worker pool exactly like a single daemon, including forwarded
    per-shard RELOADs, which the pool applies to every worker before
    acknowledging.
    """

    async def main() -> None:
        service = await FederationService.create(
            shards=shards, backends=backends, default_source=source,
            require_format=require_format, pipeline=pipeline,
            dispatch=dispatch, cache_size=cache_size)
        server = await serve(service, host, port)
        bound = server.sockets[0].getsockname()
        names = ",".join(service.view.shard_names())
        remote = len(backends or {})
        local = len(service.view.shards) - remote
        print(f"pathalias: serve: federating {len(service.view.shards)}"
              f" shard(s) [{names}] ({local} local, {remote} remote "
              f"backend(s)); listening on "
              f"{bound[0]}:{bound[1]}", file=sys.stderr, flush=True)
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("pathalias: serve: interrupted", file=sys.stderr)
    return 0


class FederatedRouteDatabase(DaemonRouteDatabase):
    """A live federation daemon with the ``RouteDatabase`` surface.

    Query methods (``route`` / ``resolve`` / ``resolve_bang`` /
    ``stats``) are inherited unchanged — the federated daemon's reply
    lines are byte-compatible — so a
    :class:`~repro.mailer.router.MailRouter` needs no changes.  The
    additions are the shard-administration verbs.
    """

    def shards(self) -> dict[str, tuple[int, str]]:
        """Attached shards as ``{name: (source_count, snapshot_path)}``."""
        reply = self._request("SHARDS")
        parts = reply.split()
        if len(parts) < 2 or parts[0] != "OK":
            raise RouteError(f"daemon protocol error: {reply!r}")
        out: dict[str, tuple[int, str]] = {}
        for token in parts[2:]:
            name, eq, rest = token.partition("=")
            count, colon, path = rest.partition(":")
            if not eq or not colon or not count.isdigit():
                # e.g. a snapshot path containing whitespace cannot
                # ride the space-delimited reply; fail the documented
                # way rather than with a bare ValueError.
                raise RouteError(f"daemon protocol error: {reply!r}")
            out[name] = (int(count), path)
        return out

    def attach(self, name: str, snapshot_path: str) -> int:
        """Attach (or replace) a shard; returns its source count."""
        reply = self._request(
            f"ATTACH {self._token(name, 'shard')} {snapshot_path}")
        parts = reply.split()
        if len(parts) < 4 or parts[:2] != ["OK", "attached"]:
            raise RouteError(f"daemon refused attach: {reply}")
        return int(parts[3])

    def detach(self, name: str) -> None:
        """Detach the named shard."""
        reply = self._request(f"DETACH {self._token(name, 'shard')}")
        if not reply.startswith("OK detached"):
            raise RouteError(f"daemon refused detach: {reply}")

    def reload_shard(self, name: str, snapshot_path: str) -> int:
        """Hot-swap one shard's snapshot; returns its source count."""
        reply = self._request(
            f"RELOAD {self._token(name, 'shard')} {snapshot_path}")
        parts = reply.split()
        if len(parts) < 4 or parts[:2] != ["OK", "reloaded"]:
            raise RouteError(f"daemon refused reload: {reply}")
        return int(parts[3])
