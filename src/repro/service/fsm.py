"""The compiled suffix automaton behind every domain-suffix dispatch.

The paper's domain lookup procedure — "search ``caip.rutgers.edu``,
then ``.rutgers.edu``, then ``.edu``" — is the hottest per-lookup
operation in the serving tier.  The dict walk
(:class:`~repro.service.resolver.SuffixResolver`) pays for it per
probe: each suffix is a fresh string slice (O(name-length²) character
copies over the walk) plus a full-string hash, and the federation's
ownership dispatch repeats the same walk over its merged index.

This module compiles a key set into a **suffix automaton**: a trie
over the keys' dot-separated labels, consumed right-to-left (TLD
first), with per-state payload slots.  One matcher serves both uses:

* the **route table** dispatch — keys are a table's record names,
  payloads their record indexes (:class:`SnapshotTable
  <repro.service.store.SnapshotTable>` resolves through it);
* the **federation ownership** dispatch — keys are the merged
  source/domain index, payloads rows in an owner table
  (:meth:`FederationView.owners_of
  <repro.service.shard.FederationView.owners_of>` resolves through
  it, and :class:`~repro.service.backend.BackendShard` ships the
  serialized form over the bulk ``TABLE`` machinery).

A match costs one ``split('.')`` plus one small-dict probe per label —
O(labels), independent of key-set size — and is **byte-identical** to
the dict walk: the same key wins, including every degenerate form the
walk accepts (single-label hosts, leading/trailing dots, consecutive
dots — empty labels are real labels here).

Two matcher tiers share one serialized format (the snapshot ``DFSM``
block, see ``docs/snapshot-format.md``):

* :class:`SuffixAutomaton` — the inflated, dict-transition form; the
  serving hot path.
* :class:`FlatSuffixAutomaton` — a zero-copy view over the serialized
  bytes (binary-searched labels and edges); what a mapped snapshot
  hands out without decoding anything, and what :meth:`inflate`
  expands in one linear pass (no trie rebuild, no re-sort).

Serialization is a pure function of the key sequence: the same sorted
keys always produce the same bytes, at any worker count — which is
what lets the incremental updater splice a stored block verbatim
whenever a section's name set is unchanged.
"""

from __future__ import annotations

import struct

from repro.errors import PathaliasError

#: Serialized-block magic (also the snapshot section tag).
FSM_MAGIC = b"DFSM"

#: Serialized-block format number (bumped on layout changes).
FSM_FORMAT = 1

#: Payload-table flag: the named key is a domain (leading-dot) entry.
NAME_F_DOMAIN = 1

#: Block header: magic, format, flags, state count, edge count,
#: interned-label count, payload-name count.
_FSM_HEADER = struct.Struct("<4sHHIIII")

#: One state: first edge index, edge count, exact payload, domain
#: payload (payloads are -1 when the slot is empty).
_FSM_STATE = struct.Struct("<IIii")

#: One transition: interned label id, target state.
_FSM_EDGE = struct.Struct("<II")

#: One interned label: (offset, length) into the trailing blob.
_FSM_LABEL = struct.Struct("<II")

#: One payload-table name: (offset, length, flags) into the blob.
_FSM_NAME = struct.Struct("<III")


class AutomatonError(PathaliasError):
    """A serialized suffix-automaton block is malformed or truncated."""


def _utf8(text: str) -> bytes:
    """The sort key every name/label ordering in this module uses."""
    return text.encode("utf-8")


class SuffixAutomaton:
    """The inflated (dict-transition) matcher — the serving hot path.

    Build one with :func:`compile_keys` (from a key list) or
    :meth:`FlatSuffixAutomaton.inflate` (from stored bytes).  State 0
    is the root; transitions consume the target's labels right to
    left; each state carries an *exact* payload (set when a key's full
    label path ends here) and a *domain* payload (set when a
    leading-dot key's suffix path ends here).
    """

    __slots__ = ("_trans", "_exact", "_domain", "_match_fn")

    def __init__(self, trans, exact, domain):
        self._trans = trans
        self._exact = exact
        self._domain = domain
        # the default compiled matcher closure, built lazily on the
        # first match (see :meth:`matcher`)
        self._match_fn = None

    @property
    def state_count(self) -> int:
        """Number of trie states (root included)."""
        return len(self._trans)

    @property
    def edge_count(self) -> int:
        """Number of label transitions."""
        return sum(len(t) for t in self._trans)

    def match(self, target: str) -> int:
        """The payload of the key the dict walk would match, or -1.

        Replicates :func:`~repro.service.resolver.domain_suffixes`
        semantics exactly: the literal target wins first (the walk's
        first probe hits *any* key equal to the target, leading-dot
        keys included), then the longest proper domain suffix.  A
        leading-dot target never matches itself as its own suffix, and
        empty labels (``a..b``, ``a.``) traverse like any other label.
        """
        fn = self._match_fn
        if fn is None:
            fn = self.matcher()
        return fn(target)

    def matcher(self, payloads=None, default=-1):
        """A compiled matcher closure — what per-call hot paths (the
        federation's owner dispatch, the snapshot resolver) cache and
        call.

        The trie is rebuilt as a linked node graph — each state one
        ``(children, exact, domain)`` tuple, children mapping a label
        straight to the child tuple — so a lookup touches only the
        nodes on its own path: no per-step state-array indexing, and
        deep targets still die at the first label the key set lacks
        (cost O(labels the key set knows), not O(labels given)).

        ``payloads`` optionally maps payload indices to caller
        objects: the closure then answers ``payloads[i]`` instead of
        ``i``, and ``default`` instead of -1 on a miss — the owner
        dispatch stores its ``(key, shard names)`` pairs directly in
        the nodes, so a hit returns the answer with zero post-lookup
        indexing.  The default int form is cached; mapped forms are
        the caller's to cache.
        """
        if payloads is None and default == -1 and \
                self._match_fn is not None:
            return self._match_fn
        trans = self._trans
        exact = self._exact
        domain = self._domain
        n = len(trans)

        def payload(i):
            if i < 0:
                return None
            return i if payloads is None else payloads[i]

        dicts: list = [{} for _ in range(n)]
        nodes = [(dicts[i], payload(exact[i]), payload(domain[i]))
                 for i in range(n)]
        for i, t in enumerate(trans):
            d = dicts[i]
            for label, j in t.items():
                d[label] = nodes[j]
        root = nodes[0]

        def match(target: str):
            node = root
            best = default
            rest = target
            while True:
                head, sep, label = rest.rpartition(".")
                nxt = node[0].get(label)
                if nxt is None:
                    return best
                node = nxt
                if not sep:
                    # consumed the leading label: the exact slot is
                    # the walk's literal first probe
                    p = node[1]
                    return best if p is None else p
                if head:
                    # a proper suffix remains to the left, so this
                    # state's domain key (if any) is probed; when head
                    # is empty the rest is the leading-dot target's
                    # own tail, which the walk never probes as a
                    # domain
                    p = node[2]
                    if p is not None:
                        best = p
                rest = head

        if payloads is None and default == -1:
            self._match_fn = match
        return match

    def to_bytes(self, names=None) -> bytes:
        """Serialize into the flat ``DFSM`` block layout.

        ``names`` optionally embeds a payload table — ``(name, flags)``
        pairs in payload order — making the block self-contained (the
        wire-shipped ownership form); omitted for snapshot table
        blocks, whose payloads index the section's own ``RECS``
        records.  Output is a pure function of the compiled key
        sequence: deterministic, byte-for-byte.
        """
        label_set = set()
        for t in self._trans:
            label_set.update(t)
        labels = sorted(label_set, key=_utf8)
        label_id = {lab: i for i, lab in enumerate(labels)}
        blob = bytearray()
        label_refs = []
        for lab in labels:
            raw = _utf8(lab)
            label_refs.append((len(blob), len(raw)))
            blob += raw
        states = []
        edges = []
        for s, t in enumerate(self._trans):
            items = sorted((label_id[lab], tgt) for lab, tgt in t.items())
            states.append((len(edges), len(items),
                           self._exact[s], self._domain[s]))
            edges.extend(items)
        name_refs = []
        for name, flags in (names or ()):
            raw = _utf8(name)
            name_refs.append((len(blob), len(raw), flags))
            blob += raw
        parts = [_FSM_HEADER.pack(FSM_MAGIC, FSM_FORMAT, 0,
                                  len(states), len(edges), len(labels),
                                  len(name_refs))]
        parts += [_FSM_STATE.pack(*st) for st in states]
        parts += [_FSM_EDGE.pack(*e) for e in edges]
        parts += [_FSM_LABEL.pack(*ref) for ref in label_refs]
        parts += [_FSM_NAME.pack(*ref) for ref in name_refs]
        parts.append(bytes(blob))
        return b"".join(parts)


def compile_keys(keys) -> SuffixAutomaton:
    """Compile unique keys (payload = position) into a matcher.

    Each key contributes its full label path as an *exact* entry; a
    leading-dot key additionally contributes its dotless suffix path
    as a *domain* entry — which is exactly the two ways the dict walk
    can hit it.  Pass keys sorted by UTF-8 bytes when the serialized
    form must be deterministic (state numbering follows insertion
    order).
    """
    trans: list = [{}]
    exact = [-1]
    domain = [-1]

    def walk(labels) -> int:
        state = 0
        for lab in reversed(labels):
            nxt = trans[state].get(lab)
            if nxt is None:
                nxt = len(trans)
                trans[state][lab] = nxt
                trans.append({})
                exact.append(-1)
                domain.append(-1)
            state = nxt
        return state

    for idx, key in enumerate(keys):
        exact[walk(key.split("."))] = idx
        if key.startswith("."):
            domain[walk(key[1:].split("."))] = idx
    return SuffixAutomaton(trans, exact, domain)


class FlatSuffixAutomaton:
    """A zero-copy matcher over a serialized ``DFSM`` block.

    Holds only a buffer (bytes or a :class:`memoryview` into a mapped
    snapshot) plus the section offsets from the header — nothing is
    decoded up front.  :meth:`match` binary-searches the interned
    label table and each state's edge range in place; :meth:`inflate`
    expands the block into the dict-transition hot-path form with one
    linear pass.
    """

    __slots__ = ("_data", "state_count", "edge_count", "label_count",
                 "name_count", "_states_off", "_edges_off",
                 "_labels_off", "_names_off", "_blob_off")

    def __init__(self, data):
        """Parse and bounds-check the block header over ``data``."""
        try:
            (magic, fmt, _flags, self.state_count, self.edge_count,
             self.label_count,
             self.name_count) = _FSM_HEADER.unpack_from(data, 0)
        except struct.error as exc:
            raise AutomatonError(
                f"automaton block malformed: {exc}") from None
        if magic != FSM_MAGIC:
            raise AutomatonError(
                "automaton block malformed: bad magic")
        if fmt != FSM_FORMAT:
            raise AutomatonError(
                f"automaton block format {fmt} unsupported "
                f"(this reader speaks {FSM_FORMAT})")
        self._data = data
        self._states_off = _FSM_HEADER.size
        self._edges_off = (self._states_off
                           + self.state_count * _FSM_STATE.size)
        self._labels_off = (self._edges_off
                            + self.edge_count * _FSM_EDGE.size)
        self._names_off = (self._labels_off
                           + self.label_count * _FSM_LABEL.size)
        self._blob_off = (self._names_off
                          + self.name_count * _FSM_NAME.size)
        if self._blob_off > len(data) or self.state_count == 0:
            raise AutomatonError(
                f"automaton block truncated (tables end at "
                f"{self._blob_off}, block is {len(data)} bytes)")

    def _label_bytes(self, i: int):
        """The i-th interned label's raw bytes (a buffer slice)."""
        off, length = _FSM_LABEL.unpack_from(
            self._data, self._labels_off + i * _FSM_LABEL.size)
        base = self._blob_off + off
        return self._data[base:base + length]

    def _label_id(self, label: str) -> int:
        """Binary-search the sorted label table; -1 when absent."""
        key = _utf8(label)
        lo, hi = 0, self.label_count
        while lo < hi:
            mid = (lo + hi) // 2
            if bytes(self._label_bytes(mid)) < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < self.label_count and self._label_bytes(lo) == key:
            return lo
        return -1

    def _state(self, s: int):
        """The i-th state tuple (edge_start, edge_count, exact, domain)."""
        return _FSM_STATE.unpack_from(
            self._data, self._states_off + s * _FSM_STATE.size)

    def _step(self, state: int, label_id: int) -> int:
        """Follow ``state``'s transition on ``label_id``, or -1."""
        start, count, _, _ = self._state(state)
        lo, hi = start, start + count
        while lo < hi:
            mid = (lo + hi) // 2
            lid, target = _FSM_EDGE.unpack_from(
                self._data, self._edges_off + mid * _FSM_EDGE.size)
            if lid < label_id:
                lo = mid + 1
            elif lid > label_id:
                hi = mid
            else:
                return target
        return -1

    def match(self, target: str) -> int:
        """The matched key's payload, or -1 — same contract (and same
        answers, differentially tested) as
        :meth:`SuffixAutomaton.match`, straight off the stored bytes."""
        labels = target.split(".")
        n = len(labels)
        dmax = n - 2 if labels[0] == "" else n - 1
        state = 0
        best = -1
        d = 0
        for i in range(n - 1, -1, -1):
            lid = self._label_id(labels[i])
            if lid < 0:
                state = -1
                break
            state = self._step(state, lid)
            if state < 0:
                break
            d += 1
            if d <= dmax:
                payload = self._state(state)[3]
                if payload >= 0:
                    best = payload
        if state >= 0 and d == n:
            payload = self._state(state)[2]
            if payload >= 0:
                return payload
        return best

    def names(self) -> list:
        """The embedded payload table as ``(name, flags)`` pairs in
        payload order (empty for table blocks, which index their
        section's own records instead)."""
        data = self._data
        out = []
        for i in range(self.name_count):
            off, length, flags = _FSM_NAME.unpack_from(
                data, self._names_off + i * _FSM_NAME.size)
            base = self._blob_off + off
            out.append((str(data[base:base + length], "utf-8"), flags))
        return out

    def inflate(self) -> SuffixAutomaton:
        """Expand into the dict-transition hot-path matcher.

        One linear pass over the stored arrays — decode the interned
        labels once, then wire each state's edges into a dict — with
        no trie construction and no sorting, which is what makes
        opening a precompiled snapshot much cheaper than recompiling
        its key set.
        """
        data = self._data
        labels = [str(self._label_bytes(i), "utf-8")
                  for i in range(self.label_count)]
        trans = []
        exact = []
        domain = []
        for s in range(self.state_count):
            start, count, ex, dom = self._state(s)
            t = {}
            for e in range(start, start + count):
                lid, target = _FSM_EDGE.unpack_from(
                    data, self._edges_off + e * _FSM_EDGE.size)
                t[labels[lid]] = target
            trans.append(t)
            exact.append(ex)
            domain.append(dom)
        return SuffixAutomaton(trans, exact, domain)


def load(data) -> FlatSuffixAutomaton:
    """Open serialized block bytes as a zero-copy flat matcher."""
    return FlatSuffixAutomaton(data)
