"""Diff-driven snapshot updates: remap only what a revision touched.

Every monthly map posting forced sites to rerun pathalias from
scratch, even though most revisions touch a handful of links.  Given
the previous snapshot and the new map, this module

1. diffs the stored compact graph against the freshly compiled one
   (:func:`repro.netsim.mapdiff.diff_link_maps` over link-cost maps
   reconstructed from both);
2. if the revision is *pure NORMAL-link cost changes* on an otherwise
   identical topology, computes the **affected-source set** — sources
   whose recorded shortest-path tree leaned on a changed link, plus
   (for cost decreases) sources where the cheaper link could open a
   better-or-equal path, judged by the triangle test
   ``cost(s, from) + new_cost <= cost(s, to)`` (ties count: an
   equal-cost path can win the label by relaxation order and change
   the route text);
3. remaps only those sources (fanning out over the batch pool) and
   splices every other source's table section out of the old snapshot
   **verbatim** — the output is byte-identical to a from-scratch
   rebuild;
4. falls back to a full rebuild whenever the incremental path cannot
   be proven equivalent.

With a **format-v2** snapshot the triangle test runs on the stored
per-state costs (the ``STAT`` block): exact final costs for every
state of every node — nets, domains, private shadows, and both
second-best domain classes included — so the only remaining full
fallbacks are topology changes, negative link costs, a requested
format change, and the ``full_threshold`` economy cut-off.  A v1
snapshot has no per-state costs, so the historical conservative
fallbacks remain for it: second-best snapshots and changed links
touching nets, domains, or private nodes remap fully.

The conservative direction is always "remap more": a source wrongly
counted as affected costs one redundant (identical) remap; a source
wrongly skipped would corrupt the store.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import HeuristicConfig
from repro.core.batch import map_sources
from repro.graph.build import Graph
from repro.graph.compact import CompactGraph, K_NORMAL
from repro.netsim.mapdiff import MapDiff, diff_link_maps
from repro.service.store import (
    FLAG_CASE_FOLD,
    FLAG_SECOND_BEST,
    SnapshotReader,
    build_snapshot,
    eligible_sources,
    encode_graph_section,
    encode_meta_section,
    encode_table_section,
    payload_for_format,
    write_snapshot,
)


@dataclass
class UpdateReport:
    """What an update did and why."""

    mode: str                 # "incremental" | "full"
    reason: str               # why this mode was chosen
    diff: MapDiff | None      # NORMAL-link view of the revision
    total_sources: int = 0
    remapped: list[str] = field(default_factory=list)
    reused: int = 0
    engine: str = ""
    seconds: float = 0.0
    out_path: Path | None = None
    heuristics: HeuristicConfig | None = None
    format: int = 2           # snapshot format version written

    def summary(self) -> str:
        """One human-readable line: mode, reason, remap/reuse counts."""
        base = (f"{self.mode} update ({self.reason}): "
                f"{len(self.remapped)}/{self.total_sources} sources "
                f"remapped, {self.reused} reused (format v{self.format})")
        if self.diff is not None:
            base += f"; map diff: {self.diff.summary()}"
        return base


def compact_link_costs(cg: CompactGraph) -> dict[tuple[str, str], int]:
    """NORMAL link costs keyed by (from, to); cheapest if parallel.

    The array-level mirror of ``mapdiff._link_costs`` so a stored
    snapshot can be diffed without rehydrating ``Node`` objects.
    """
    out: dict[tuple[str, str], int] = {}
    for cid in range(cg.n):
        if cg.private[cid]:
            continue
        for j in range(cg.off[cid], cg.off[cid + 1]):
            if cg.kind[j] != K_NORMAL:
                continue
            key = (cg.names[cid], cg.names[cg.to[j]])
            cost = cg.cost[j]
            if key not in out or cost < out[key]:
                out[key] = cost
    return out


def compact_hosts(cg: CompactGraph) -> set[str]:
    """Public node names (mirrors the host universe of diff_graphs)."""
    return {cg.names[cid] for cid in range(cg.n) if not cg.private[cid]}


def diff_compact_graphs(old: CompactGraph, new: CompactGraph) -> MapDiff:
    """The mapdiff structural view between two compiled graphs."""
    return diff_link_maps(compact_hosts(old), compact_hosts(new),
                          compact_link_costs(old),
                          compact_link_costs(new))


def _cost_only_changes(old: CompactGraph,
                       new: CompactGraph) -> list[int] | None:
    """Link ids whose cost changed, if that is the *only* difference.

    Returns None when the graphs differ in any structural way — node
    set, flags, kinds, operators, link order, or the cost of a
    non-NORMAL link — in which case the caller must rebuild fully.
    With identical structure, link ids line up one-to-one between the
    two graphs, so per-link comparison is exact (parallel links
    included, which the name-keyed mapdiff view cannot distinguish).
    """
    if (old.n != new.n or old.names != new.names
            or old.is_domain != new.is_domain
            or old.is_net != new.is_net
            or old.netlike != new.netlike
            or old.private != new.private
            or old.off != new.off or old.to != new.to
            or old.flags != new.flags or old.kind != new.kind
            or old.op != new.op):
        return None
    changed = []
    for j, (c_old, c_new) in enumerate(zip(old.cost, new.cost)):
        if c_old != c_new:
            if new.kind[j] != K_NORMAL:
                return None
            changed.append(j)
    return changed


def _link_owner(cg: CompactGraph, j: int) -> int:
    """Compact id of the node whose CSR slice contains link ``j``."""
    lo, hi = 0, cg.n
    while lo < hi:
        mid = (lo + hi) // 2
        if cg.off[mid + 1] <= j:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _changed_link_facts(reader: SnapshotReader, new_cg: CompactGraph,
                        changed: list[int]):
    """Per-changed-link tuples for the affected-source scans, or None
    when a negative cost (either side) makes any triangle test
    unsound."""
    old_cg = reader.decode_graph()
    links = []
    for j in changed:
        u = _link_owner(new_cg, j)
        v = new_cg.to[j]
        c_old, c_new = old_cg.cost[j], new_cg.cost[j]
        if c_old < 0 or c_new < 0:
            return None
        links.append((u, v, new_cg.names[u], new_cg.names[v],
                      c_old, c_new))
    return links


def affected_sources(reader: SnapshotReader, new_cg: CompactGraph,
                     changed: list[int]) -> list[str] | None:
    """Sources whose tables could differ after the cost changes — the
    **v1** analysis over route records only.

    Returns None when the triangle test cannot be trusted for some
    changed link (an endpoint that is a net, domain, or private node,
    or a negative cost on either side) — callers rebuild fully.  A v2
    snapshot stores the per-state costs those cases need; see
    :func:`affected_sources_exact`.
    """
    links = _changed_link_facts(reader, new_cg, changed)
    if links is None:
        return None
    for u, v, _, _, c_old, c_new in links:
        if c_new < c_old and (
                new_cg.netlike[u] or new_cg.private[u]
                or new_cg.netlike[v] or new_cg.private[v]):
            # A cheaper link into or out of a placeholder or private
            # node: its costs are not in the stored route records, so
            # the triangle test has nothing to stand on.
            return None

    affected = []
    for source in reader.sources():
        table = reader.table(source)
        pairs = table.tree_links()
        for _, _, u_name, v_name, c_old, c_new in links:
            if (u_name, v_name) in pairs:
                affected.append(source)
                break
            if c_new < c_old:
                # The cheaper edge can change this source if it opens
                # a path to its head that is better *or equal*: an
                # exact tie can still steal the label by relaxation
                # order (the earlier labeler wins under strict-<
                # decrease) and change the route text at the same
                # cost.  Unknown cost to the tail is conservative (a
                # host displayed under a domain name, say): count it
                # affected.
                cu = table.cost(u_name)
                cv = table.cost(v_name)
                if cu is None or cv is None or cu + c_new <= cv:
                    affected.append(source)
                    break
    return affected


def affected_sources_exact(reader: SnapshotReader,
                           new_cg: CompactGraph,
                           changed: list[int]) -> list[str] | None:
    """The **v2** affected-source analysis over stored per-state costs.

    Two screens per (source, changed link), both exact:

    * **tree usage** — the stored tree-link pairs say whether this
      source's shortest-path tree (any state, either second-best
      domain class, invented-back-link seeds included) leaned on the
      link; if so, its table must be remapped;
    * **triangle test** — for a cost *decrease* on ``u -> v``, the
      stored state costs answer ``cost(s, u) + new_cost <=
      cost(s, v)`` exactly, per state: the candidate path relaxes
      ``u``'s state into the ``v`` state whose domain class is
      ``class(u) | is_domain(v)``, mirroring the mapper's own
      transition.  Dynamic penalties (mixed syntax, domain relay) only
      ever *add* cost, so using the bare link cost is a lower bound —
      a source counted affected by it at worst remaps to an identical
      section.

    Nets, domains, private shadows, and second-best snapshots all have
    their states stored, so none of them force a full rebuild here.
    Returns None only for negative link costs (Dijkstra's preconditions
    are gone — rebuild fully).
    """
    links = _changed_link_facts(reader, new_cg, changed)
    if links is None:
        return None
    second = reader.second_best
    classes = (0, 1) if second else (0,)
    is_domain = new_cg.is_domain

    affected = []
    for source in reader.sources():
        table = reader.table(source)
        pairs = table.tree_links()
        states = None
        hit = False
        for u, v, u_name, v_name, c_old, c_new in links:
            if (u_name, v_name) in pairs:
                hit = True
                break
            if c_new >= c_old:
                # An increase on a link no stored state's path used
                # cannot move any label (costs are non-negative and
                # ties already resolved against it).
                continue
            if states is None:
                states = table.state_cost_map()
            for dclass in classes:
                cu = states.get((u, dclass))
                if cu is None:
                    # This state of u is unreachable from the source;
                    # reachability is cost-independent, so the cheaper
                    # link cannot open a path through it.
                    continue
                vclass = (dclass | is_domain[v]) if second else 0
                cv = states.get((v, vclass))
                if cv is None or cu + c_new <= cv:
                    hit = True
                    break
            if hit:
                break
        if hit:
            affected.append(source)
    return affected


def update_snapshot(old: str | Path | SnapshotReader,
                    new_graph: Graph | CompactGraph,
                    out_path: str | Path,
                    jobs: int | None = None,
                    full_threshold: float = 0.5,
                    case_fold: bool | None = None,
                    fmt: int | None = None) -> UpdateReport:
    """Produce the snapshot for ``new_graph`` at ``out_path``, reusing
    the old snapshot's table sections wherever the revision provably
    cannot have changed them.

    ``old`` is a snapshot path or an already-open
    :class:`SnapshotReader` (callers that read the header flags before
    building the revision graph should pass their reader rather than
    pay a second full-file read and CRC).  The heuristic configuration
    is taken from the old snapshot (the tables must be mapped
    consistently); ``case_fold`` overrides the recorded folding flag
    when the caller parsed the revision differently (the CLI's ``-i``)
    so the output header stays truthful.  ``full_threshold`` is the
    affected fraction beyond which incremental splicing loses to a
    plain rebuild.  ``fmt`` selects the output format (default: the
    old snapshot's own format; asking for a different one forces a
    full rebuild, since sections cannot be spliced across layouts —
    this is how ``pathalias update --format 2`` upgrades in passing).
    Output bytes are identical to ``build_snapshot(new_graph,
    out_path, heuristics=old.heuristics(), case_fold=..., fmt=...)``
    in every mode.
    """
    t0 = time.perf_counter()
    reader = old if isinstance(old, SnapshotReader) \
        else SnapshotReader.open(old)
    out_fmt = reader.version if fmt is None else fmt
    cfg = reader.heuristics()
    fold = reader.case_fold if case_fold is None else case_fold
    out_flags = (FLAG_SECOND_BEST if cfg.second_best else 0) \
        | (FLAG_CASE_FOLD if fold else 0)
    new_cg = new_graph if isinstance(new_graph, CompactGraph) \
        else CompactGraph.compile(new_graph)
    diff = diff_compact_graphs(reader.decode_graph(), new_cg)

    def full(reason: str) -> UpdateReport:
        info = build_snapshot(new_cg, out_path, heuristics=cfg,
                              jobs=jobs, case_fold=fold, fmt=out_fmt)
        return UpdateReport(
            mode="full", reason=reason, diff=diff,
            total_sources=len(info.sources),
            remapped=list(info.sources), reused=0, engine=info.engine,
            seconds=time.perf_counter() - t0,
            out_path=Path(out_path), heuristics=cfg, format=out_fmt)

    if out_fmt != reader.version:
        return full(f"format change (v{reader.version} -> "
                    f"v{out_fmt})")
    changed = _cost_only_changes(reader.decode_graph(), new_cg)
    if changed is None:
        return full("topology changed")
    if reader.has_state_costs:
        affected = affected_sources_exact(reader, new_cg, changed)
        if affected is None:
            return full("negative link cost")
    else:
        if reader.second_best or cfg.second_best:
            return full("second-best v1 snapshots store no per-state "
                        "costs; remapping fully (upgrade to v2)")
        affected = affected_sources(reader, new_cg, changed)
        if affected is None:
            return full("changed link touches a net, domain, private "
                        "node, or negative cost (v1 snapshot stores "
                        "no per-state costs; upgrade to v2)")
    sources = eligible_sources(new_cg)
    if sources != reader.sources():
        # Cannot happen when the structural guard passed, but the
        # splice below depends on it, so verify rather than assume.
        return full("eligible source set changed")
    if len(affected) > full_threshold * len(sources):
        return full(f"{len(affected)}/{len(sources)} sources affected "
                    f"(threshold {full_threshold:.0%})")

    payloads, engine = map_sources(new_cg, affected,
                                   payload_for_format(out_fmt),
                                   cfg, jobs)

    def reusable_dfsm(source: str, records) -> bytes | None:
        """The old section's compiled-dispatch block, when the record
        name set is unchanged (always, for a cost-only revision:
        reachability is cost-independent).  The block is a pure
        function of the sorted names, so splicing it skips the
        recompile while staying byte-identical to one."""
        if out_fmt == 1:
            return None
        old_table = reader.table(source)
        stored = old_table.dfsm_bytes()
        if stored is None:
            return None
        names = sorted((name for _, name, _ in records),
                       key=lambda n: n.encode("utf-8"))
        if names != old_table.record_names():
            return None
        return stored

    fresh = {
        source: encode_table_section(records, unreachable, pairs,
                                     states, fmt=out_fmt,
                                     dfsm=reusable_dfsm(source, records))
        for source, (records, unreachable, pairs, states)
        in zip(affected, payloads)}
    table_sections = [
        (source, fresh[source] if source in fresh
         else reader.table_bytes(source))
        for source in sources]
    write_snapshot(
        out_path, encode_graph_section(new_cg),
        encode_meta_section(cfg), table_sections,
        flags=out_flags, fmt=out_fmt)
    reason = ("no route-relevant changes" if not changed
              else f"{len(changed)} link cost change(s)")
    return UpdateReport(
        mode="incremental", reason=reason, diff=diff,
        total_sources=len(sources), remapped=list(affected),
        reused=len(sources) - len(affected), engine=engine,
        seconds=time.perf_counter() - t0, out_path=Path(out_path),
        heuristics=cfg, format=out_fmt)
