"""Diff-driven snapshot updates: remap only what a revision touched.

Every monthly map posting forced sites to rerun pathalias from
scratch, even though most revisions touch a handful of links.  Given
the previous snapshot and the new map, this module

1. diffs the stored compact graph against the freshly compiled one
   (:func:`repro.netsim.mapdiff.diff_link_maps` over link-cost maps
   reconstructed from both);
2. if the revision is *pure NORMAL-link cost changes* on an otherwise
   identical topology, computes the **affected-source set** — sources
   whose recorded shortest-path tree leaned on a changed link, plus
   (for cost decreases) sources where the cheaper link could open a
   better-or-equal path, judged by the triangle test
   ``cost(s, from) + new_cost <= cost(s, to)`` over the stored tables
   (ties count: an equal-cost path can win the label by relaxation
   order and change the route text);
3. remaps only those sources (fanning out over the batch pool) and
   splices every other source's table section out of the old snapshot
   **verbatim** — the output is byte-identical to a from-scratch
   rebuild;
4. falls back to a full rebuild whenever the incremental path cannot
   be proven equivalent: topology changes (hosts or links added or
   removed, kind or flag or operator changes), second-best snapshots
   (their two-label states break the triangle test), negative link
   costs, changed links touching nets, domains, or private nodes, or
   an affected set above ``full_threshold``.

The conservative direction is always "remap more": a source wrongly
counted as affected costs one redundant (identical) remap; a source
wrongly skipped would corrupt the store.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import HeuristicConfig
from repro.core.batch import map_sources
from repro.graph.build import Graph
from repro.graph.compact import CompactGraph, K_NORMAL
from repro.netsim.mapdiff import MapDiff, diff_link_maps
from repro.service.store import (
    FLAG_CASE_FOLD,
    FLAG_SECOND_BEST,
    SnapshotReader,
    build_snapshot,
    eligible_sources,
    encode_graph_section,
    encode_meta_section,
    encode_table_section,
    snapshot_payload,
    write_snapshot,
)


@dataclass
class UpdateReport:
    """What an update did and why."""

    mode: str                 # "incremental" | "full"
    reason: str               # why this mode was chosen
    diff: MapDiff | None      # NORMAL-link view of the revision
    total_sources: int = 0
    remapped: list[str] = field(default_factory=list)
    reused: int = 0
    engine: str = ""
    seconds: float = 0.0
    out_path: Path | None = None
    heuristics: HeuristicConfig | None = None

    def summary(self) -> str:
        """One human-readable line: mode, reason, remap/reuse counts."""
        base = (f"{self.mode} update ({self.reason}): "
                f"{len(self.remapped)}/{self.total_sources} sources "
                f"remapped, {self.reused} reused")
        if self.diff is not None:
            base += f"; map diff: {self.diff.summary()}"
        return base


def compact_link_costs(cg: CompactGraph) -> dict[tuple[str, str], int]:
    """NORMAL link costs keyed by (from, to); cheapest if parallel.

    The array-level mirror of ``mapdiff._link_costs`` so a stored
    snapshot can be diffed without rehydrating ``Node`` objects.
    """
    out: dict[tuple[str, str], int] = {}
    for cid in range(cg.n):
        if cg.private[cid]:
            continue
        for j in range(cg.off[cid], cg.off[cid + 1]):
            if cg.kind[j] != K_NORMAL:
                continue
            key = (cg.names[cid], cg.names[cg.to[j]])
            cost = cg.cost[j]
            if key not in out or cost < out[key]:
                out[key] = cost
    return out


def compact_hosts(cg: CompactGraph) -> set[str]:
    """Public node names (mirrors the host universe of diff_graphs)."""
    return {cg.names[cid] for cid in range(cg.n) if not cg.private[cid]}


def diff_compact_graphs(old: CompactGraph, new: CompactGraph) -> MapDiff:
    """The mapdiff structural view between two compiled graphs."""
    return diff_link_maps(compact_hosts(old), compact_hosts(new),
                          compact_link_costs(old),
                          compact_link_costs(new))


def _cost_only_changes(old: CompactGraph,
                       new: CompactGraph) -> list[int] | None:
    """Link ids whose cost changed, if that is the *only* difference.

    Returns None when the graphs differ in any structural way — node
    set, flags, kinds, operators, link order, or the cost of a
    non-NORMAL link — in which case the caller must rebuild fully.
    With identical structure, link ids line up one-to-one between the
    two graphs, so per-link comparison is exact (parallel links
    included, which the name-keyed mapdiff view cannot distinguish).
    """
    if (old.n != new.n or old.names != new.names
            or old.is_domain != new.is_domain
            or old.is_net != new.is_net
            or old.netlike != new.netlike
            or old.private != new.private
            or old.off != new.off or old.to != new.to
            or old.flags != new.flags or old.kind != new.kind
            or old.op != new.op):
        return None
    changed = []
    for j, (c_old, c_new) in enumerate(zip(old.cost, new.cost)):
        if c_old != c_new:
            if new.kind[j] != K_NORMAL:
                return None
            changed.append(j)
    return changed


def _link_owner(cg: CompactGraph, j: int) -> int:
    """Compact id of the node whose CSR slice contains link ``j``."""
    lo, hi = 0, cg.n
    while lo < hi:
        mid = (lo + hi) // 2
        if cg.off[mid + 1] <= j:
            lo = mid + 1
        else:
            hi = mid
    return lo


def affected_sources(reader: SnapshotReader, new_cg: CompactGraph,
                     changed: list[int]) -> list[str] | None:
    """Sources whose tables could differ after the cost changes.

    Returns None when the triangle test cannot be trusted for some
    changed link (an endpoint that is a net, domain, or private node,
    or a negative cost on either side) — callers rebuild fully.
    """
    old_cg = reader.decode_graph()
    links = []
    for j in changed:
        u = _link_owner(new_cg, j)
        v = new_cg.to[j]
        c_old, c_new = old_cg.cost[j], new_cg.cost[j]
        if c_old < 0 or c_new < 0:
            return None
        if c_new < c_old and (
                new_cg.netlike[u] or new_cg.private[u]
                or new_cg.netlike[v] or new_cg.private[v]):
            # A cheaper link into or out of a placeholder or private
            # node: its costs are not in the stored tables, so the
            # triangle test has nothing to stand on.
            return None
        links.append((new_cg.names[u], new_cg.names[v], c_old, c_new))

    affected = []
    for source in reader.sources():
        table = reader.table(source)
        pairs = table.tree_links()
        for u_name, v_name, c_old, c_new in links:
            if (u_name, v_name) in pairs:
                affected.append(source)
                break
            if c_new < c_old:
                # The cheaper edge can change this source if it opens
                # a path to its head that is better *or equal*: an
                # exact tie can still steal the label by relaxation
                # order (the earlier labeler wins under strict-<
                # decrease) and change the route text at the same
                # cost.  Unknown cost to the tail is conservative (a
                # host displayed under a domain name, say): count it
                # affected.
                cu = table.cost(u_name)
                cv = table.cost(v_name)
                if cu is None or cv is None or cu + c_new <= cv:
                    affected.append(source)
                    break
    return affected


def update_snapshot(old: str | Path | SnapshotReader,
                    new_graph: Graph | CompactGraph,
                    out_path: str | Path,
                    jobs: int | None = None,
                    full_threshold: float = 0.5,
                    case_fold: bool | None = None) -> UpdateReport:
    """Produce the snapshot for ``new_graph`` at ``out_path``, reusing
    the old snapshot's table sections wherever the revision provably
    cannot have changed them.

    ``old`` is a snapshot path or an already-open
    :class:`SnapshotReader` (callers that read the header flags before
    building the revision graph should pass their reader rather than
    pay a second full-file read and CRC).  The heuristic configuration
    is taken from the old snapshot (the tables must be mapped
    consistently); ``case_fold`` overrides the recorded folding flag
    when the caller parsed the revision differently (the CLI's ``-i``)
    so the output header stays truthful.  ``full_threshold`` is the
    affected fraction beyond which incremental splicing loses to a
    plain rebuild.  Output bytes are identical to
    ``build_snapshot(new_graph, out_path, heuristics=old.heuristics(),
    case_fold=...)`` in every mode.
    """
    t0 = time.perf_counter()
    reader = old if isinstance(old, SnapshotReader) \
        else SnapshotReader.open(old)
    cfg = reader.heuristics()
    fold = reader.case_fold if case_fold is None else case_fold
    out_flags = (FLAG_SECOND_BEST if cfg.second_best else 0) \
        | (FLAG_CASE_FOLD if fold else 0)
    new_cg = new_graph if isinstance(new_graph, CompactGraph) \
        else CompactGraph.compile(new_graph)
    diff = diff_compact_graphs(reader.decode_graph(), new_cg)

    def full(reason: str) -> UpdateReport:
        info = build_snapshot(new_cg, out_path, heuristics=cfg,
                              jobs=jobs, case_fold=fold)
        return UpdateReport(
            mode="full", reason=reason, diff=diff,
            total_sources=len(info.sources),
            remapped=list(info.sources), reused=0, engine=info.engine,
            seconds=time.perf_counter() - t0,
            out_path=Path(out_path), heuristics=cfg)

    if reader.second_best or cfg.second_best:
        return full("second-best snapshots always remap fully")
    changed = _cost_only_changes(reader.decode_graph(), new_cg)
    if changed is None:
        return full("topology changed")
    affected = affected_sources(reader, new_cg, changed)
    if affected is None:
        return full("changed link touches a net, domain, private "
                    "node, or negative cost")
    sources = eligible_sources(new_cg)
    if sources != reader.sources():
        # Cannot happen when the structural guard passed, but the
        # splice below depends on it, so verify rather than assume.
        return full("eligible source set changed")
    if len(affected) > full_threshold * len(sources):
        return full(f"{len(affected)}/{len(sources)} sources affected "
                    f"(threshold {full_threshold:.0%})")

    payloads, engine = map_sources(new_cg, affected, snapshot_payload,
                                   cfg, jobs)
    fresh = {
        source: encode_table_section(records, unreachable, pairs)
        for source, (records, unreachable, pairs)
        in zip(affected, payloads)}
    table_sections = [
        (source, fresh[source] if source in fresh
         else reader.table_bytes(source))
        for source in sources]
    write_snapshot(
        out_path, encode_graph_section(new_cg),
        encode_meta_section(cfg), table_sections,
        flags=out_flags)
    reason = ("no route-relevant changes" if not changed
              else f"{len(changed)} link cost change(s)")
    return UpdateReport(
        mode="incremental", reason=reason, diff=diff,
        total_sources=len(sources), remapped=list(affected),
        reused=len(sources) - len(affected), engine=engine,
        seconds=time.perf_counter() - t0, out_path=Path(out_path),
        heuristics=cfg)
