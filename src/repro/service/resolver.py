"""One resolver contract for every lookup surface.

The serving tier grew four ways to ask "how does mail for *target*
leave *source*?": the in-process snapshot reader
(:class:`repro.service.store.SnapshotTable`), the daemon client
(:class:`repro.service.daemon.DaemonRouteDatabase`), the federation
view (:class:`repro.service.shard.FederationView`), and the mailer's
in-memory table (:class:`repro.mailer.routedb.RouteDatabase`).  Each
re-implemented the paper's domain-suffix search and the ``%s``
instantiation independently; this module collapses them onto one
contract:

* :class:`Resolver` is the *protocol* every lookup surface satisfies —
  ``resolve`` / ``resolve_with_cost`` / ``source_table`` / ``stats`` —
  so a :class:`~repro.mailer.router.MailRouter` (or any caller) can
  swap an in-memory table for a snapshot, a daemon, or a federation
  without changing a line.
* :class:`SuffixResolver` is the *shared implementation* of the
  paper's domain lookup procedure — "search ``caip.rutgers.edu``, then
  ``.rutgers.edu``, then ``.edu``" — over one abstract
  ``lookup(name) -> (cost, route)`` primitive, so the search sequence
  and the relative-address instantiation live in exactly one place.

The :class:`Resolution` record and :func:`domain_suffixes` moved here
from :mod:`repro.mailer.routedb` (which re-exports them unchanged):
the serving tier sits *below* the mailer in the layer map, and the
snapshot store must not import upward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import RouteError


@dataclass(frozen=True)
class Resolution:
    """A successful lookup: which key matched and the final address."""

    target: str      # what the mail was addressed to
    matched: str     # database key that matched (host or domain)
    route: str       # the printf-style route of the match
    address: str     # fully instantiated address


def domain_suffixes(name: str) -> list[str]:
    """The search sequence: exact name, then each domain suffix.

    >>> domain_suffixes("caip.rutgers.edu")
    ['caip.rutgers.edu', '.rutgers.edu', '.edu']
    """
    out = [name]
    start = 1 if name.startswith(".") else 0
    rest = name[start:]
    while "." in rest:
        rest = rest.split(".", 1)[1]
        out.append("." + rest)
    return out


class SuffixResolver:
    """The paper's domain lookup procedure over an abstract ``lookup``.

    Subclasses provide ``lookup(name) -> (cost, route) | None`` — a
    dict probe, a binary search over snapshot bytes, whatever — and
    inherit the whole resolve surface: the suffix walk, the
    gateway-relative instantiation ("on a domain match the format
    argument is ``target!user`` — a route relative to its gateway"),
    and the bang-address form.
    """

    __slots__ = ()

    def lookup(self, name: str) -> tuple[int, str] | None:
        """``(cost, route)`` for an exact key, or None on a miss."""
        raise NotImplementedError

    def resolve_with_cost(self, target: str, user: str = "%s"
                          ) -> tuple[int, Resolution]:
        """Suffix-search ``target``; return the matched record's cost
        alongside the resolution so hot paths need no second search.

        Exact host match: the format argument is the user.  Domain
        match: the argument is ``target!user`` — "a route relative to
        its gateway".
        """
        for key in domain_suffixes(target):
            hit = self.lookup(key)
            if hit is None:
                continue
            cost, route = hit
            argument = user if key == target else f"{target}!{user}"
            return cost, Resolution(
                target=target, matched=key, route=route,
                address=route.replace("%s", argument, 1))
        raise RouteError(f"no route to {target!r}")

    def resolve(self, target: str, user: str = "%s") -> Resolution:
        """Domain-suffix search without the cost (see
        :meth:`resolve_with_cost`)."""
        return self.resolve_with_cost(target, user)[1]

    def resolve_bang(self, bang_address: str) -> Resolution:
        """Resolve ``host!rest`` forms."""
        if "!" not in bang_address:
            raise RouteError(
                f"address {bang_address!r} names no user (expected "
                f"target!user)")
        target, user = bang_address.split("!", 1)
        return self.resolve(target, user)


@runtime_checkable
class Resolver(Protocol):
    """What every lookup surface answers, wherever the bytes live.

    Satisfied (structurally — no inheritance required) by the
    in-process snapshot surface
    (:class:`~repro.service.store.SnapshotResolver`), the daemon
    client (:class:`~repro.service.daemon.DaemonRouteDatabase`), the
    federation surface
    (:class:`~repro.service.shard.FederationResolver` and the
    :class:`~repro.service.federation.FederatedRouteDatabase` client),
    and the mailer's in-memory
    :class:`~repro.mailer.routedb.RouteDatabase`.
    """

    def resolve(self, target: str, user: str = "%s") -> Resolution:
        """Domain-suffix lookup; raises ``RouteError`` on a miss."""
        ...  # pragma: no cover - protocol signature

    def resolve_with_cost(self, target: str, user: str = "%s"
                          ) -> tuple[int, Resolution]:
        """Like :meth:`resolve`, with the mapped cost alongside."""
        ...  # pragma: no cover - protocol signature

    def source_table(self) -> str | None:
        """The source host whose table is searched (None if unbound)."""
        ...  # pragma: no cover - protocol signature

    def stats(self) -> dict:
        """Backend counters as a string-keyed dict."""
        ...  # pragma: no cover - protocol signature
