"""Shards and the federation view: many regional maps, one route space.

The paper computes one site's view of one network map, but real UUCP
deployments stitched many regional maps — backbone, universities,
ARPA — into a single routing picture.  A *shard* is one regional
snapshot under a stable name; a :class:`FederationView` is an
immutable picture over a set of shards that answers the federated
query:

1. **Ownership.**  Each shard contributes its sorted source/domain
   index (:meth:`repro.service.store.SnapshotReader.routing_index`) to
   a merged map from name to owning shards.  A query for
   ``caip.rutgers.edu`` walks the paper's domain-suffix sequence
   (exact name, then ``.rutgers.edu``, then ``.edu``) over the merged
   index; the first — i.e. longest — matching key names the owner
   shard(s).

2. **Gateways.**  A *gateway* is a host that appears in two maps and
   therefore has a route table in both shards (``allegra`` in the
   backbone and the universities map, say).  Crossing from shard A
   into shard B at gateway G costs A's route to G and re-roots the
   rest of the address at B's view of G.

3. **Stitching.**  Route templates are the paper's ``host!%s`` format
   strings with exactly one ``%s``, so concatenation is substitution:
   if A routes the source to G via ``allegra!%s`` and B routes G to
   the destination via ``rutgers-ru!topaz!%s``, the stitched template
   is ``allegra!rutgers-ru!topaz!%s`` — replace the ``%s`` of the
   outer template with the inner template, repeatedly, leaving one
   ``%s`` for the user.  Costs add.

Shard-to-shard transit runs Dijkstra over ``(shard, entry host)``
states, so a destination owned by a shard two gateway hops away is
still stitched (universities -> backbone -> ARPA).  Ties break
deterministically on (cost, gateway crossings, shard name, crossing
path): a cheapest route is the same route on every run.  Cross-shard
costs are the sum of the per-shard mapped costs; inter-shard penalty
interactions (a domain seen in shard A raising relay costs in shard B)
are deliberately not modeled — each shard prices its own region, which
is exactly the independence that lets shards reload separately.

Everything here is immutable after construction: swapping one shard
builds a new :class:`FederationView` (cheap — readers are shared), so
a daemon hot-swaps views by plain attribute assignment while in-flight
lookups keep the view they started with.

The query surface is **async-first**: the stitched Dijkstra awaits
each shard's answers, so a shard backed by a remote daemon process
(:class:`repro.service.backend.BackendShard`) plugs in exactly where
an in-process snapshot does.  Local shards never actually suspend, so
the synchronous wrappers (``resolve_with_cost`` / ``exact``) drive
the coroutine to completion without an event loop — byte-identical
answers, no asyncio required for in-process use.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from heapq import heappop, heappush
from pathlib import Path

from repro.errors import (
    FederationError,
    RouteError,
    UnknownShardError,
)
from repro.service.fsm import SuffixAutomaton, compile_keys
from repro.service.resolver import Resolution, domain_suffixes
from repro.service.store import SnapshotReader

#: Dispatch modes a shard/view can resolve suffixes with: ``fsm`` (the
#: compiled automaton, default) or ``dict`` (the original walk — kept
#: as a live differential oracle, selectable via ``serve --dispatch``).
DISPATCH_MODES = ("fsm", "dict")


def drive_local(coro):
    """Run a coroutine that never actually suspends, synchronously.

    Local shards answer from in-memory snapshot bytes, so the async
    query surface completes on the first ``send`` — no event loop
    needed.  A view containing remote backend shards *does* suspend
    (socket I/O); callers holding one must use the ``a``-prefixed
    coroutine methods from a running event loop instead.
    """
    try:
        coro.send(None)
    except StopIteration as stop:
        return stop.value
    coro.close()
    raise FederationError(
        "view contains remote backend shards; use the async query "
        "surface (aresolve_with_cost/aexact) from an event loop")


class Shard:
    """One regional snapshot under a stable name.

    A thin, immutable wrapper over a
    :class:`~repro.service.store.SnapshotReader`: reloading a shard
    means building a new ``Shard`` around a new reader and swapping it
    into a new :class:`FederationView` — never mutating this one.
    """

    #: Local shards answer from in-memory bytes and never suspend, so
    #: the stitched Dijkstra queries them in place; remote shards
    #: (:class:`repro.service.backend.BackendShard`) override this and
    #: get their answers prefetched speculatively.
    remote = False

    def __init__(self, name: str, reader: SnapshotReader,
                 dispatch: str = "fsm"):
        self.name = name
        self.reader = reader
        self.dispatch = dispatch
        self._sources = reader.sources()
        self._source_set = frozenset(self._sources)
        self._domains = reader.domain_names()

    @classmethod
    def open(cls, name: str, path: str | Path,
             dispatch: str = "fsm") -> "Shard":
        """Open the snapshot at ``path`` as the shard called ``name``."""
        return cls(name, SnapshotReader.open(path), dispatch=dispatch)

    def sources(self) -> list[str]:
        """Hosts with route tables in this shard, in sorted order."""
        return list(self._sources)

    @property
    def source_set(self) -> frozenset:
        """The table-owning hosts as a set (gateway intersection)."""
        return self._source_set

    def domains(self) -> list[str]:
        """Sorted public domain names this shard's map declares."""
        return list(self._domains)

    @property
    def source_count(self) -> int:
        """Number of route tables in this shard."""
        return self.reader.source_count

    @property
    def path(self) -> Path:
        """The snapshot file this shard serves."""
        return self.reader.path

    @property
    def version(self) -> int:
        """The snapshot format version this shard serves."""
        return self.reader.version

    def routing_index(self) -> list[tuple[str, bool]]:
        """The shard's sorted source/domain ownership index (see
        :meth:`repro.service.store.SnapshotReader.routing_index`)."""
        return self.reader.routing_index()

    def has_source(self, source: str) -> bool:
        """Whether this shard holds a table for ``source``."""
        return source in self._source_set

    def table(self, source: str):
        """The decoded route table for ``source`` (see the reader)."""
        return self.reader.table(source)

    def cid_of(self, name: str) -> int | None:
        """Compact id of ``name`` in this shard's stored graph.  The
        graph section decodes once (cached on the reader) and its
        name index is a plain dict, so this is O(1) after first use."""
        return self.reader.decode_graph().find(name)

    def state_cost(self, source: str, target: str) -> int | None:
        """The mapper's exact final cost ``source -> target`` from the
        stored per-state records (format v2), or None when the shard
        is v1 or the target is unreached.

        Keyed by compact id rather than route-record display name, and
        covering nodes the printed records omit entirely (nets,
        domains, private shadows).  The stitched Dijkstra prices
        gateway legs with this number; note that *stitching through* a
        gateway still needs its printed route template, so a gateway
        only reachable under a domain-qualified display name can be
        priced here but not crossed.

        No shadowing ambiguity is possible between the two lookups:
        route records never print private nodes and the graph's name
        index never contains them, so a record named ``target`` and
        this cid-keyed table always describe the same global node.
        """
        return self.reader.state_cost(source, target)

    # -- the async entry-query surface ----------------------------------------
    #
    # The three queries the stitched Dijkstra asks of a shard.  Local
    # shards answer from in-memory bytes and never suspend; a remote
    # BackendShard answers the same three questions over sockets.

    async def route_legs(self, entry: str,
                         gates: list[str]) -> dict[str, tuple[int, str]]:
        """Gateway legs out of ``entry``: ``{gate: (cost, template)}``.

        One batched question per Dijkstra expansion: for every
        candidate gateway, the printed route template from ``entry``
        and its cost — the exact per-state mapper cost where stored
        (format v2), else the printed record's.  Gateways ``entry``
        cannot reach are absent from the answer.
        """
        table = self.table(entry)
        out: dict[str, tuple[int, str]] = {}
        for gate in gates:
            hit = table.lookup(gate)
            if hit is None:
                continue  # gateway unreachable inside this shard
            gate_cost, gate_route = hit
            exact = self.state_cost(entry, gate)
            if exact is not None:
                gate_cost = exact
            out[gate] = (gate_cost, gate_route)
        return out

    async def entry_resolve(self, entry: str, target: str):
        """Domain-suffix lookup of ``target`` in ``entry``'s table:
        ``(cost, relative template, matched key)``, or None on a miss.

        The template is the resolution's *address with the ``%s``
        left in place* — domain-gateway rewriting already applied —
        which is exactly the text the stitcher substitutes.

        Dispatches through the table's compiled automaton, or the
        original dict walk when the shard was opened with
        ``dispatch="dict"`` (the differential-oracle mode).
        """
        table = self.table(entry)
        try:
            if self.dispatch == "dict":
                cost, res = table.resolve_with_cost_dict(target, "%s")
            else:
                cost, res = table.resolve_with_cost(target, "%s")
        except RouteError:
            return None
        return cost, res.address, res.matched

    async def entry_exact(self, entry: str, target: str):
        """Exact-name lookup of ``target`` in ``entry``'s table:
        ``(cost, route template, target)``, or None on a miss."""
        hit = self.table(entry).lookup(target)
        if hit is None:
            return None
        cost, route = hit
        return cost, route, target

    def __repr__(self) -> str:
        return (f"Shard({self.name!r}, {self.source_count} sources, "
                f"{str(self.path)!r})")


@dataclass(frozen=True)
class FederatedResolution:
    """A federated lookup's answer plus how it was stitched.

    ``via`` records the gateway crossings in order as ``(gateway host,
    shard entered)`` pairs — empty for a purely local answer.
    """

    cost: int
    resolution: Resolution
    shard: str                           # shard that answered the final lookup
    via: tuple = ()

    @property
    def federated(self) -> bool:
        """Whether the route crossed at least one shard boundary."""
        return bool(self.via)


class FederationView:
    """An immutable ownership/gateway picture over a set of shards.

    Built once from the current shards; every query pins one view, so
    attaching, detaching, or reloading a shard (which builds a *new*
    view) can never mix two snapshot generations inside one request.
    """

    def __init__(self, shards, dispatch: str = "fsm"):
        ordered = sorted(shards, key=lambda s: s.name)
        self.shards: dict[str, Shard] = {}
        for shard in ordered:
            if shard.name in self.shards:
                raise FederationError(
                    f"duplicate shard name {shard.name!r}")
            self.shards[shard.name] = shard
        owners: dict[str, set] = {}
        for shard in ordered:
            for name, _is_domain in shard.routing_index():
                owners.setdefault(name, set()).add(shard.name)
        self._owners = {name: tuple(sorted(names))
                        for name, names in owners.items()}
        self._dispatch = dispatch
        # the compiled ownership matcher, built lazily on the first
        # suffix dispatch (exact-name surfaces never need it, and a
        # dict-mode view never pays for it)
        self._owner_auto: SuffixAutomaton | None = None
        self._owner_match = None
        self._owner_pairs: list[tuple] | None = None
        self._gateways: dict[tuple[str, str], tuple] = {}
        names = list(self.shards)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                shared = tuple(sorted(
                    self.shards[a].source_set
                    & self.shards[b].source_set))
                self._gateways[(a, b)] = shared
                self._gateways[(b, a)] = shared
        #: every gate out of each shard, to any other — the full leg
        #: set a speculative prefetch over-asks (answers are cached
        #: per (entry, gate), so over-asking never costs a repeat
        #: round trip)
        self._all_gates = {
            name: sorted({g for other in names if other != name
                          for g in self._gateways[(name, other)]})
            for name in names}
        #: whether any shard suspends on sockets — pure-local views
        #: skip prefetch tasks entirely, which is what keeps the sync
        #: drive_local() surface working without an event loop
        self._has_remote = any(getattr(s, "remote", False)
                               for s in self.shards.values())

    # -- structure ------------------------------------------------------------

    def shard_names(self) -> list[str]:
        """Attached shard names, sorted."""
        return list(self.shards)

    def gateways(self, a: str, b: str) -> tuple:
        """Hosts with route tables in both shard ``a`` and shard ``b``."""
        return self._gateways.get((a, b), ())

    @property
    def dispatch(self) -> str:
        """This view's suffix-dispatch mode (``fsm`` or ``dict``)."""
        return self._dispatch

    def _owner_automaton(self) -> SuffixAutomaton:
        """The compiled matcher over the merged ownership index
        (cached): the ``(key, owning shard names)`` answer pairs are
        mapped straight into the matcher's nodes, so a hit *is* the
        answer — no post-lookup indexing."""
        auto = self._owner_auto
        if auto is None:
            keys = sorted(self._owners, key=lambda n: n.encode("utf-8"))
            self._owner_pairs = [(k, self._owners[k]) for k in keys]
            auto = compile_keys(keys)
            self._owner_auto = auto
            self._owner_match = auto.matcher(
                payloads=self._owner_pairs, default=("", ()))
        return auto

    def owners_of(self, target: str) -> tuple[str, tuple]:
        """``(matched key, owning shard names)`` for a destination.

        The paper's domain-suffix dispatch over the merged
        source/domain index: the longest key present wins (the exact
        name beats any suffix).  In ``fsm`` mode — the default — one
        O(labels) automaton match answers; ``dict`` mode walks
        :func:`~repro.service.resolver.domain_suffixes` probe by probe
        (the differential oracle; both are asserted to agree on every
        surface).  Returns ``("", ())`` when no suffix is known to any
        shard.
        """
        if self._dispatch != "dict":
            match = self._owner_match
            if match is None:
                self._owner_automaton()
                match = self._owner_match
            return match(target)
        for key in domain_suffixes(target):
            names = self._owners.get(key)
            if names:
                return key, names
        return "", ()

    def home_shard(self, source: str) -> Shard | None:
        """The shard serving ``source``'s table.

        A gateway host has a table in several shards; the
        lexicographically first shard name wins, deterministically.
        """
        names = self._owners.get(source)
        if not names:
            return None
        for name in names:
            if self.shards[name].has_source(source):
                return self.shards[name]
        return None

    def sources(self) -> list[str]:
        """The union of every shard's table-owning hosts, sorted."""
        out = set()
        for shard in self.shards.values():
            out.update(shard.source_set)
        return sorted(out)

    def shard_formats(self) -> str:
        """Comma-joined per-shard snapshot format versions, in
        shard-name order — the ``formats=`` STATS token."""
        return ",".join(str(s.version) for s in self.shards.values())

    def with_shard(self, shard: Shard) -> "FederationView":
        """A new view with ``shard`` added (or replaced, by name).

        Replacement — the per-shard RELOAD/re-sync path — patches the
        merged structures incrementally instead of rebuilding them
        from every shard: under heavy churn (one shard swapping per
        revision event) the rebuild is the front end's dominant cost,
        and it re-derives an index that changed in exactly one
        shard's entries.  Addition still builds from scratch.
        """
        if shard.name not in self.shards:
            return FederationView(
                list(self.shards.values()) + [shard],
                dispatch=self._dispatch)
        return self._with_replaced(shard)

    def _with_replaced(self, shard: Shard) -> "FederationView":
        """Clone this view with one same-named shard swapped, patching
        ``_owners``/``_gateways``/``_all_gates`` for just that shard's
        entries — byte-equivalent to a full rebuild, O(one shard's
        names) instead of O(every shard's).

        When the replacement's routing index is unchanged (the
        cost-only churn hot path: revisions reprice links without
        renaming hosts), the merged ownership structures — the
        compiled owner automaton included — are *shared* with this
        view, so per-event swap cost stays independent of federation
        size; otherwise the automaton cache resets and recompiles
        lazily on the next suffix dispatch.
        """
        old = self.shards[shard.name]
        view = object.__new__(FederationView)
        view.shards = {name: (shard if name == shard.name else s)
                       for name, s in self.shards.items()}
        view._dispatch = self._dispatch
        old_index = old.routing_index()
        new_index = shard.routing_index()
        if old_index == new_index:
            view._owners = self._owners
            view._owner_auto = self._owner_auto
            view._owner_match = self._owner_match
            view._owner_pairs = self._owner_pairs
        else:
            owners = dict(self._owners)
            for name, _is_domain in old_index:
                names = owners.get(name)
                if names is None:
                    continue
                remaining = tuple(n for n in names if n != shard.name)
                if remaining:
                    owners[name] = remaining
                else:
                    del owners[name]
            for name, _is_domain in new_index:
                names = owners.get(name, ())
                if shard.name not in names:
                    owners[name] = tuple(sorted(names + (shard.name,)))
            view._owners = owners
            view._owner_auto = None
            view._owner_match = None
            view._owner_pairs = None
        gateways = dict(self._gateways)
        for other, other_shard in view.shards.items():
            if other == shard.name:
                continue
            shared = tuple(sorted(
                shard.source_set & other_shard.source_set))
            gateways[(shard.name, other)] = shared
            gateways[(other, shard.name)] = shared
        view._gateways = gateways
        names = list(view.shards)
        view._all_gates = {
            name: sorted({g for other in names if other != name
                          for g in gateways[(name, other)]})
            for name in names}
        view._has_remote = any(getattr(s, "remote", False)
                               for s in view.shards.values())
        return view

    def without_shard(self, name: str) -> "FederationView":
        """A new view with the shard called ``name`` removed."""
        if name not in self.shards:
            raise UnknownShardError(f"no shard named {name!r}")
        return FederationView(
            [s for sname, s in self.shards.items() if sname != name],
            dispatch=self._dispatch)

    # -- the federated query ---------------------------------------------------

    async def _stitch(self, source: str, target: str, owners, resolver):
        """Dijkstra over ``(shard, entry host)`` states.

        ``resolver(shard, entry)`` is an awaitable returning ``(cost,
        template, matched)`` for the final in-shard lookup, or None on
        a miss — local shards answer in place, remote backend shards
        over their socket pool.  Returns the winning ``(cost,
        template, matched, shard name, via)`` with deterministic
        tie-breaks; raises :class:`FederationError` when no gateway
        chain reaches any owner, :class:`RouteError` when owners were
        reached but none resolved the target.

        Gateway legs are priced with the shard's exact per-state
        mapper cost (:meth:`Shard.state_cost`, format v2) rather than
        the printed route record; the numbers coincide where both
        exist, and the state table stays authoritative because it is
        keyed by node, not display name.  (Crossing a gateway still
        requires its printed template — a gateway with no exact-name
        record cannot be stitched through, priced or not.)  Equal-cost
        stitchings tie-break deterministically on
        (crossings, shard name, entry host) in the heap and
        (crossings, owner shard, crossing path, template) among final
        candidates: the same cheapest route wins on every run, on
        every host.

        **Speculation.**  When the view contains remote shards, every
        state *pushed* onto the frontier starts a prefetch task for
        the answers its eventual expansion will need — the full
        gateway-leg set out of that entry, plus the owner-shard
        lookup when the shard owns the target — so sibling frontier
        states fetch concurrently instead of one awaited round trip
        per expansion.  The pop order, candidate set, and tie-breaks
        are untouched (prefetched answers are per-(entry, gate) facts,
        independent of what subset is asked for), so answers stay
        byte-identical to the serial walk; tasks for states never
        expanded are cancelled on exit.  Pure-local views skip all
        task machinery, which is what keeps :func:`drive_local`
        working without an event loop.
        """
        home = self.home_shard(source)
        if home is None:
            raise RouteError(f"source {source!r} is in no shard")
        owner_set = set(owners)
        candidates = []
        best_cost = None
        reached_owner = False
        # heap entries: (cost, crossings, shard, entry, template, via)
        heap = [(0, 0, home.name, source, "%s", ())]
        done = set()
        spec: dict[tuple[str, str], asyncio.Task] = {}

        def prefetch(sname: str, entry: str) -> None:
            # one speculative task per pushed remote state: the full
            # leg set (over-asked: cached per (entry, gate), so the
            # superset costs nothing on repeats) gathered with the
            # owner lookup when this shard will answer for the target
            shard = self.shards[sname]
            if not getattr(shard, "remote", False):
                return
            key = (sname, entry)
            if key in spec or key in done:
                return
            gates = self._all_gates[sname]
            is_owner = sname in owner_set

            async def fetch():
                if is_owner and gates:
                    return await asyncio.gather(
                        shard.route_legs(entry, gates),
                        resolver(shard, entry))
                if is_owner:
                    return {}, await resolver(shard, entry)
                if gates:
                    return await shard.route_legs(entry, gates), None
                return {}, None

            spec[key] = asyncio.get_running_loop().create_task(
                fetch())

        if self._has_remote:
            prefetch(home.name, source)
        try:
            while heap:
                cost, hops, sname, entry, template, via = heappop(heap)
                if best_cost is not None and cost > best_cost:
                    # Costs are non-negative, so no state past this
                    # point can yield a candidate that beats — or
                    # ties — the best one found; equal-cost states
                    # (cost == best) still get explored, preserving
                    # the tie-breaks.
                    break
                if (sname, entry) in done:
                    continue
                done.add((sname, entry))
                shard = self.shards[sname]
                task = spec.pop((sname, entry), None)
                pre_legs = pre_hit = None
                if task is not None:
                    pre_legs, pre_hit = await task
                if sname in owner_set:
                    reached_owner = True
                    hit = pre_hit if task is not None \
                        else await resolver(shard, entry)
                    if hit is not None:
                        in_cost, in_template, matched = hit
                        candidates.append((
                            cost + in_cost, hops, sname, via,
                            template.replace("%s", in_template, 1),
                            matched))
                        if best_cost is None \
                                or cost + in_cost < best_cost:
                            best_cost = cost + in_cost
                # One batched gateway question per expansion: every
                # gate this entry could cross, asked of the shard in
                # a single round trip (for a remote shard, one socket
                # exchange instead of one per gate) — already in hand
                # when the prefetch ran.
                wanted: dict[str, list[str]] = {}
                for other in self.shards:
                    if other == sname:
                        continue
                    for gate in self._gateways[(sname, other)]:
                        if (other, gate) not in done:
                            wanted.setdefault(gate, []).append(other)
                if task is not None:
                    legs = pre_legs
                else:
                    legs = await shard.route_legs(
                        entry, sorted(wanted)) if wanted else {}
                for gate, others in wanted.items():
                    leg = legs.get(gate)
                    if leg is None:
                        continue  # gateway unreachable in this shard
                    gate_cost, gate_route = leg
                    for other in others:
                        heappush(heap, (
                            cost + gate_cost, hops + 1, other, gate,
                            template.replace("%s", gate_route, 1),
                            via + ((gate, other),)))
                        if self._has_remote:
                            prefetch(other, gate)
        finally:
            # states never expanded: cancel their speculative tasks
            # and reap them so nothing leaks a pending task or an
            # unretrieved exception past this lookup
            for task in spec.values():
                task.cancel()
            if spec:
                await asyncio.gather(*spec.values(),
                                     return_exceptions=True)
        if candidates:
            return min(candidates)
        if not reached_owner:
            raise FederationError(
                f"{target!r} is owned by shard(s) "
                f"{'/'.join(owners)}, but no gateway chain connects "
                f"them to {source!r}'s home shard {home.name!r}")
        raise RouteError(f"no route to {target!r}")

    async def aresolve_with_cost(self, source: str, target: str,
                                 user: str = "%s"
                                 ) -> FederatedResolution:
        """The federated domain-suffix lookup (async form).

        Finds the owner shard(s) of ``target`` by longest
        domain-suffix match over the merged index, stitches a route
        from ``source``'s home shard through gateway hosts, and
        instantiates it for ``user`` — ``%s`` keeps the relative
        template.  The cheapest stitched route wins; ties break toward
        fewer shard crossings, then shard and gateway names.  This is
        the one implementation; the sync :meth:`resolve_with_cost`
        drives it without a loop for local-only views.
        """
        _, owners = self.owners_of(target)
        if not owners:
            raise RouteError(f"no route to {target!r}")

        async def resolver(shard, entry):
            return await shard.entry_resolve(entry, target)

        cost, _, sname, via, template, matched = await self._stitch(
            source, target, owners, resolver)
        return FederatedResolution(
            cost=cost,
            resolution=Resolution(
                target=target, matched=matched, route=template,
                address=template.replace("%s", user, 1)),
            shard=sname, via=via)

    def resolve_with_cost(self, source: str, target: str,
                          user: str = "%s") -> FederatedResolution:
        """The federated domain-suffix lookup (sync form; see
        :meth:`aresolve_with_cost`).  Local-only views answer in
        place; a view with remote backend shards raises
        :class:`FederationError` — use the async form there."""
        return drive_local(
            self.aresolve_with_cost(source, target, user))

    def resolve(self, source: str, target: str,
                user: str = "%s") -> Resolution:
        """Federated lookup returning just the :class:`Resolution`."""
        return self.resolve_with_cost(source, target, user).resolution

    def resolver(self, source: str) -> "FederationResolver":
        """The :class:`~repro.service.resolver.Resolver` surface bound
        to ``source`` over this (immutable) view."""
        return FederationResolver(self, source)

    async def aexact(self, source: str,
                     target: str) -> FederatedResolution:
        """Exact-name federated lookup (no domain-suffix walk).

        The merged index is consulted for ``target`` verbatim, and the
        owner-shard lookup is the plain binary search — mirroring the
        single-snapshot daemon's ``EXACT``.
        """
        owners = self._owners.get(target, ())
        if not owners:
            raise RouteError(f"no route to {target!r}")

        async def resolver(shard, entry):
            return await shard.entry_exact(entry, target)

        cost, _, sname, via, template, matched = await self._stitch(
            source, target, owners, resolver)
        return FederatedResolution(
            cost=cost,
            resolution=Resolution(
                target=target, matched=matched, route=template,
                address=template),
            shard=sname, via=via)

    def exact(self, source: str, target: str) -> FederatedResolution:
        """Exact-name federated lookup (sync form; see
        :meth:`aexact`)."""
        return drive_local(self.aexact(source, target))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{shard.source_count}"
            for name, shard in self.shards.items())
        return f"FederationView({parts})"


class FederationResolver:
    """A federated lookup surface bound to one source.

    The federation counterpart of
    :class:`~repro.service.store.SnapshotResolver`: the same
    :class:`~repro.service.resolver.Resolver` protocol, answered by
    stitching across the view's shards.  Because the view is
    immutable, a bound resolver pins one consistent federation picture
    for its whole lifetime — exactly what a request handler wants.
    """

    def __init__(self, view: FederationView, source: str):
        self.view = view
        self.source = source

    def resolve_with_cost(self, target: str, user: str = "%s"
                          ) -> tuple[int, Resolution]:
        """Stitched domain-suffix lookup: ``(cost, resolution)``."""
        fed = self.view.resolve_with_cost(self.source, target, user)
        return fed.cost, fed.resolution

    def resolve(self, target: str, user: str = "%s") -> Resolution:
        """Stitched domain-suffix lookup, resolution only."""
        return self.resolve_with_cost(target, user)[1]

    def source_table(self) -> str:
        """The bound source host."""
        return self.source

    def cached(self, size: int | None = None):
        """This resolver behind a generation-stamped result cache
        (:class:`~repro.service.cache.CachingResolver`): hot pairs
        skip the stitch.  A bound resolver pins one *immutable* view,
        so the wrapper never needs a bump — rebind (and re-wrap)
        when the federation swaps; the live-service equivalent is
        :class:`~repro.service.federation.FederationService`'s own
        bump-on-swap cache."""
        from repro.service.cache import DEFAULT_CACHE_SIZE, \
            CachingResolver

        return CachingResolver(
            self, size=DEFAULT_CACHE_SIZE if size is None else size)

    def stats(self) -> dict:
        """View-level facts: shard count, tables, per-shard formats."""
        shards = self.view.shards
        return {"shards": str(len(shards)),
                "tables": str(sum(s.source_count
                                  for s in shards.values())),
                "formats": self.view.shard_formats()}
