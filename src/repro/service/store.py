"""The binary route-snapshot store.

A *snapshot* is one file holding everything the serving tier needs: the
compiled connectivity graph (:class:`~repro.graph.compact.CompactGraph`
flattened section-by-section, not pickled) and one precomputed route
table per eligible source, each in its own contiguous section.  A
reader opens the file and answers lookups by binary search — no parse,
no mapping, no per-line scan:

::

    +--------+---------------+------+----------------------+---------+
    | header | graph section | meta | table sections ...   | index   |
    +--------+---------------+------+----------------------+---------+

* the fixed **header** carries a magic, a format version, a CRC of the
  payload, and (offset, length) pointers to every region;
* the **graph section** is the compact graph's parallel arrays plus a
  deduplicated string pool (names, operators, warnings);
* **meta** records the heuristic configuration the tables were mapped
  with, so an incremental update can reproduce them exactly;
* each **table section** is self-contained; in format **v2** (the
  default) it is a directory of tagged blocks — route records
  (``RECS``), unreachable hosts (``UNRC``), tree links (``TREE``),
  the mapper's full per-state cost/kind records (``STAT``), the
  section-local string blob (``BLOB``), and the compiled
  suffix-dispatch automaton (``DFSM``, optional on read — see
  :mod:`repro.service.fsm`).  The ``STAT`` block is what
  v1 threw away: the exact final cost (and state kind, flags, and
  tree-parent link id) for *every* labeled state — nets, domains, and
  private shadows included — which is what lets
  :mod:`repro.service.incremental` run its triangle test on exact
  numbers and federation read exact gateway costs;
* the **source index** maps source names (sorted, binary-searchable)
  to their table sections.

Format **v1** files (no ``STAT`` block, fixed-layout table sections)
are still read through a compatibility shim; :func:`upgrade_snapshot`
rewrites one as v2 by remapping the *stored* graph in memory — no
source map required.

Every encoder here is deterministic — no timestamps, no hash-order
dependence — so rebuilding a snapshot from the same map bytes yields
the same file bytes, and an incremental update can splice *unchanged*
table sections from the old file verbatim while staying byte-identical
to a from-scratch rebuild.
"""

from __future__ import annotations

import copy
import os
import struct
import sys
import zlib
from dataclasses import dataclass
from pathlib import Path

try:  # pragma: no cover - exercised by the fallback-path tests
    import mmap as _mmap
except ImportError:  # some minimal builds ship without mmap
    _mmap = None  # type: ignore[assignment]

from repro.config import DEFAULT_HEURISTICS, HeuristicConfig
from repro.core.batch import map_sources
from repro.core.fastmap import (
    STATE_F_DOMAIN_CLASS,
    build_portable_table,
    state_costs,
    tree_link_pairs,
)
from repro.errors import PathaliasError, RouteError
from repro.graph.build import Graph
from repro.graph.compact import CompactGraph
from repro.service.fsm import (
    NAME_F_DOMAIN,
    AutomatonError,
    FlatSuffixAutomaton,
    SuffixAutomaton,
    compile_keys,
)
from repro.service.resolver import Resolution, SuffixResolver

MAGIC = b"PATHSNP1"

#: The format this store writes by default.
VERSION = 2

#: Formats the reader understands (v1 through the compat shim).
SUPPORTED_VERSIONS = (1, 2)

#: The tagged blocks a v2 table section is made of, in emission order.
#: ``docs/snapshot-format.md`` must document exactly these tags —
#: ``tools/check_docs.py`` enforces it.  ``DFSM`` (the compiled
#: suffix-automaton dispatch block) is *optional on read*: pre-PR-9
#: v2 files lack it and lazily compile the automaton in memory.
TABLE_SECTION_TAGS = ("RECS", "UNRC", "TREE", "STAT", "BLOB", "DFSM")

#: header flag bits
FLAG_SECOND_BEST = 1
FLAG_CASE_FOLD = 2

#: magic, version, flags, source_count, crc32, then (offset, length)
#: for the graph, meta, index and tables regions.
_HEADER = struct.Struct("<8sIIII8Q")

#: (offset, length) reference into a section-local string blob.
_REF = struct.Struct("<II")

#: one route record: cost, name ref, route ref.
_RECORD = struct.Struct("<qIIII")

#: one tree-link pair: from ref, to ref.
_PAIR = struct.Struct("<IIII")

#: one v2 per-state record: cid, cost, tree-parent link id, flags
#: (``STATE_F_*``), state kind (``SK_*``).
_STATE = struct.Struct("<IqiBB")

#: one v2 tag-directory entry: 4-byte ASCII tag, block length.
_TAG = struct.Struct("<4sI")

#: one source-index entry: name ref (index blob), absolute table
#: offset, table length.
_INDEX_ENTRY = struct.Struct("<IIQI")

#: v1 table section prefix: record count, unreachable count, tree-pair
#: count, blob length.
_TABLE_HEADER = struct.Struct("<IIII")

#: graph section prefix: node count, link count, warning count.
_GRAPH_HEADER = struct.Struct("<III")

#: meta section: the HeuristicConfig fields the mapping ran with.
_META = struct.Struct("<qqqqqBB")


class SnapshotError(PathaliasError):
    """A snapshot file is missing, malformed, corrupt, or truncated."""


def _check_format(fmt: int) -> int:
    """Validate a requested write format; returns it."""
    if fmt not in SUPPORTED_VERSIONS:
        raise SnapshotError(
            f"unknown snapshot format {fmt!r} (supported: "
            f"{', '.join(map(str, SUPPORTED_VERSIONS))})")
    return fmt


class _StringPool:
    """Deduplicating string blob; add() returns a stable (off, len)."""

    def __init__(self) -> None:
        self._blob = bytearray()
        self._seen: dict[str, tuple[int, int]] = {}

    def add(self, text: str) -> tuple[int, int]:
        """Intern ``text``; returns its stable ``(offset, length)``."""
        ref = self._seen.get(text)
        if ref is None:
            raw = text.encode("utf-8")
            ref = (len(self._blob), len(raw))
            self._blob += raw
            self._seen[text] = ref
        return ref

    def getvalue(self) -> bytes:
        """The accumulated blob bytes."""
        return bytes(self._blob)


# -- section encoders ---------------------------------------------------------


def encode_graph_section(cg: CompactGraph) -> bytes:
    """Flatten a compact graph's arrays into one deterministic blob."""
    n, m = cg.n, cg.link_count
    pool = _StringPool()
    name_refs = [pool.add(name) for name in cg.names]
    op_refs = [pool.add(op) for op in cg.op]
    warning_refs = [pool.add(w) for w in cg.warnings]
    blob = pool.getvalue()
    parts = [
        _GRAPH_HEADER.pack(n, m, len(cg.warnings)),
        bytes(cg.is_domain), bytes(cg.is_net),
        bytes(cg.netlike), bytes(cg.private),
        struct.pack(f"<{n + 1}I", *cg.off),
        struct.pack(f"<{m}I", *cg.to),
        struct.pack(f"<{m}q", *cg.cost),
        bytes(cg.flags), bytes(cg.kind),
        b"".join(_REF.pack(*ref) for ref in name_refs),
        b"".join(_REF.pack(*ref) for ref in op_refs),
        b"".join(_REF.pack(*ref) for ref in warning_refs),
        struct.pack("<I", len(blob)),
        blob,
    ]
    return b"".join(parts)


def decode_graph_section(data: bytes) -> CompactGraph:
    """Rebuild a (detached) :class:`CompactGraph` from its section."""
    try:
        n, m, wc = _GRAPH_HEADER.unpack_from(data, 0)
        pos = _GRAPH_HEADER.size
        cg = CompactGraph()
        cg.n = n
        for attr in ("is_domain", "is_net", "netlike", "private"):
            setattr(cg, attr, list(data[pos:pos + n]))
            pos += n
        cg.off = list(struct.unpack_from(f"<{n + 1}I", data, pos))
        pos += 4 * (n + 1)
        cg.to = list(struct.unpack_from(f"<{m}I", data, pos))
        pos += 4 * m
        cg.cost = list(struct.unpack_from(f"<{m}q", data, pos))
        pos += 8 * m
        cg.flags = list(data[pos:pos + m])
        pos += m
        cg.kind = list(data[pos:pos + m])
        pos += m
        if len(cg.kind) != m or len(cg.private) != n:
            raise SnapshotError("graph section arrays truncated")
        refs = list(struct.iter_unpack(
            "<II", data[pos:pos + _REF.size * (n + m + wc)]))
        pos += _REF.size * (n + m + wc)
        (blob_len,) = struct.unpack_from("<I", data, pos)
        pos += 4
        blob = data[pos:pos + blob_len]
        if len(blob) != blob_len:
            raise SnapshotError("graph section string blob truncated")

        def text(ref: tuple[int, int]) -> str:
            off, length = ref
            return blob[off:off + length].decode("utf-8")

        cg.names = [text(r) for r in refs[:n]]
        cg.op = [text(r) for r in refs[n:n + m]]
        cg.warnings = [text(r) for r in refs[n + m:]]
        for cid, name in enumerate(cg.names):
            if not cg.private[cid]:
                cg.cid_by_name[name] = cid
        return cg
    except struct.error as exc:
        raise SnapshotError(f"graph section malformed: {exc}") from None


def encode_meta_section(cfg: HeuristicConfig) -> bytes:
    """Pack the heuristic configuration the tables were mapped with."""
    return _META.pack(cfg.mixed_penalty, cfg.gateway_penalty,
                      cfg.domain_relay_penalty,
                      cfg.subdomain_up_penalty, cfg.back_link_factor,
                      1 if cfg.infer_back_links else 0,
                      1 if cfg.second_best else 0)


def decode_meta_section(data: bytes) -> HeuristicConfig:
    """Unpack a meta section back into a :class:`HeuristicConfig`."""
    try:
        (mixed, gateway, relay, subup, factor,
         infer, second) = _META.unpack_from(data, 0)
    except struct.error as exc:
        raise SnapshotError(f"meta section malformed: {exc}") from None
    return HeuristicConfig(
        mixed_penalty=mixed, gateway_penalty=gateway,
        domain_relay_penalty=relay, subdomain_up_penalty=subup,
        back_link_factor=factor, infer_back_links=bool(infer),
        second_best=bool(second))


def encode_table_section(records, unreachable, tree_links,
                         states=(), fmt: int = VERSION,
                         dfsm: bytes | None = None) -> bytes:
    """Encode one source's table in the requested format.

    ``records`` is ``(cost, name, route)`` tuples (any order — they are
    re-sorted by encoded name for binary search), ``unreachable`` a
    name list, ``tree_links`` ``(from, to)`` pairs, and ``states`` the
    per-state records from :func:`repro.core.fastmap.state_costs`
    (ignored by the v1 layout, which has nowhere to put them).

    For v2 the section also carries a ``DFSM`` block — the record
    names compiled into a serialized suffix automaton
    (:mod:`repro.service.fsm`), built here once so every later open
    maps it zero-copy.  ``dfsm`` lets the incremental updater splice a
    previous section's block verbatim when the record *name set* is
    unchanged; since the encoding is a pure function of the sorted
    name sequence, a spliced block is byte-identical to a recompiled
    one (and asserted so in the tests).
    """
    _check_format(fmt)
    pool = _StringPool()
    by_name = sorted(records, key=lambda r: r[1].encode("utf-8"))
    record_refs = [(cost, pool.add(name), pool.add(route))
                   for cost, name, route in by_name]
    unreachable_refs = [pool.add(name) for name in sorted(unreachable)]
    pair_refs = [(pool.add(a), pool.add(b))
                 for a, b in sorted(tree_links)]
    recs = b"".join(
        _RECORD.pack(cost, nref[0], nref[1], rref[0], rref[1])
        for cost, nref, rref in record_refs)
    unrc = b"".join(_REF.pack(*ref) for ref in unreachable_refs)
    tree = b"".join(_PAIR.pack(aref[0], aref[1], bref[0], bref[1])
                    for aref, bref in pair_refs)
    blob = pool.getvalue()
    if fmt == 1:
        return b"".join([
            _TABLE_HEADER.pack(len(record_refs), len(unreachable_refs),
                               len(pair_refs), len(blob)),
            recs, unrc, tree, blob])
    stat = b"".join(
        _STATE.pack(cid, cost, parent, flags, kind)
        for cid, flags, kind, cost, parent in states)
    if dfsm is None:
        dfsm = compile_keys(
            [name for _, name, _ in by_name]).to_bytes()
    blocks = dict(RECS=recs, UNRC=unrc, TREE=tree, STAT=stat,
                  BLOB=blob, DFSM=dfsm)
    parts = [struct.pack("<I", len(TABLE_SECTION_TAGS))]
    parts += [_TAG.pack(tag.encode("ascii"), len(blocks[tag]))
              for tag in TABLE_SECTION_TAGS]
    parts += [blocks[tag] for tag in TABLE_SECTION_TAGS]
    return b"".join(parts)


class SnapshotTable(SuffixResolver):
    """One source's route table, answered straight off section bytes.

    ``data`` may be plain ``bytes`` *or* a :class:`memoryview` slicing
    a mapped snapshot (:class:`SnapshotReader` hands out the latter):
    every access below is ``unpack_from``/slice-based, so a mapped
    table is searched **in place** — no section copy, no up-front
    decode — and only the few bytes of an accessed record's name and
    route are ever materialized.  A table holding a mapped view keeps
    the underlying map alive on its own (the view carries a buffer
    export), so it stays valid even after its reader is closed or
    swap-replaced.

    Destination lookup is a binary search over the fixed-width record
    entries, comparing UTF-8 name bytes in the section's string blob —
    the "format appropriate for rapid database retrieval" the paper
    leaves as an exercise.  The suffix-search surface
    (:meth:`resolve_with_cost` and the inherited ``resolve`` /
    ``resolve_bang``) dispatches through the section's compiled suffix
    automaton (the ``DFSM`` block, inflated lazily on first use;
    sections without one — v1, or v2 files written before the block
    existed — compile it in memory from the record names), and is
    byte-identical to the dict walk in
    :class:`~repro.service.resolver.SuffixResolver`, which stays
    reachable as :meth:`resolve_with_cost_dict` for differential
    oracles.

    For v2 sections the mapper's per-state records are exposed through
    :meth:`state_records` / :meth:`state_cost_map` /
    :meth:`state_cost_of`; a v1 section reports none
    (:attr:`has_state_costs` is False).
    """

    __slots__ = ("source", "version", "_data", "_state_map",
                 "_rc", "_uc", "_tc", "_sc",
                 "_records_off", "_unreach_off", "_pairs_off",
                 "_states_off", "_blob_off", "_file_off",
                 "_dfsm_off", "_dfsm_len", "_auto")

    def __init__(self, source: str, data, version: int = VERSION,
                 file_offset: int | None = None):
        """``file_offset`` (when known) is the section's absolute
        offset in the snapshot file, so malformed-section errors can
        name where in the file the damage sits."""
        self.source = source
        self.version = version
        self._data = data
        self._file_off = file_offset
        self._state_map: dict | None = None
        self._dfsm_off = None
        self._dfsm_len = 0
        self._auto: SuffixAutomaton | None = None
        if version == 1:
            self._init_v1(data)
        else:
            self._init_v2(data)

    def _where(self) -> str:
        """``" at file offset N"`` when the section offset is known."""
        if self._file_off is None:
            return ""
        return f" at file offset {self._file_off}"

    def _init_v1(self, data) -> None:
        """The fixed v1 layout: counted arrays, then the blob."""
        try:
            (self._rc, self._uc, self._tc,
             blob_len) = _TABLE_HEADER.unpack_from(data, 0)
        except struct.error as exc:
            raise SnapshotError(
                f"table section for {self.source!r}{self._where()} "
                f"malformed: {exc}") from None
        self._sc = 0
        self._records_off = _TABLE_HEADER.size
        self._unreach_off = self._records_off + self._rc * _RECORD.size
        self._pairs_off = self._unreach_off + self._uc * _REF.size
        self._states_off = self._blob_off = \
            self._pairs_off + self._tc * _PAIR.size
        if self._blob_off + blob_len > len(data):
            raise SnapshotError(
                f"table section for {self.source!r}{self._where()} "
                f"truncated")

    def _init_v2(self, data) -> None:
        """The tagged v2 layout: a block directory, then the blocks."""
        source = self.source
        try:
            (tag_count,) = struct.unpack_from("<I", data, 0)
            if tag_count > len(data):  # absurd count == corruption
                raise SnapshotError(
                    f"table section for {source!r}{self._where()} "
                    f"malformed: {tag_count} tagged blocks")
            pos = 4
            directory = []
            for _ in range(tag_count):
                tag, length = _TAG.unpack_from(data, pos)
                pos += _TAG.size
                directory.append((bytes(tag), length))
        except struct.error as exc:
            raise SnapshotError(
                f"table section for {source!r}{self._where()} "
                f"malformed: {exc}") from None
        blocks = {}
        for tag, length in directory:
            blocks[tag] = (pos, length)
            pos += length
        if pos > len(data):
            raise SnapshotError(
                f"table section for {source!r}{self._where()} "
                f"truncated (blocks end at {pos}, section is "
                f"{len(data)} bytes)")
        for tag, size in ((b"RECS", _RECORD.size), (b"UNRC", _REF.size),
                          (b"TREE", _PAIR.size), (b"STAT", _STATE.size),
                          (b"BLOB", 1)):
            if tag not in blocks:
                raise SnapshotError(
                    f"table section for {source!r} lacks the "
                    f"{tag.decode()} block")
            off, length = blocks[tag]
            if size > 1 and length % size:
                raise SnapshotError(
                    f"table section for {source!r}: {tag.decode()} "
                    f"block length {length} is not a whole number of "
                    f"records")
        self._records_off, length = blocks[b"RECS"]
        self._rc = length // _RECORD.size
        self._unreach_off, length = blocks[b"UNRC"]
        self._uc = length // _REF.size
        self._pairs_off, length = blocks[b"TREE"]
        self._tc = length // _PAIR.size
        self._states_off, length = blocks[b"STAT"]
        self._sc = length // _STATE.size
        self._blob_off, _ = blocks[b"BLOB"]
        # DFSM is the optional compiled-dispatch block: absent in v2
        # files written before it existed (the automaton is then
        # compiled lazily in memory — every existing file keeps
        # serving, byte-identically).
        if b"DFSM" in blocks:
            self._dfsm_off, self._dfsm_len = blocks[b"DFSM"]

    def block_map(self) -> list[tuple[str, int, int]]:
        """The section's tagged blocks as ``(tag, offset, length)`` in
        directory order, offsets relative to the section start (v1
        sections have no directory and report an empty list).  What
        ``pathalias inspect`` prints and the format-compat CI job
        asserts over."""
        if self.version == 1:
            return []
        data = self._data
        (tag_count,) = struct.unpack_from("<I", data, 0)
        pos = 4
        directory = []
        for _ in range(tag_count):
            tag, length = _TAG.unpack_from(data, pos)
            pos += _TAG.size
            directory.append((bytes(tag).decode("ascii"), length))
        out = []
        for tag, length in directory:
            out.append((tag, pos, length))
            pos += length
        return out

    def __len__(self) -> int:
        return self._rc

    def _text(self, off: int, length: int) -> str:
        base = self._blob_off + off
        # str(buf, "utf-8") decodes bytes and memoryview alike
        return str(self._data[base:base + length], "utf-8")

    def _record(self, i: int):
        return _RECORD.unpack_from(self._data,
                                   self._records_off + i * _RECORD.size)

    def lookup(self, name: str) -> tuple[int, str] | None:
        """``(cost, route)`` for an exact destination name, or None."""
        key = name.encode("utf-8")
        data = self._data
        blob_off = self._blob_off
        lo, hi = 0, self._rc
        while lo < hi:
            mid = (lo + hi) // 2
            _, noff, nlen, _, _ = self._record(mid)
            base = blob_off + noff
            # memoryview has no ordering compare; bytes() copies only
            # the one name being compared, not the section
            if bytes(data[base:base + nlen]) < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < self._rc:
            cost, noff, nlen, roff, rlen = self._record(lo)
            base = blob_off + noff
            if data[base:base + nlen] == key:
                return cost, self._text(roff, rlen)
        return None

    def route(self, name: str) -> str | None:
        """The route template for an exact name, or None."""
        hit = self.lookup(name)
        return None if hit is None else hit[1]

    def cost(self, name: str) -> int | None:
        """The mapped cost for an exact name, or None."""
        hit = self.lookup(name)
        return None if hit is None else hit[0]

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def records(self):
        """Iterate ``(cost, name, route)`` in name order."""
        for i in range(self._rc):
            cost, noff, nlen, roff, rlen = self._record(i)
            yield cost, self._text(noff, nlen), self._text(roff, rlen)

    def record_names(self) -> list[str]:
        """The record names alone, in (sorted) record order — the key
        sequence the section's ``DFSM`` block is compiled from, and
        what the incremental updater compares to decide whether a
        stored block can be spliced verbatim."""
        out = []
        for i in range(self._rc):
            _, noff, nlen, _, _ = self._record(i)
            out.append(self._text(noff, nlen))
        return out

    # -- compiled suffix dispatch ---------------------------------------------

    @property
    def has_automaton(self) -> bool:
        """Whether this section carries a stored ``DFSM`` block (False
        means :meth:`automaton` compiles one in memory on first use)."""
        return self._dfsm_off is not None

    def dfsm_bytes(self) -> bytes | None:
        """The raw stored ``DFSM`` block as real ``bytes`` (splice
        export, like :meth:`SnapshotReader.table_bytes`), or None for
        sections without one."""
        if self._dfsm_off is None:
            return None
        return bytes(self._data[self._dfsm_off:
                                self._dfsm_off + self._dfsm_len])

    def flat_automaton(self) -> FlatSuffixAutomaton | None:
        """A zero-copy flat matcher over the stored ``DFSM`` block
        (None when the section has no block).  Used by ``pathalias
        inspect`` and the differential tests; the serving hot path
        inflates instead (:meth:`automaton`)."""
        if self._dfsm_off is None:
            return None
        try:
            return FlatSuffixAutomaton(
                self._data[self._dfsm_off:
                           self._dfsm_off + self._dfsm_len])
        except AutomatonError as exc:
            raise SnapshotError(
                f"table section for {self.source!r}{self._where()}: "
                f"{exc}") from None

    def automaton(self) -> SuffixAutomaton:
        """The section's suffix-dispatch matcher (cached).

        Inflated from the mapped ``DFSM`` block when the section has
        one — a single linear pass, no trie rebuild — and compiled
        from the record names otherwise (the lazy-build fallback that
        keeps every pre-block snapshot serving).  Payloads are record
        indexes into this section's sorted ``RECS`` array.
        """
        auto = self._auto
        if auto is None:
            flat = self.flat_automaton()
            if flat is not None:
                auto = flat.inflate()
            else:
                auto = compile_keys(self.record_names())
            self._auto = auto
        return auto

    def resolve_with_cost(self, target: str, user: str = "%s"
                          ) -> tuple[int, Resolution]:
        """Domain-suffix search through the compiled automaton.

        One O(labels) match replaces the dict walk's per-suffix string
        building and probing; the matched record, the cost, the
        gateway-relative argument rule, and the miss error are all
        byte-identical to :meth:`resolve_with_cost_dict` (continuously
        asserted by the differential fuzz tests).
        """
        auto = self._auto
        if auto is None:
            auto = self.automaton()
        idx = auto.match(target)
        if idx < 0:
            raise RouteError(f"no route to {target!r}")
        cost, noff, nlen, roff, rlen = self._record(idx)
        matched = self._text(noff, nlen)
        route = self._text(roff, rlen)
        argument = user if matched == target else f"{target}!{user}"
        return cost, Resolution(
            target=target, matched=matched, route=route,
            address=route.replace("%s", argument, 1))

    #: The original suffix-walk dispatch
    #: (:meth:`~repro.service.resolver.SuffixResolver.resolve_with_cost`
    #: over binary-searched probes) — the differential oracle the
    #: automaton is measured and verified against, and what serves when
    #: a daemon runs ``--dispatch dict``.  Aliased, not wrapped: the
    #: method object *is* the shared implementation.
    resolve_with_cost_dict = SuffixResolver.resolve_with_cost

    def unreachable(self) -> list[str]:
        """Host names this source could not reach."""
        out = []
        for i in range(self._uc):
            off, length = _REF.unpack_from(
                self._data, self._unreach_off + i * _REF.size)
            out.append(self._text(off, length))
        return out

    def tree_links(self) -> set[tuple[str, str]]:
        """The NORMAL links this source's mapping leaned on."""
        out = set()
        for i in range(self._tc):
            aoff, alen, boff, blen = _PAIR.unpack_from(
                self._data, self._pairs_off + i * _PAIR.size)
            out.add((self._text(aoff, alen), self._text(boff, blen)))
        return out

    # -- per-state costs (format v2) ------------------------------------------

    @property
    def has_state_costs(self) -> bool:
        """Whether this section carries the mapper's ``STAT`` block."""
        return self.version >= 2

    @property
    def state_count(self) -> int:
        """Number of stored per-state records (0 for v1 sections)."""
        return self._sc

    def state_records(self):
        """Iterate the stored per-state records in ``(cid, domain
        class)`` order: ``(cid, flags, kind, cost, parent_link)`` —
        see :func:`repro.core.fastmap.state_costs` for the fields."""
        for i in range(self._sc):
            cid, cost, parent, flags, kind = _STATE.unpack_from(
                self._data, self._states_off + i * _STATE.size)
            yield cid, flags, kind, cost, parent

    def state_cost_map(self) -> dict[tuple[int, int], int]:
        """``{(cid, domain class): final cost}`` for every stored
        state (cached).  The domain class is the second-best state
        identity bit — always 0 in tree-mode snapshots — so the
        incremental updater's triangle test can address states exactly
        as the mapper's relaxation does."""
        if self._state_map is None:
            self._state_map = {
                (cid, flags & STATE_F_DOMAIN_CLASS): cost
                for cid, flags, _, cost, _ in self.state_records()}
        return self._state_map

    def state_cost_of(self, cid: int) -> int | None:
        """The cheapest stored state cost for a node (compact id), or
        None when the node is unreached or the section is v1.  Keyed
        by cid, not display name, so a gateway that the route records
        display under a domain-qualified name still answers exactly."""
        states = self.state_cost_map()
        best = states.get((cid, 0))
        other = states.get((cid, 1))
        if best is None:
            return other
        if other is not None and other < best:
            return other
        return best

    def database(self):
        """Lift into an in-memory :class:`RouteDatabase` (for callers
        that want the dict-backed interface); costs and the source
        name ride along."""
        from repro.mailer.routedb import RouteDatabase

        routes = {}
        costs = {}
        for cost, name, route in self.records():
            routes[name] = route
            costs[name] = cost
        return RouteDatabase(routes, costs=costs, source=self.source)


@dataclass
class SnapshotInfo:
    """What :func:`build_snapshot` / an update wrote."""

    path: Path
    sources: list[str]
    size: int
    engine: str
    format: int = VERSION


class SnapshotReader:
    """An open snapshot: header + source index parsed up front, tables
    searched lazily **in place** and cached.

    By default :meth:`open` ``mmap``-s the file read-only and every
    access below — header decode, source-index binary search, table
    binary search, CRC validation — runs over :class:`memoryview`
    slices of the map with zero copies; N reader processes of one file
    share a single page-cache copy.  On platforms without :mod:`mmap`
    (or for an empty/unmappable file, or with ``use_mmap=False``) the
    reader falls back to plain ``read()`` bytes and serves them
    through the exact same code paths.

    A reader is immutable and self-contained — the daemon hot-swaps
    readers by plain attribute assignment while in-flight lookups keep
    using the old one.  :meth:`close` releases the reader's own buffer
    references; tables handed out earlier each hold their own view of
    the map, so the old mapping stays valid until the last such
    reference drains (the swap is safe mid-request).  ``version``
    reports the stored format (1 or 2); both are served through the
    same query surface, v1 simply without per-state costs.  ``mapped``
    tells whether this reader is mmap-backed.
    """

    def __init__(self, path: str | Path, data, mapping=None):
        """Validate ``data`` (bytes or a memoryview over ``mapping``,
        the open :class:`mmap.mmap` this reader owns and will close)."""
        self.path = Path(path)
        self._mmap = mapping
        self.mapped = mapping is not None
        self._data = data
        self._size = len(data)
        self._closed = False
        try:
            self._validate(data)
            self._sources: list[str] = []
            self._entries: list[tuple[int, int]] = []
            self._parse_index()
        except BaseException:
            self._release()
            raise
        self._tables: dict[str, SnapshotTable] = {}
        self._graph: CompactGraph | None = None
        self._domains: list[str] | None = None
        self._index_auto: SuffixAutomaton | None = None
        self._index_fsm: bytes | None = None

    def _validate(self, data) -> None:
        """Header, section-bounds, and payload-CRC checks — every
        failure is a :class:`SnapshotError` naming the file and the
        offending offset, never a bare ``struct.error``."""
        if len(data) < _HEADER.size:
            raise SnapshotError(
                f"{self.path}: truncated snapshot "
                f"({len(data)} bytes; header is {_HEADER.size})")
        try:
            (magic, version, self.flags, self.source_count, crc,
             self._graph_off, self._graph_len,
             self._meta_off, self._meta_len,
             self._index_off, self._index_len,
             self._tables_off, self._tables_len) = _HEADER.unpack_from(
                 data, 0)
        except struct.error as exc:  # pragma: no cover - len gate above
            raise SnapshotError(
                f"{self.path}: truncated snapshot header at offset 0: "
                f"{exc}") from None
        if magic != MAGIC:
            raise SnapshotError(
                f"{self.path}: not a route snapshot (bad magic)")
        if version not in SUPPORTED_VERSIONS:
            raise SnapshotError(
                f"{self.path}: unsupported snapshot version {version} "
                f"(this reader speaks "
                f"{', '.join(map(str, SUPPORTED_VERSIONS))})")
        self.version = version
        for off, length in ((self._graph_off, self._graph_len),
                            (self._meta_off, self._meta_len),
                            (self._index_off, self._index_len),
                            (self._tables_off, self._tables_len)):
            if off < _HEADER.size or off + length > len(data):
                raise SnapshotError(
                    f"{self.path}: truncated snapshot (section "
                    f"[{off}, {off + length}) outside the "
                    f"{len(data)}-byte file)")
        # a memoryview slice feeds crc32 straight off the map
        if zlib.crc32(data[_HEADER.size:]) & 0xFFFFFFFF != crc:
            raise SnapshotError(
                f"{self.path}: corrupt snapshot (payload CRC mismatch)")

    @classmethod
    def open(cls, path: str | Path,
             use_mmap: bool = True) -> "SnapshotReader":
        """Open and validate the snapshot file at ``path``.

        By default the file is mapped read-only (zero-copy access;
        shared page cache across processes).  ``use_mmap=False``, a
        platform without :mod:`mmap`, or an empty/unmappable file
        falls back to reading the bytes — same data, same code paths.
        """
        mapping = None
        try:
            with open(path, "rb") as handle:
                if use_mmap and _mmap is not None:
                    try:
                        mapping = _mmap.mmap(handle.fileno(), 0,
                                             access=_mmap.ACCESS_READ)
                    except (ValueError, OSError):
                        mapping = None  # empty or unmappable file
                if mapping is None:
                    data = handle.read()
        except OSError as exc:
            raise SnapshotError(
                f"cannot open snapshot: {exc}") from None
        if mapping is None:
            return cls(path, data)
        return cls(path, memoryview(mapping), mapping=mapping)

    def _parse_index(self) -> None:
        data = self._data
        entries_len = self.source_count * _INDEX_ENTRY.size
        if entries_len > self._index_len:
            raise SnapshotError(
                f"{self.path}: corrupt snapshot (index shorter than "
                f"its {self.source_count} entries)")
        blob_off = self._index_off + entries_len
        blob_len = self._index_len - entries_len
        for i in range(self.source_count):
            entry_off = self._index_off + i * _INDEX_ENTRY.size
            try:
                noff, nlen, toff, tlen = _INDEX_ENTRY.unpack_from(
                    data, entry_off)
            except struct.error as exc:  # pragma: no cover - len gate
                raise SnapshotError(
                    f"{self.path}: corrupt snapshot (index entry at "
                    f"offset {entry_off}: {exc})") from None
            if noff + nlen > blob_len:
                raise SnapshotError(
                    f"{self.path}: corrupt snapshot (index name "
                    f"outside its blob)")
            if (toff < self._tables_off
                    or toff + tlen > self._tables_off + self._tables_len):
                raise SnapshotError(
                    f"{self.path}: corrupt snapshot (table section "
                    f"outside the tables region)")
            try:
                name = str(
                    data[blob_off + noff:blob_off + noff + nlen],
                    "utf-8")
            except UnicodeDecodeError as exc:
                raise SnapshotError(
                    f"{self.path}: corrupt snapshot (index name at "
                    f"offset {blob_off + noff}: {exc})") from None
            self._sources.append(name)
            self._entries.append((toff, tlen))

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def _live(self):
        """The backing buffer, or a :class:`SnapshotError` if closed."""
        if self._closed:
            raise SnapshotError(
                f"{self.path}: snapshot reader is closed")
        return self._data

    def _release(self) -> None:
        """Drop this reader's buffer references and try to unmap."""
        self._data = b""
        mapping, self._mmap = self._mmap, None
        if mapping is not None:
            try:
                mapping.close()
            except BufferError:
                # A handed-out table (or an in-flight request) still
                # holds a view into the map; each view carries its own
                # buffer export, so the mapping is torn down by the
                # interpreter when the last of them drains.
                pass

    def close(self) -> None:
        """Release the reader's buffers.  Idempotent.

        Tables obtained earlier stay valid — each holds its own view
        of the (mapped) data — so a daemon can close the old reader
        right after a hot swap while in-flight lookups finish on it.
        Accessors on the closed reader itself raise
        :class:`SnapshotError`.
        """
        if self._closed:
            return
        self._closed = True
        self._tables = {}
        self._release()

    def __enter__(self) -> "SnapshotReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- queries --------------------------------------------------------------

    @property
    def size(self) -> int:
        """Total snapshot size in bytes (valid even after close)."""
        return self._size

    @property
    def second_best(self) -> bool:
        """Tables were mapped with second-best (domain-free) paths."""
        return bool(self.flags & FLAG_SECOND_BEST)

    @property
    def case_fold(self) -> bool:
        """Host names were folded to lower case at build time (the
        ``-i`` option); updates must parse revisions the same way."""
        return bool(self.flags & FLAG_CASE_FOLD)

    @property
    def has_state_costs(self) -> bool:
        """Whether table sections carry per-state ``STAT`` records."""
        return self.version >= 2

    def sources(self) -> list[str]:
        """Source names, in index (sorted) order."""
        return list(self._sources)

    def has_source(self, source: str) -> bool:
        """Whether a table section exists for ``source``."""
        return self._find(source) is not None

    def _find(self, source: str) -> int | None:
        """Binary search the sorted source index."""
        key = source.encode("utf-8")
        sources = self._sources
        lo, hi = 0, len(sources)
        while lo < hi:
            mid = (lo + hi) // 2
            if sources[mid].encode("utf-8") < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(sources) and sources[lo] == source:
            return lo
        return None

    def table_bytes(self, source: str) -> bytes:
        """The raw encoded table section as real ``bytes`` — this is
        the one reader surface that *does* copy, because incremental
        updates splice these sections into new snapshot files verbatim
        and must not pin the old mapping."""
        data = self._live()
        i = self._find(source)
        if i is None:
            raise SnapshotError(
                f"{self.path}: no table for source {source!r}")
        off, length = self._entries[i]
        return bytes(data[off:off + length])

    def table(self, source: str) -> SnapshotTable:
        """The (cached) table for ``source``, searched in place.

        A mapped reader hands the table a zero-copy view of its
        section; the view keeps the mapping alive on its own, so the
        table outlives :meth:`close` / a hot swap.
        """
        cached = self._tables.get(source)
        if cached is None:
            data = self._live()
            i = self._find(source)
            if i is None:
                raise SnapshotError(
                    f"{self.path}: no table for source {source!r}")
            off, length = self._entries[i]
            cached = SnapshotTable(source, data[off:off + length],
                                   version=self.version,
                                   file_offset=off)
            self._tables[source] = cached
        return cached

    def resolver(self, source: str) -> "SnapshotResolver":
        """The in-process :class:`~repro.service.resolver.Resolver`
        surface bound to ``source``'s table."""
        return SnapshotResolver(self, source)

    def resolve(self, source: str, target: str,
                user: str = "%s") -> Resolution:
        """Domain-suffix lookup from ``source``'s table."""
        return self.table(source).resolve(target, user)

    def heuristics(self) -> HeuristicConfig:
        """The heuristic configuration the tables were mapped with."""
        data = self._live()
        return decode_meta_section(
            data[self._meta_off:self._meta_off + self._meta_len])

    def graph_section(self) -> bytes:
        """The raw encoded graph section as real ``bytes`` (updates
        splice it into new files verbatim; the copy also means the
        decoded graph never pins a swapped-out mapping)."""
        data = self._live()
        return bytes(data[self._graph_off:
                          self._graph_off + self._graph_len])

    def decode_graph(self) -> CompactGraph:
        """The stored compact graph (detached: arrays only)."""
        if self._graph is None:
            self._graph = decode_graph_section(self.graph_section())
        return self._graph

    def domain_names(self) -> list[str]:
        """Sorted public domain names (``.edu``, ...) in the stored map.

        Domains never get their own table sections (they are not mail
        origins), but a federation front end needs them to decide which
        shard owns a ``caip.rutgers.edu``-style query, so the reader
        derives them from the graph section on first use and caches
        the list.
        """
        if self._domains is None:
            cg = self.decode_graph()
            self._domains = sorted(
                cg.names[cid] for cid in range(cg.n)
                if cg.is_domain[cid] and not cg.private[cid])
        return list(self._domains)

    def state_cost(self, source: str, target: str) -> int | None:
        """The mapper's exact final cost ``source -> target`` from the
        stored per-state records (format v2), or None when the
        snapshot is v1 or the target is unreached.

        Keyed through the stored graph's name index (compact id), so
        nodes the printed route records omit — nets, domains, hosts
        displayed under a domain-qualified name — still answer
        exactly.  This is the primitive behind
        :meth:`repro.service.shard.Shard.state_cost` and the daemon's
        ``COSTS`` bulk verb.
        """
        table = self.table(source)
        if not table.has_state_costs:
            return None
        cid = self.decode_graph().find(target)
        if cid is None:
            return None
        return table.state_cost_of(cid)

    def routing_index(self) -> list[tuple[str, bool]]:
        """The sorted source/domain index: ``(name, is_domain)`` pairs.

        Every name this snapshot can *own* in a federation — the hosts
        it has table sections for plus the domains its map declares —
        sorted by name.  :class:`repro.service.shard.FederationView`
        merges these per-shard indexes into the ownership map that
        routes each query to a shard by longest domain-suffix match.
        """
        merged = [(name, False) for name in self._sources]
        merged += [(name, True) for name in self.domain_names()]
        merged.sort()
        return merged

    def index_automaton(self) -> SuffixAutomaton:
        """The compiled ownership matcher over :meth:`routing_index`
        (cached) — payloads are rows in that index.  What a local
        :class:`~repro.service.shard.Shard` answers ``owns``-style
        dispatch with, and the matcher serialized for the wire by
        :meth:`index_fsm_bytes`."""
        if self._index_auto is None:
            self._index_auto = compile_keys(
                [name for name, _ in self.routing_index()])
        return self._index_auto

    def index_fsm_bytes(self) -> bytes:
        """The ownership index as a self-contained serialized ``DFSM``
        block (cached): the routing-index names are embedded as the
        payload table, domains flagged ``NAME_F_DOMAIN``.  This is
        what ``TABLE --fsm`` ships, letting a federation front end
        inflate a remote shard's index in one linear pass instead of
        re-deriving dicts from text lines."""
        if self._index_fsm is None:
            index = self.routing_index()
            self._index_fsm = self.index_automaton().to_bytes(
                names=[(name, NAME_F_DOMAIN if is_domain else 0)
                       for name, is_domain in index])
        return self._index_fsm

    def __repr__(self) -> str:
        return (f"SnapshotReader({str(self.path)!r}, v{self.version}, "
                f"{self.source_count} sources, {self.size} bytes)")


class SnapshotResolver(SuffixResolver):
    """The in-process lookup surface: one source's snapshot table
    behind the :class:`~repro.service.resolver.Resolver` protocol.

    What the daemon binds per request, and what in-process callers
    (benchmarks, tests, embedding applications) use directly — the
    same contract the daemon client and the federation surface honour,
    so callers can swap transports without code changes.
    """

    def __init__(self, reader: SnapshotReader, source: str):
        self.reader = reader
        self.source = source
        self._table = reader.table(source)

    def lookup(self, name: str) -> tuple[int, str] | None:
        """Exact-name binary search in the bound table."""
        return self._table.lookup(name)

    def resolve_with_cost(self, target: str, user: str = "%s"
                          ) -> tuple[int, Resolution]:
        """Suffix search through the table's compiled automaton
        (:meth:`SnapshotTable.resolve_with_cost`)."""
        return self._table.resolve_with_cost(target, user)

    def resolve_with_cost_dict(self, target: str, user: str = "%s"
                               ) -> tuple[int, Resolution]:
        """The dict-walk differential oracle over the same table."""
        return self._table.resolve_with_cost_dict(target, user)

    def cached(self, size: int | None = None):
        """This resolver behind a generation-stamped result cache
        (:class:`~repro.service.cache.CachingResolver`): hot pairs
        skip the suffix walk.  A snapshot table is immutable, so the
        wrapper never needs a bump — swap the wrapper with the
        snapshot."""
        from repro.service.cache import DEFAULT_CACHE_SIZE, \
            CachingResolver

        return CachingResolver(
            self, size=DEFAULT_CACHE_SIZE if size is None else size)

    def source_table(self) -> str:
        """The bound source host."""
        return self.source

    def stats(self) -> dict:
        """Snapshot-level facts: format, sources, size, path."""
        reader = self.reader
        return {"format": str(reader.version),
                "sources": str(reader.source_count),
                "snapshot_bytes": str(reader.size),
                "snapshot": str(reader.path)}


# -- building -----------------------------------------------------------------


def eligible_sources(cg: CompactGraph) -> list[str]:
    """Sorted mail origins: hosts that are neither nets, domains, nor
    private (mirrors ``BatchMapper.sources``, in index order)."""
    return sorted(cg.names[cid] for cid in range(cg.n)
                  if not cg.netlike[cid] and not cg.private[cid])


def snapshot_payload(mapper, source: str):
    """Per-source worker payload: plain-tuple records, unreachable
    names, the tree-link pairs, and the per-state cost records (all
    picklable)."""
    result = mapper.run(source)
    _, records, unreachable, _ = build_portable_table(result)
    return ([(cost, name, route) for cost, name, route, _ in records],
            unreachable, tree_link_pairs(result), state_costs(result))


def snapshot_payload_v1(mapper, source: str):
    """The format-v1 worker payload: same shape, empty state list —
    the v1 layout has nowhere to put per-state records, so neither
    computing them nor shipping them across the pool is paid for."""
    result = mapper.run(source)
    _, records, unreachable, _ = build_portable_table(result)
    return ([(cost, name, route) for cost, name, route, _ in records],
            unreachable, tree_link_pairs(result), ())


def payload_for_format(fmt: int):
    """The per-source worker payload callable for a write format."""
    return snapshot_payload if fmt >= 2 else snapshot_payload_v1


def write_snapshot(path: str | Path, graph_section: bytes,
                   meta_section: bytes,
                   table_sections: list[tuple[str, bytes]],
                   flags: int = 0, fmt: int = VERSION) -> int:
    """Assemble and atomically write a snapshot file.

    ``table_sections`` must be sorted by source name and already
    encoded in format ``fmt`` (the header's version field is all this
    function stamps); the file appears at ``path`` via write-to-temp +
    rename so a daemon never observes a half-written snapshot.
    Returns the byte size.
    """
    _check_format(fmt)
    pool = _StringPool()
    header_size = _HEADER.size
    graph_off = header_size
    meta_off = graph_off + len(graph_section)
    tables_off = meta_off + len(meta_section)
    entries = []
    offset = tables_off
    for source, section in table_sections:
        entries.append((pool.add(source), offset, len(section)))
        offset += len(section)
    tables_len = offset - tables_off
    index_off = offset
    index_blob = pool.getvalue()
    index = b"".join(
        _INDEX_ENTRY.pack(nref[0], nref[1], toff, tlen)
        for nref, toff, tlen in entries) + index_blob
    payload = b"".join([graph_section, meta_section,
                        *(section for _, section in table_sections),
                        index])
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    header = _HEADER.pack(
        MAGIC, fmt, flags, len(table_sections), crc,
        graph_off, len(graph_section), meta_off, len(meta_section),
        index_off, len(index), tables_off, tables_len)
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(header + payload)
    os.replace(tmp, path)
    return header_size + len(payload)


def build_snapshot(graph: Graph | CompactGraph, path: str | Path,
                   heuristics: HeuristicConfig | None = None,
                   jobs: int | None = None,
                   case_fold: bool = False,
                   fmt: int = VERSION) -> SnapshotInfo:
    """Map every eligible source and write the snapshot to ``path``.

    With ``jobs > 1`` the per-source mapping fans out over the batch
    pool (:func:`repro.core.batch.map_sources`); output bytes are
    identical at any worker count.  ``case_fold`` records (in the
    header flags) that the map was parsed with host names folded, so
    an update can parse the revision identically.  ``fmt`` selects the
    written format — v2 (default, with per-state cost records) or the
    legacy v1 layout.
    """
    _check_format(fmt)
    cg = graph if isinstance(graph, CompactGraph) \
        else CompactGraph.compile(graph)
    negatives = sum(1 for c in cg.cost if c < 0)
    if negatives:
        # The graph model requires non-negative weights — the map
        # parser/builder clamps and warns (graph/build.py) — but an
        # array-level revision (netsim, incremental benchmarks) can
        # smuggle a negative past that gate, and Dijkstra's
        # invariants do not survive it.  Enforce the same model rule
        # here, as loudly as the builder does, so every snapshot
        # build — fresh or the incremental updater's full-rebuild
        # fallback — agrees byte-for-byte on the clamped graph.
        print(f"pathalias: snapshot: {negatives} negative link "
              f"cost(s) clamped to 0 (the graph model requires "
              f"non-negative weights)", file=sys.stderr)
        # a shallow copy suffices: only the cost-list binding changes,
        # every other array stays shared and unmutated
        cg = copy.copy(cg)
        cg.cost = [c if c >= 0 else 0 for c in cg.cost]
    cfg = heuristics if heuristics is not None else DEFAULT_HEURISTICS
    sources = eligible_sources(cg)
    payloads, engine = map_sources(cg, sources,
                                   payload_for_format(fmt),
                                   heuristics, jobs)
    table_sections = [
        (source,
         encode_table_section(records, unreachable, pairs, states,
                              fmt=fmt))
        for source, (records, unreachable, pairs, states)
        in zip(sources, payloads)]
    flags = (FLAG_SECOND_BEST if cfg.second_best else 0) \
        | (FLAG_CASE_FOLD if case_fold else 0)
    size = write_snapshot(
        path, encode_graph_section(cg), encode_meta_section(cfg),
        table_sections, flags=flags, fmt=fmt)
    return SnapshotInfo(path=Path(path), sources=sources, size=size,
                        engine=engine, format=fmt)


def upgrade_snapshot(old: str | Path | SnapshotReader,
                     out_path: str | Path,
                     jobs: int | None = None) -> SnapshotInfo:
    """Rewrite a stored snapshot as format v2 without its source map.

    The per-state costs a v1 file never recorded are backfilled by a
    single in-memory remap of the *stored* graph section — the graph,
    heuristic configuration, and case-folding flag all come from the
    old file, so the output is byte-identical to a native v2 build
    from the same map bytes.  (A v2 input is simply rewritten, which
    makes the operation idempotent.)
    """
    reader = old if isinstance(old, SnapshotReader) \
        else SnapshotReader.open(old)
    return build_snapshot(reader.decode_graph(), out_path,
                          heuristics=reader.heuristics(), jobs=jobs,
                          case_fold=reader.case_fold, fmt=VERSION)
