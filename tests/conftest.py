"""Shared fixtures: the paper's worked examples as reusable inputs."""

from __future__ import annotations

import pytest

#: The "simplified portion of the map from 1981" (OUTPUT section).
PAPER_1981_MAP = """\
unc\tduke(HOURLY), phs(HOURLY*4)
duke\tunc(DEMAND), research(DAILY/2), phs(DEMAND)
phs\tunc(HOURLY*4), duke(HOURLY)
research\tduke(DEMAND), ucbvax(DEMAND)
ucbvax\tresearch(DAILY)
ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)
"""

#: The output the paper prints for it, verbatim (tab-separated here).
PAPER_1981_OUTPUT = [
    (0, "unc", "%s"),
    (500, "duke", "duke!%s"),
    (800, "phs", "duke!phs!%s"),
    (3000, "research", "duke!research!%s"),
    (3300, "ucbvax", "duke!research!ucbvax!%s"),
    (3395, "mit-ai", "duke!research!ucbvax!%s@mit-ai"),
    (3395, "stanford", "duke!research!ucbvax!%s@stanford"),
]

#: The domain-tree example (Domains section): seismo gateways .edu,
#: .rutgers under .edu, caip under .rutgers.
DOMAIN_TREE_MAP = """\
local\tseismo(DEDICATED)
seismo\tlocal(DEDICATED), .edu(DEDICATED)
.edu = {.rutgers}
.rutgers = {caip}
caip\tblue(LOCAL)
blue\tcaip(LOCAL)
"""

#: The PROBLEMS-section graph: the shortest-path tree cannot express the
#: route set we want (motown via topaz-direct, topaz via the domain).
MOTOWN_MAP = """\
princeton\tcaip(200), topaz(300)
caip\tprinceton(200), .rutgers.edu(25)
.rutgers.edu = {topaz}
topaz\tmotown(200), princeton(300)
motown\ttopaz(200)
"""


@pytest.fixture
def paper_map() -> str:
    return PAPER_1981_MAP


@pytest.fixture
def domain_map() -> str:
    return DOMAIN_TREE_MAP


@pytest.fixture
def motown_map() -> str:
    return MOTOWN_MAP


def run_paper(text: str, localhost: str, **kwargs):
    """Run the facade on a single text; small helper used everywhere."""
    from repro import Pathalias

    return Pathalias(**kwargs).run_text(text, localhost=localhost)
