"""Address-parsing tests across the three mailer behaviours."""

import pytest

from repro.errors import AddressError
from repro.mailer.address import MailerStyle, next_hop, parse_address

BANG = MailerStyle.BANG_RIGID
RFC = MailerStyle.RFC822_RIGID
HEUR = MailerStyle.HEURISTIC


class TestBangRigid:
    def test_simple_path(self):
        assert next_hop("hosta!hostb!user", BANG) == \
            ("hosta", "hostb!user")

    def test_local_user(self):
        assert next_hop("user", BANG) == (None, "user")

    def test_at_is_just_text(self):
        """The rigid UUCP mailer treats user@host as a local name."""
        assert next_hop("user@host", BANG) == (None, "user@host")

    def test_full_parse(self):
        parsed = parse_address("a!b!c!user", BANG)
        assert parsed.hops == ("a", "b", "c")
        assert parsed.user == "user"

    def test_mixed_trailing_at(self):
        parsed = parse_address("a!b!user@arpa", BANG)
        assert parsed.hops == ("a", "b")
        assert parsed.user == "user@arpa"  # delivered literally

    def test_empty_component_rejected(self):
        # The empty hop surfaces when the relay tries to forward "!b".
        with pytest.raises(AddressError):
            parse_address("a!!b", BANG)
        with pytest.raises(AddressError):
            next_hop("!a", BANG)


class TestRfc822Rigid:
    def test_simple(self):
        assert next_hop("user@host", RFC) == ("host", "user")

    def test_rightmost_at_wins(self):
        assert next_hop("user@one@two", RFC) == ("two", "user@one")

    def test_bang_is_local_text(self):
        """The rigid RFC822 mailer sends a!user@c to c."""
        assert next_hop("a!user@c", RFC) == ("c", "a!user")

    def test_source_route(self):
        """The 'clumsy' explicit-routing syntax RFC822 provides."""
        assert next_hop("@a,@b:user@c", RFC) == ("a", "@b:user@c")
        parsed = parse_address("@a,@b:user@c", RFC)
        assert parsed.hops == ("a", "b", "c")
        assert parsed.user == "user"

    def test_percent_hack(self):
        """user%host@relay: legal, yet 'neither the ARPANET goal of pure
        absolute addressing, nor the UUCP virtue of consistent
        syntax'."""
        assert next_hop("user%final@relay", RFC) == \
            ("relay", "user%final")
        parsed = parse_address("user%final@relay", RFC)
        assert parsed.hops == ("relay", "final")
        assert parsed.user == "user"

    def test_chained_percent(self):
        parsed = parse_address("u%h3%h2@h1", RFC)
        assert parsed.hops == ("h1", "h2", "h3")
        assert parsed.user == "u"

    def test_local(self):
        assert next_hop("postel", RFC) == (None, "postel")


class TestHeuristic:
    def test_bang_before_at_routes_first(self):
        """seismo!f.isi.usc.edu!postel-style routing: the bang path is
        outermost."""
        assert next_hop("a!b!user@c", HEUR) == ("a", "b!user@c")

    def test_pure_rfc(self):
        assert next_hop("user@host", HEUR) == ("host", "user")

    def test_at_before_bang_is_rfc_outermost(self):
        # The last '@' precedes the first '!': RFC822 rules apply, and
        # the 'host' (gw!x) is nonsense — exactly the consistent wrong
        # choice rigid parsing makes on such addresses.
        assert next_hop("user@gw!x", HEUR) == ("gw!x", "user")

    def test_full_parse_mixed(self):
        parsed = parse_address("seismo!mcvax!piet", HEUR)
        assert parsed.hops == ("seismo", "mcvax")
        assert parsed.user == "piet"

    def test_domain_route(self):
        parsed = parse_address("seismo!caip.rutgers.edu!pleasant", HEUR)
        assert parsed.hops == ("seismo", "caip.rutgers.edu")
        assert parsed.user == "pleasant"

    def test_as_bang_path_roundtrip(self):
        parsed = parse_address("a!b!user", HEUR)
        assert parsed.as_bang_path() == "a!b!user"


class TestDivergence:
    """The point of E10: the same address routes differently per style."""

    def test_mixed_address_diverges(self):
        address = "a!user@c"
        assert next_hop(address, BANG)[0] == "a"
        assert next_hop(address, RFC)[0] == "c"
        assert next_hop(address, HEUR)[0] == "a"

    def test_trailing_at_consistent_until_last_hop(self):
        """a!b!user@c: every bang-rigid relay agrees until the remainder
        is user@c, where only @-capable hosts finish the job."""
        address = "a!b!user@c"
        host, rest = next_hop(address, BANG)
        assert (host, rest) == ("a", "b!user@c")
        host, rest = next_hop(rest, BANG)
        assert (host, rest) == ("b", "user@c")
        assert next_hop("user@c", BANG) == (None, "user@c")  # stuck!
        assert next_hop("user@c", RFC) == ("c", "user")      # delivered


class TestErrors:
    def test_empty_address(self):
        with pytest.raises(AddressError):
            next_hop("", BANG)

    def test_bad_source_route(self):
        with pytest.raises(AddressError):
            next_hop("@a,@b", RFC)

    def test_unbounded_recursion_guard(self):
        with pytest.raises(AddressError):
            parse_address("!".join(["h"] * 300) + "!u", BANG)
