"""Alternate-route (k cheapest loopless paths) tests."""

import pytest

from repro.config import HeuristicConfig
from repro.core.alternates import alternate_routes, resilience
from repro.errors import RouteError
from repro.graph.build import build_graph
from repro.parser.grammar import parse_text

NO_HEUR = HeuristicConfig(infer_back_links=False, mixed_penalty=0,
                          gateway_penalty=0, domain_relay_penalty=0,
                          subdomain_up_penalty=0)


def graph_of(text: str):
    return build_graph([("d.map", parse_text(text))])


DIAMOND = """\
s a(10), b(30)
a t(10)
b t(10)
a b(5)
"""


class TestEnumeration:
    def test_cheapest_first(self):
        graph = graph_of(DIAMOND)
        routes = alternate_routes(graph, "s", "t", k=3,
                                  heuristics=NO_HEUR)
        assert routes[0].hosts == ("s", "a", "t")
        assert routes[0].cost == 20
        costs = [r.cost for r in routes]
        assert costs == sorted(costs)

    def test_second_route_found(self):
        graph = graph_of(DIAMOND)
        routes = alternate_routes(graph, "s", "t", k=3,
                                  heuristics=NO_HEUR)
        hosts = [r.hosts for r in routes]
        assert ("s", "a", "b", "t") in hosts  # 10+5+10 = 25
        assert ("s", "b", "t") in hosts       # 30+10 = 40

    def test_loopless(self):
        graph = graph_of(DIAMOND + "t s(1)\nb a(5)")
        routes = alternate_routes(graph, "s", "t", k=5,
                                  heuristics=NO_HEUR)
        for route in routes:
            assert len(set(route.hosts)) == len(route.hosts)

    def test_k_one_is_the_shortest_path(self):
        graph = graph_of(DIAMOND)
        (only,) = alternate_routes(graph, "s", "t", k=1,
                                   heuristics=NO_HEUR)
        assert only.hosts == ("s", "a", "t")

    def test_fewer_than_k_when_exhausted(self):
        graph = graph_of("s t(10)")
        routes = alternate_routes(graph, "s", "t", k=4,
                                  heuristics=NO_HEUR)
        assert len(routes) == 1

    def test_graph_restored_after_enumeration(self):
        graph = graph_of(DIAMOND)
        before = graph.link_count
        alternate_routes(graph, "s", "t", k=3, heuristics=NO_HEUR)
        assert graph.link_count == before

    def test_unknown_destination(self):
        with pytest.raises(RouteError):
            alternate_routes(graph_of("s t(1)"), "s", "ghost",
                             heuristics=NO_HEUR)

    def test_unreachable_destination(self):
        with pytest.raises(RouteError):
            alternate_routes(graph_of("s t(1)\nx y(1)"), "s", "x",
                             heuristics=NO_HEUR)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            alternate_routes(graph_of("s t(1)"), "s", "t", k=0,
                             heuristics=NO_HEUR)


class TestResilience:
    def test_redundant_host_has_two_first_hops(self):
        graph = graph_of(DIAMOND)
        scores = resilience(graph, "s", ["t"], heuristics=NO_HEUR)
        assert scores["t"] == 2  # via a and via b

    def test_single_point_of_failure(self):
        graph = graph_of("s a(10)\na t(10)\na t2(10)")
        scores = resilience(graph, "s", ["t"], heuristics=NO_HEUR)
        assert scores["t"] == 1

    def test_unreachable_scores_zero(self):
        graph = graph_of("s a(10)\nx y(10)")
        scores = resilience(graph, "s", ["x"], heuristics=NO_HEUR)
        assert scores["x"] == 0

    def test_dead_link_bypass_use_case(self):
        """The paper's 'circuitous route to bypass a dead link': the
        second-cheapest alternate is exactly that route."""
        graph = graph_of(DIAMOND)
        routes = alternate_routes(graph, "s", "t", k=2,
                                  heuristics=NO_HEUR)
        primary, fallback = routes
        # The fallback avoids the primary's middle relay a... or at
        # least differs somewhere en route.
        assert primary.hosts != fallback.hosts
