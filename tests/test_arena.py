"""Unit tests for the buffered-sbrk arena allocator simulator."""

import pytest

from repro.adt.arena import ALIGN, ArenaAllocator, SEGMENT_SIZE
from repro.adt.trace import pathalias_trace


class TestAlloc:
    def test_first_alloc_acquires_segment(self):
        arena = ArenaAllocator()
        arena.alloc(0, 100)
        assert arena.stats.segments == 1
        assert arena.stats.system_bytes == SEGMENT_SIZE

    def test_bump_within_segment(self):
        arena = ArenaAllocator()
        for block in range(10):
            arena.alloc(block, 64)
        assert arena.stats.segments == 1

    def test_oversized_allocation_gets_own_segment(self):
        arena = ArenaAllocator(segment_size=256)
        arena.alloc(0, 10_000)
        assert arena.stats.system_bytes >= 10_000

    def test_alignment_waste_tracked(self):
        arena = ArenaAllocator()
        arena.alloc(0, ALIGN + 1)  # rounds up to 2*ALIGN
        assert arena.stats.wasted_bytes == ALIGN - 1

    def test_zero_size_rejected(self):
        arena = ArenaAllocator()
        with pytest.raises(ValueError):
            arena.alloc(0, 0)

    def test_tiny_segment_rejected(self):
        with pytest.raises(ValueError):
            ArenaAllocator(segment_size=1)


class TestFree:
    def test_free_is_noop_for_space(self):
        arena = ArenaAllocator()
        arena.alloc(0, 100)
        before = arena.stats.system_bytes
        arena.free(0)
        arena.alloc(1, 100)
        assert arena.stats.system_bytes == before  # same segment reused

    def test_free_costs_constant_step(self):
        arena = ArenaAllocator()
        arena.alloc(0, 8)
        steps = arena.stats.steps
        arena.free(0)
        assert arena.stats.steps == steps + 1


class TestDonation:
    def test_donated_segment_used_before_sbrk(self):
        arena = ArenaAllocator(segment_size=128)
        arena.donate(4096)
        arena.alloc(0, 64)
        assert arena.stats.donations == 1
        assert arena.stats.system_bytes == 0


class TestTraceReplay:
    def test_run_full_trace(self):
        trace = pathalias_trace(nodes=200, links=600, seed=1)
        trace.validate()
        stats = ArenaAllocator().run(trace)
        assert stats.allocated_bytes == trace.total_allocated()
        assert stats.system_bytes >= trace.live_bytes_peak()

    def test_space_overhead_reasonable_on_parse_pattern(self):
        """The winning property: on the parse-heavy/free-late pattern the
        arena's system footprint stays close to useful bytes."""
        trace = pathalias_trace(nodes=500, links=1500, seed=2)
        stats = ArenaAllocator().run(trace)
        assert stats.space_overhead < 1.5

    def test_stats_steps_linear_in_operations(self):
        trace = pathalias_trace(nodes=100, links=300, seed=3)
        stats = ArenaAllocator().run(trace)
        # Bump allocation: a small constant per event.
        assert stats.steps < 5 * len(trace)
