"""The remote-backend federation tier: fan-out to per-shard daemons.

The acceptance bars:

* stitched answers from a federation of **remote backend** shards are
  byte-identical to the in-process federation over the same snapshots,
  across the whole ``d.*`` fixture matrix;
* one backend daemon restart mid-traffic loses no lookups — the
  client pool reconnects with backoff and retries transparently;
* the daemon's bulk ``TABLE``/``COSTS`` verbs export exactly the data
  the front end assembles its remote view from.
"""

from __future__ import annotations

import asyncio
from pathlib import Path

import pytest

from repro.core.pathalias import Pathalias
from repro.errors import FederationError, RouteError
from repro.service.backend import (
    BackendShard,
    ShardBackend,
    parse_backend_spec,
)
from repro.service.daemon import RouteService, serve
from repro.service.federation import (
    FederatedRouteDatabase,
    FederationService,
)
from repro.service.shard import FederationView, Shard
from repro.service.store import build_snapshot

DATA = Path(__file__).parent / "data"
REGIONS = ("backbone", "universities", "arpa")


@pytest.fixture(scope="module")
def shard_paths(tmp_path_factory):
    """One snapshot per regional map, built once for the module."""
    tmp = tmp_path_factory.mktemp("backend-shards")
    paths = {}
    for name in REGIONS:
        text = (DATA / f"d.{name}").read_text()
        path = tmp / f"{name}.snap"
        build_snapshot(Pathalias().build([(f"d.{name}", text)]), path)
        paths[name] = str(path)
    return paths


class _Cluster:
    """Per-shard RouteService daemons on one event loop, plus their
    ``host:port`` backend specs — the in-loop stand-in for separate
    daemon processes."""

    def __init__(self):
        self.servers = {}
        self.services = {}
        self.specs = {}

    async def start(self, name: str, snapshot_path: str) -> str:
        """Serve ``snapshot_path`` as shard ``name``; returns the
        backend spec."""
        service = RouteService(snapshot_path)
        server = await serve(service)
        port = server.sockets[0].getsockname()[1]
        self.servers[name] = server
        self.services[name] = service
        self.specs[name] = f"127.0.0.1:{port}"
        return self.specs[name]

    async def stop(self, name: str) -> int:
        """Stop shard ``name``'s daemon; returns the port it held."""
        server = self.servers.pop(name)
        port = server.sockets[0].getsockname()[1]
        server.close()
        await server.wait_closed()
        return port

    async def restart(self, name: str, snapshot_path: str,
                      port: int) -> None:
        """Bind a fresh daemon for ``name`` on the same port."""
        service = RouteService(snapshot_path)
        server = await asyncio.start_server(
            service.handle_connection, "127.0.0.1", port)
        self.servers[name] = server
        self.services[name] = service

    async def close(self) -> None:
        """Stop every daemon."""
        for name in list(self.servers):
            await self.stop(name)


class TestBackendSpec:
    def test_parse(self):
        assert parse_backend_spec("127.0.0.1:4311") == \
            ("127.0.0.1", 4311)
        assert parse_backend_spec("shard-a.example:80") == \
            ("shard-a.example", 80)
        assert parse_backend_spec("/maps/backbone.snap") is None
        assert parse_backend_spec("host:port") is None
        assert parse_backend_spec("host:0") is None
        assert parse_backend_spec("host:99999") is None
        assert parse_backend_spec("h ost:80") is None


class TestBulkVerbs:
    """TABLE/COSTS on the single-snapshot daemon."""

    async def request_lines(self, r, w, line):
        w.write(line.encode() + b"\n")
        await w.drain()
        head = (await r.readline()).decode().rstrip("\n")
        lines = []
        if head.startswith("OK"):
            for _ in range(int(head.split()[-1])):
                lines.append((await r.readline()).decode().rstrip("\n"))
        return head, lines

    def test_table_and_costs(self, shard_paths):
        async def scenario():
            service = RouteService(shard_paths["arpa"])
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)

            # TABLE bare: the routing index (sources + domains)
            head, lines = await self.request_lines(r, w, "TABLE")
            assert head == f"OK index {len(lines)}"
            entries = [tuple(line.split()) for line in lines]
            assert ("D", ".edu") in entries
            assert ("S", "seismo") in entries
            assert [name for _, name in entries] == \
                sorted(name for _, name in entries)

            # TABLE <source>: the whole table, name order
            head, lines = await self.request_lines(r, w,
                                                   "TABLE seismo")
            assert head.startswith("OK table ")
            names = [line.split()[1] for line in lines]
            assert names == sorted(names)
            assert "caip.rutgers.edu" in names

            # TABLE <source> <dest>...: batched exact lookups
            head, lines = await self.request_lines(
                r, w, "TABLE seismo brl-bmd nowhere caip.rutgers.edu")
            assert head == "OK table 3"
            got = {line.split()[1]: line.split()[0] for line in lines}
            assert got["nowhere"] == "-"
            assert got["brl-bmd"].isdigit()
            assert got["caip.rutgers.edu"].isdigit()

            # COSTS <source> <name>...: exact per-state costs, which
            # answer even for nodes the route records never print
            head, lines = await self.request_lines(
                r, w, "COSTS seismo ARPA mcvax nowhere")
            assert head == "OK costs 3"
            costs = dict(line.split()[::-1] for line in lines)
            assert costs["ARPA"].isdigit()  # net placeholder: priced
            assert costs["nowhere"] == "-"

            # errors keep the connection alive
            head, _ = await self.request_lines(r, w, "TABLE ghost")
            assert head == "ERR unknown-source ghost"
            head, _ = await self.request_lines(r, w, "COSTS")
            assert head.startswith("ERR usage")
            head, lines = await self.request_lines(r, w, "TABLE")
            assert head.startswith("OK index")

            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_costs_on_v1_snapshot(self, tmp_path):
        """A v1 snapshot has no STAT block: COSTS answers the distinct
        no-state-costs error and the connection survives."""
        text = (DATA / "d.backbone").read_text()
        v1 = tmp_path / "v1.snap"
        build_snapshot(Pathalias().build([("d.backbone", text)]), v1,
                       fmt=1)

        async def scenario():
            service = RouteService(str(v1))
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            head, _ = await self.request_lines(r, w, "COSTS ihnp4")
            assert head.startswith("ERR no-state-costs")
            head, _ = await self.request_lines(r, w, "TABLE ihnp4")
            assert head.startswith("OK table")
            w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())


class TestBackendShard:
    def test_connect_assembles_the_shard_surface(self, shard_paths):
        async def scenario():
            cluster = _Cluster()
            spec = await cluster.start("arpa", shard_paths["arpa"])
            host, port = parse_backend_spec(spec)
            shard = await BackendShard.connect(
                "arpa", ShardBackend("arpa", host, port))
            local = Shard.open("arpa", shard_paths["arpa"])
            assert shard.sources() == local.sources()
            assert shard.source_set == local.source_set
            assert shard.domains() == local.domains()
            assert shard.routing_index() == local.routing_index()
            assert shard.source_count == local.source_count
            assert shard.version == local.version == 2
            assert shard.path == f"tcp://{spec}"
            assert shard.snapshot == shard_paths["arpa"]
            # the async entry-query surface answers like the local one
            assert await shard.entry_resolve("seismo", "mcvax") == \
                await local.entry_resolve("seismo", "mcvax")
            assert await shard.entry_exact("seismo", "mcvax") == \
                await local.entry_exact("seismo", "mcvax")
            gates = ["seismo", "ucbvax", "nowhere"]
            assert await shard.route_legs("mit-ai", gates) == \
                await local.route_legs("mit-ai", gates)
            await cluster.close()

        asyncio.run(scenario())

    def test_connect_ships_the_compiled_index(self, shard_paths):
        # the front end gets its ownership automaton over the wire
        # (bulk TABLE --fsm), not by re-deriving dicts from the text
        # index — and the shipped block answers like a local compile
        async def scenario():
            cluster = _Cluster()
            spec = await cluster.start("arpa", shard_paths["arpa"])
            host, port = parse_backend_spec(spec)
            shard = await BackendShard.connect(
                "arpa", ShardBackend("arpa", host, port))
            assert shard.index_automaton is not None
            local = Shard.open("arpa", shard_paths["arpa"])
            index = local.routing_index()
            assert shard.routing_index() == index
            # payload i is position i of the shipped name table, and
            # every index name is a literal key of the automaton
            match = shard.index_automaton.matcher()
            for i, (name, _is_domain) in enumerate(index):
                assert match(name) == i
            assert match("no.such.name.anywhere") == -1
            await cluster.close()

        asyncio.run(scenario())

    def test_pre_fsm_daemon_falls_back_to_text_index(self,
                                                     shard_paths):
        # an old daemon parses "--fsm" as a source name and answers
        # ERR unknown-source; the client must fall back to TABLE text
        async def scenario():
            cluster = _Cluster()
            spec = await cluster.start("arpa", shard_paths["arpa"])
            host, port = parse_backend_spec(spec)
            backend = ShardBackend("arpa", host, port)
            real_call = backend._call_bulk

            async def old_daemon(line):
                if line == "TABLE --fsm":
                    return "ERR unknown-source --fsm", []
                return await real_call(line)

            backend._call_bulk = old_daemon
            shard = await BackendShard.connect("arpa", backend)
            assert shard.index_automaton is None
            local = Shard.open("arpa", shard_paths["arpa"])
            assert shard.routing_index() == local.routing_index()
            await cluster.close()

        asyncio.run(scenario())

    def test_corrupt_shipped_index_is_federation_error(self,
                                                       shard_paths):
        async def scenario():
            cluster = _Cluster()
            spec = await cluster.start("arpa", shard_paths["arpa"])
            host, port = parse_backend_spec(spec)
            backend = ShardBackend("arpa", host, port)
            real_call = backend._call_bulk

            async def corrupting(line):
                if line == "TABLE --fsm":
                    return "OK fsm 1", ["bm90LWEtYmxvY2s="]
                return await real_call(line)

            backend._call_bulk = corrupting
            with pytest.raises(FederationError,
                               match="corrupt index automaton"):
                await BackendShard.connect("arpa", backend)
            await cluster.close()

        asyncio.run(scenario())

    def test_unreachable_backend_is_federation_error(self):
        async def scenario():
            backend = ShardBackend("ghost", "127.0.0.1", 1,
                                   reconnect_patience=0.0)
            with pytest.raises(FederationError, match="unreachable"):
                await BackendShard.connect("ghost", backend)
            assert backend.state == "down"

        asyncio.run(scenario())


class TestLegSingleFlight:
    """Coalesced leg fetches survive speculative-stitch reaping.

    The stitched Dijkstra cancels speculative prefetch tasks it never
    expanded; a cancelled task parked on another fetch's in-flight
    future must neither poison that future for the owner (whose
    completion-signal ``set_result`` would hit an already-cancelled
    future) nor spuriously cancel unrelated coalesced lookups.
    """

    def test_cancelled_waiter_does_not_poison_the_fetch(self):
        calls = []

        class SlowBackend:
            def __init__(self):
                self.release = asyncio.Event()

            async def table_rows(self, entry, gates):
                calls.append((entry, tuple(gates)))
                await self.release.wait()
                return {g: (100, f"{entry}!{g}!%s") for g in gates}

        async def scenario():
            backend = SlowBackend()
            shard = BackendShard("slow", backend,
                                 [("a", False)], 1, "x.snap")
            owner = asyncio.ensure_future(shard.route_legs("a", ["g"]))
            await asyncio.sleep(0)  # owner claims the fetch
            waiter = asyncio.ensure_future(shard.route_legs("a", ["g"]))
            victim = asyncio.ensure_future(shard.route_legs("a", ["g"]))
            await asyncio.sleep(0)  # both coalesce on the owner
            await asyncio.sleep(0)
            victim.cancel()  # the stitch reaps a speculative task
            with pytest.raises(asyncio.CancelledError):
                await victim
            backend.release.set()
            legs = await asyncio.wait_for(owner, 5)
            assert legs == {"g": (100, "a!g!%s")}
            assert await asyncio.wait_for(waiter, 5) == legs
            assert calls == [("a", ("g",))]  # single flight held
            assert shard._leg_pending == {}

        asyncio.run(scenario())

    def test_cancelled_owner_hands_off_to_a_waiter(self):
        class Backend:
            def __init__(self):
                self.calls = 0

            async def table_rows(self, entry, gates):
                self.calls += 1
                if self.calls == 1:  # first flight never lands
                    await asyncio.Event().wait()
                return {g: (7, f"{g}!%s") for g in gates}

        async def scenario():
            backend = Backend()
            shard = BackendShard("slow", backend,
                                 [("a", False)], 1, "x.snap")
            owner = asyncio.ensure_future(shard.route_legs("a", ["g"]))
            await asyncio.sleep(0)
            waiter = asyncio.ensure_future(shard.route_legs("a", ["g"]))
            await asyncio.sleep(0)
            owner.cancel()
            with pytest.raises(asyncio.CancelledError):
                await owner
            # the keys come back unclaimed; the waiter retries them
            assert await asyncio.wait_for(waiter, 5) == {"g": (7, "g!%s")}
            assert backend.calls == 2
            assert shard._leg_pending == {}

        asyncio.run(scenario())


class TestFanOutFederation:
    """The tentpole bar: remote-backend federation == in-process."""

    def test_full_matrix_byte_identical_to_in_process(self,
                                                      shard_paths):
        local_view = FederationView(
            [Shard.open(name, path)
             for name, path in shard_paths.items()])

        async def scenario():
            cluster = _Cluster()
            backends = {}
            for name, path in shard_paths.items():
                backends[name] = await cluster.start(name, path)
            service = await FederationService.create(
                backends=backends, default_source="ihnp4")
            remote_view = service.view

            sources = local_view.sources()
            destinations = sources + ["caip.rutgers.edu",
                                      "ernie.berkeley.edu", "x.edu"]
            checked = 0
            for source in sources:
                for dest in destinations:
                    if dest == source:
                        continue
                    try:
                        want = local_view.resolve_with_cost(
                            source, dest, "user")
                    except RouteError as exc:
                        want = type(exc).__name__
                    try:
                        got = await remote_view.aresolve_with_cost(
                            source, dest, "user")
                    except RouteError as exc:
                        got = type(exc).__name__
                    assert type(want) is type(got), (source, dest)
                    if isinstance(want, str):
                        assert want == got, (source, dest)
                    else:
                        assert (got.cost, got.resolution, got.shard,
                                got.via) == \
                            (want.cost, want.resolution, want.shard,
                             want.via), (source, dest)
                    checked += 1
            assert checked > 1000  # the suite really swept the matrix
            await cluster.close()

        asyncio.run(scenario())

    def test_mixed_local_and_backend_shards(self, shard_paths):
        """--shard and --backend mix in one view; answers match the
        all-local federation."""
        local_view = FederationView(
            [Shard.open(name, path)
             for name, path in shard_paths.items()])

        async def scenario():
            cluster = _Cluster()
            spec = await cluster.start("universities",
                                       shard_paths["universities"])
            service = await FederationService.create(
                shards={"backbone": shard_paths["backbone"],
                        "arpa": shard_paths["arpa"]},
                backends={"universities": spec},
                default_source="ihnp4")
            for dest in ("topaz", "caip.rutgers.edu", "mit-ai"):
                want = local_view.resolve_with_cost("ihnp4", dest,
                                                    "user")
                got = await service.view.aresolve_with_cost(
                    "ihnp4", dest, "user")
                assert (got.cost, got.resolution) == \
                    (want.cost, want.resolution)
            stats = service.stats_line()
            assert "backends=1" in stats
            assert "backend_universities=connected:" in stats
            await cluster.close()

        asyncio.run(scenario())

    def test_protocol_replies_byte_compatible(self, shard_paths):
        """The fan-out front end's wire replies are indistinguishable
        from the in-process federation daemon's."""

        async def request(r, w, line):
            w.write(line.encode() + b"\n")
            await w.drain()
            return (await r.readline()).decode().rstrip("\n")

        async def scenario():
            cluster = _Cluster()
            backends = {}
            for name, path in shard_paths.items():
                backends[name] = await cluster.start(name, path)
            service = await FederationService.create(
                backends=backends, default_source="ihnp4")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            assert await request(r, w, "ROUTE topaz user") == \
                ("OK 650 topaz allegra!princeton!rutgers-ru!topaz!%s "
                 "allegra!princeton!rutgers-ru!topaz!user")
            assert await request(r, w, "EXACT topaz") == \
                "OK 650 topaz allegra!princeton!rutgers-ru!topaz!%s"
            assert await request(r, w, "SOURCE princeton") == \
                "OK source princeton backbone"
            assert await request(r, w, "ROUTE mit-ai bob") == \
                ("OK 695 mit-ai allegra!seismo!%s@mit-ai "
                 "allegra!seismo!bob@mit-ai")
            assert (await request(r, w, "ROUTE nowhere")) == \
                "ERR noroute nowhere"
            shards_reply = await request(r, w, "SHARDS")
            assert "arpa=17:tcp://" in shards_reply
            w.close()
            server.close()
            await server.wait_closed()
            await cluster.close()

        asyncio.run(scenario())

    def test_federated_client_unchanged(self, shard_paths):
        """FederatedRouteDatabase drives a fan-out front end without a
        single client-side change."""
        import threading

        ready = threading.Event()
        box = {}

        def run_front_end():
            async def amain():
                cluster = _Cluster()
                backends = {}
                for name, path in shard_paths.items():
                    backends[name] = await cluster.start(name, path)
                service = await FederationService.create(
                    backends=backends, default_source="ihnp4")
                server = await serve(service)
                box["port"] = server.sockets[0].getsockname()[1]
                box["stop"] = asyncio.Event()
                box["loop"] = asyncio.get_running_loop()
                ready.set()
                await box["stop"].wait()
                server.close()
                await server.wait_closed()
                await cluster.close()

            asyncio.run(amain())

        thread = threading.Thread(target=run_front_end, daemon=True)
        thread.start()
        assert ready.wait(10)
        try:
            with FederatedRouteDatabase(
                    ("127.0.0.1", box["port"])) as db:
                assert db.route("topaz") == \
                    "allegra!princeton!rutgers-ru!topaz!%s"
                res = db.resolve("caip.rutgers.edu", "honey")
                assert res.address == "seismo!caip.rutgers.edu!honey"
                shards = db.shards()
                assert set(shards) == set(REGIONS)
                stats = db.stats()
                assert stats["backends"] == "3"
        finally:
            box["loop"].call_soon_threadsafe(box["stop"].set)
            thread.join(10)


class TestBackendRestart:
    """The resilience bar: one backend daemon restart mid-traffic,
    zero failed lookups."""

    def test_restart_between_lookups(self, shard_paths):
        async def scenario():
            cluster = _Cluster()
            backends = {}
            for name, path in shard_paths.items():
                backends[name] = await cluster.start(name, path)
            service = await FederationService.create(
                backends=backends, default_source="ihnp4")
            fed = await service.view.aresolve_with_cost(
                "ihnp4", "topaz", "user")
            assert fed.cost == 650
            # bounce the universities daemon on the same port
            port = await cluster.stop("universities")
            await cluster.restart("universities",
                                  shard_paths["universities"], port)
            # the pooled sockets are stale; the next lookup must
            # reconnect transparently and still answer identically
            fed = await service.view.aresolve_with_cost(
                "ihnp4", "topaz", "user")
            assert fed.cost == 650
            assert fed.resolution.address == \
                "allegra!princeton!rutgers-ru!topaz!user"
            await cluster.close()

        asyncio.run(scenario())

    def test_restart_mid_traffic_no_failed_lookup(self, shard_paths):
        """Clients hammer stitched lookups while one backend daemon
        goes down and comes back; every request is answered OK."""
        requests_per_client = 30
        clients = 4

        async def scenario():
            cluster = _Cluster()
            backends = {}
            for name, path in shard_paths.items():
                backends[name] = await cluster.start(name, path)
            service = await FederationService.create(
                backends=backends, default_source="ihnp4")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]

            async def request(r, w, line):
                w.write(line.encode() + b"\n")
                await w.drain()
                return (await r.readline()).decode().rstrip("\n")

            async def client(i):
                r, w = await asyncio.open_connection("127.0.0.1",
                                                     port)
                answered = 0
                for k in range(requests_per_client):
                    reply = await request(r, w, f"ROUTE topaz u{i}.{k}")
                    assert reply == (
                        f"OK 650 topaz "
                        f"allegra!princeton!rutgers-ru!topaz!%s "
                        f"allegra!princeton!rutgers-ru!topaz!u{i}.{k}"
                    ), reply
                    answered += 1
                    await asyncio.sleep(0)
                w.close()
                return answered

            async def bouncer():
                # one restart of the universities backend mid-traffic;
                # the brief down window is inside the pool's
                # reconnect patience
                await asyncio.sleep(0.05)
                bounce_port = await cluster.stop("universities")
                await asyncio.sleep(0.1)
                await cluster.restart(
                    "universities", shard_paths["universities"],
                    bounce_port)
                return 1

            results = await asyncio.gather(
                *(client(i) for i in range(clients)), bouncer())
            assert results == [requests_per_client] * clients + [1]
            health = service.stats_line()
            assert "backend_universities=connected:" in health
            server.close()
            await server.wait_closed()
            await cluster.close()

        asyncio.run(scenario())


class TestBackendAdministration:
    async def request(self, r, w, line):
        w.write(line.encode() + b"\n")
        await w.drain()
        return (await r.readline()).decode().rstrip("\n")

    def test_attach_detach_backend_spec(self, shard_paths):
        """ATTACH accepts host:port specs; DETACH closes the pool
        after the swap."""
        async def scenario():
            cluster = _Cluster()
            spec_b = await cluster.start("backbone",
                                         shard_paths["backbone"])
            spec_u = await cluster.start("universities",
                                         shard_paths["universities"])
            service = await FederationService.create(
                backends={"backbone": spec_b},
                default_source="ihnp4")
            service.retire_grace = 0.05  # fast pool retirement
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            assert (await self.request(r, w, "ROUTE topaz u")) == \
                "ERR noroute topaz"
            reply = await self.request(
                r, w, f"ATTACH universities {spec_u}")
            assert reply.startswith("OK attached universities 11 ")
            assert (await self.request(r, w, "ROUTE topaz u")
                    ).startswith("OK 650 ")
            # the detached backend's pool retires in the background
            # (after the grace window for pinned in-flight lookups)
            backend = service.view.shards["universities"].backend
            assert await self.request(r, w, "DETACH universities") \
                == "OK detached universities"
            for _ in range(100):
                if backend.state == "closed":
                    break
                await asyncio.sleep(0.01)
            assert backend.state == "closed"
            # ... and the shard is gone from the picture
            assert (await self.request(r, w, "ROUTE topaz u")) == \
                "ERR noroute topaz"
            # a bad spec/port is an attach error, connection survives
            reply = await self.request(r, w,
                                       "ATTACH ghost 127.0.0.1:1")
            assert reply.startswith("ERR attach")
            assert (await self.request(r, w, "SHARDS")).startswith(
                "OK 1 backbone=10:tcp://")
            w.close()
            server.close()
            await server.wait_closed()
            await cluster.close()

        asyncio.run(scenario())

    def test_reload_forwards_to_backend_and_resyncs(self, shard_paths,
                                                    tmp_path):
        """RELOAD <shard> <snap> on a backend shard reloads the remote
        daemon and re-synchronizes the cached index in one swap."""
        revised = (DATA / "d.universities").read_text().replace(
            "princeton\tallegra(DEMAND), rutgers-ru(LOCAL), "
            "winnie(HOURLY)",
            "princeton\tallegra(DEMAND), rutgers-ru(DEMAND), "
            "winnie(HOURLY)")
        revised_snap = tmp_path / "universities2.snap"
        build_snapshot(
            Pathalias().build([("d.universities", revised)]),
            revised_snap)

        async def scenario():
            cluster = _Cluster()
            backends = {}
            for name, path in shard_paths.items():
                backends[name] = await cluster.start(name, path)
            service = await FederationService.create(
                backends=backends, default_source="ihnp4")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            assert (await self.request(r, w, "ROUTE topaz u")
                    ).startswith("OK 650 ")
            reply = await self.request(
                r, w, f"RELOAD universities {revised_snap}")
            assert reply.startswith("OK reloaded universities 11 ")
            # the remote daemon itself was reloaded...
            assert cluster.services["universities"].reader.path == \
                revised_snap
            # ... and stitched answers use the repriced link
            assert (await self.request(r, w, "ROUTE topaz u")
                    ).startswith("OK 925 ")
            # untouched shards keep answering identically
            assert (await self.request(r, w, "ROUTE mcvax piet")) == \
                "OK 2100 mcvax seismo!mcvax!%s seismo!mcvax!piet"
            # reload of a missing file: ERR reload, old picture serves
            bad = await self.request(
                r, w, "RELOAD universities /no/such.snap")
            assert bad.startswith("ERR reload")
            assert (await self.request(r, w, "ROUTE topaz u")
                    ).startswith("OK 925 ")
            w.close()
            server.close()
            await server.wait_closed()
            await cluster.close()

        asyncio.run(scenario())

    def test_pinned_format_reload_rolls_the_backend_back(
            self, shard_paths, tmp_path):
        """A forwarded reload that violates the front end's --format
        pin must not split-brain the shard: the backend daemon is
        rolled back to the snapshot the cached index still describes,
        and answers stay consistent."""
        v1 = tmp_path / "universities-v1.snap"
        build_snapshot(
            Pathalias().build(
                [("d.universities",
                  (DATA / "d.universities").read_text())]),
            v1, fmt=1)

        async def scenario():
            cluster = _Cluster()
            backends = {}
            for name, path in shard_paths.items():
                backends[name] = await cluster.start(name, path)
            service = await FederationService.create(
                backends=backends, default_source="ihnp4",
                require_format=2)
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            assert (await self.request(r, w, "ROUTE topaz u")
                    ).startswith("OK 650 ")
            reply = await self.request(r, w,
                                       f"RELOAD universities {v1}")
            assert reply.startswith("ERR reload")
            assert "--format 2" in reply
            # the backend daemon was rolled back, so the front end's
            # cached index and the remote snapshot still agree ...
            assert cluster.services["universities"].reader.path == \
                Path(shard_paths["universities"])
            # ... and stitched answers are unchanged
            assert (await self.request(r, w, "ROUTE topaz u")
                    ).startswith("OK 650 ")
            stats = await self.request(r, w, "STATS")
            assert "formats=2,2,2" in stats
            w.close()
            server.close()
            await server.wait_closed()
            await cluster.close()

        asyncio.run(scenario())


class TestNotifyInvalidatesCache:
    """A backend daemon reloaded *directly* (never through the front
    end) pushes NOTIFY; the front end's result cache must bump for
    exactly that shard — once on the push, again after the re-sync
    swap — so no caller ever gets a pre-reload cached answer after
    the new generation is visible."""

    async def request(self, r, w, line):
        w.write(line.encode() + b"\n")
        await w.drain()
        return (await r.readline()).decode().rstrip("\n")

    def test_direct_backend_reload_bumps_the_front_cache(
            self, shard_paths, tmp_path):
        revised = (DATA / "d.universities").read_text().replace(
            "princeton\tallegra(DEMAND), rutgers-ru(LOCAL), "
            "winnie(HOURLY)",
            "princeton\tallegra(DEMAND), rutgers-ru(DEMAND), "
            "winnie(HOURLY)")
        revised_snap = tmp_path / "universities-notify.snap"
        build_snapshot(
            Pathalias().build([("d.universities", revised)]),
            revised_snap)

        async def scenario():
            cluster = _Cluster()
            backends = {}
            for name, path in shard_paths.items():
                backends[name] = await cluster.start(name, path)
            service = await FederationService.create(
                backends=backends, default_source="ihnp4")
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            r, w = await asyncio.open_connection("127.0.0.1", port)
            # prime the cache with the old-generation answer
            assert (await self.request(r, w, "ROUTE topaz u")
                    ).startswith("OK 650 ")
            assert (await self.request(r, w, "ROUTE topaz v")
                    ).startswith("OK 650 ")
            assert service.cache.hits == 1
            # reload the backend daemon directly — the front end
            # learns only through the NOTIFY push
            await cluster.services["universities"].reload(
                str(revised_snap))
            for _ in range(500):
                if service.resyncs >= 1:
                    break
                await asyncio.sleep(0.01)
            assert service.resyncs == 1
            assert service.reloads == 0
            # bumped on the push AND after the re-sync swap, for
            # exactly the reloaded shard
            assert service.cache.invalidations >= 2
            assert service.cache.generations.token(
                "universities") >= 2
            assert service.cache.generations.token("backbone") == 0
            # the next answer is the new generation's, not the cache's
            assert (await self.request(r, w, "ROUTE topaz u")
                    ).startswith("OK 925 ")
            stats = await self.request(r, w, "STATS")
            assert "n_cache_invalidations=" in stats
            w.close()
            server.close()
            await server.wait_closed()
            await cluster.close()

        asyncio.run(scenario())
