"""Back-link inference tests (Back links section)."""

from repro.config import HeuristicConfig
from repro.core.mapper import Mapper
from repro.graph.build import build_graph
from repro.graph.node import LinkKind
from repro.parser.grammar import parse_text


def run(text: str, source: str, **cfg):
    graph = build_graph([("d.map", parse_text(text))])
    return Mapper(graph, HeuristicConfig(**cfg)).run(source)


class TestInference:
    def test_passive_site_reached_by_implication(self):
        """A site that only declares its outbound poll becomes reachable
        through an invented reverse link."""
        result = run("hub world(10)\nleaf hub(5000)", "hub")
        assert result.cost("leaf") == 5000
        assert result.stats.inferred_links == 1

    def test_inferred_link_flagged(self):
        result = run("hub world(10)\nleaf hub(5000)", "hub")
        (owner, link), = result.inferred
        assert owner.name == "hub"
        assert link.to.name == "leaf"
        assert link.kind is LinkKind.INFERRED

    def test_back_link_reuses_forward_cost(self):
        result = run("hub x(1)\nleaf hub(750)", "hub")
        assert result.cost("leaf") == 750

    def test_back_link_factor(self):
        result = run("hub x(1)\nleaf hub(750)", "hub",
                     back_link_factor=3)
        assert result.cost("leaf") == 2250

    def test_chain_of_passive_sites(self):
        """Inference iterates: a leaf hanging off another leaf needs a
        second round."""
        result = run("hub x(1)\nleaf1 hub(100)\nleaf2 leaf1(100)", "hub")
        assert result.cost("leaf1") == 100
        assert result.cost("leaf2") == 200
        assert result.stats.back_link_rounds >= 2

    def test_disabled_leaves_unreachable(self):
        result = run("hub x(1)\nleaf hub(100)", "hub",
                     infer_back_links=False)
        assert result.cost("leaf") is None
        assert "leaf" in {n.name for n in result.unreachable()}

    def test_truly_isolated_host_stays_unreachable(self):
        """No outbound connections: nothing to infer from."""
        result = run("hub x(1)\nlonely nowhere(10)", "hub")
        assert result.cost("lonely") is None
        assert result.cost("nowhere") is None

    def test_cheaper_direct_path_preferred_over_inferred(self):
        result = run("hub leaf(10)\nleaf hub(5000)", "hub")
        assert result.cost("leaf") == 10
        assert result.stats.inferred_links == 0

    def test_operator_copied_from_forward_link(self):
        result = run("hub x(1)\nleaf @hub(100)", "hub")
        (_, link), = result.inferred
        assert link.op == "@"
