"""Batch-precomputation tests."""

from repro.config import HeuristicConfig
from repro.core.batch import (
    BatchMapper,
    query_single_destination,
    run_for_source,
)
from repro.core.mapper import Mapper
from repro.graph.build import build_graph
from repro.parser.grammar import parse_text

from tests.conftest import PAPER_1981_MAP


def graph_of(text: str):
    return build_graph([("d.map", parse_text(text))])


class TestRunForSource:
    def test_back_links_removed_after_run(self):
        graph = graph_of("hub x(1)\nleaf hub(100)")
        before = graph.link_count
        result = run_for_source(graph, "hub")
        assert result.cost("leaf") == 100  # inference worked...
        assert graph.link_count == before  # ...and left no residue

    def test_retain_option(self):
        graph = graph_of("hub x(1)\nleaf hub(100)")
        before = graph.link_count
        run_for_source(graph, "hub", retain_back_links=True)
        assert graph.link_count == before + 1

    def test_repeated_runs_identical(self):
        graph = graph_of(PAPER_1981_MAP)
        first = run_for_source(graph, "unc")
        second = run_for_source(graph, "unc")
        for node in graph.nodes:
            a, b = first.best(node), second.best(node)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.cost == b.cost


class TestBatchMapper:
    def test_sources_exclude_nets_and_privates(self):
        graph = build_graph([
            ("f", parse_text(
                "private {p}\na p(5)\np a(5)\nNET = {a, b}(5)\n"
                "b a(5)\na b(5)", "f")),
        ])
        batch = BatchMapper(graph)
        assert set(batch.sources()) == {"a", "b"}

    def test_all_sources_tables(self):
        graph = graph_of(PAPER_1981_MAP)
        batch = BatchMapper(graph).run()
        assert set(batch.tables) == {"unc", "duke", "phs", "research",
                                     "ucbvax", "mit-ai", "stanford"}
        # Each table is rooted at its own source.
        for source, table in batch.tables.items():
            assert table.route(source) == "%s"

    def test_paper_output_reproduced_within_batch(self):
        graph = graph_of(PAPER_1981_MAP)
        batch = BatchMapper(graph).run(["unc"])
        table = batch["unc"]
        assert table.route("mit-ai") == "duke!research!ucbvax!%s@mit-ai"

    def test_counters_accumulate(self):
        graph = graph_of(PAPER_1981_MAP)
        batch = BatchMapper(graph).run(["unc", "duke"])
        assert batch.total_pops > 0
        assert len(batch) == 2

    def test_write_paths_files(self, tmp_path):
        graph = graph_of(PAPER_1981_MAP)
        count = BatchMapper(graph).write_paths_files(
            tmp_path, sources=["unc", "duke"])
        assert count == 2
        content = (tmp_path / "paths.unc").read_text()
        assert "phs\tduke!phs!%s" in content

    def test_heuristics_respected(self):
        graph = graph_of("a @b(10)\nb c(20)")
        strict = BatchMapper(
            graph, HeuristicConfig(mixed_penalty=1000)).run(["a"])
        assert strict["a"].lookup("c").cost == 1030


class TestSingleDestinationQuery:
    def test_matches_full_run(self):
        graph = graph_of(PAPER_1981_MAP)
        full = Mapper(graph).run("unc")
        for destination in ("duke", "phs", "ucbvax", "mit-ai"):
            cost = query_single_destination(graph, "unc", destination)
            assert cost == full.cost(destination)

    def test_unknown_destination(self):
        graph = graph_of(PAPER_1981_MAP)
        assert query_single_destination(graph, "unc", "zebra") is None

    def test_early_stop_does_less_work(self):
        lines = [f"h{i} h{i+1}(10), h{max(0, i-1)}(10)"
                 for i in range(200)]
        graph = graph_of("\n".join(lines))
        mapper = Mapper(graph)
        target = graph.require("h3")
        mapper.run("h0", stop_at=target)
        assert mapper.stats.pops < 20  # stopped long before 200

    def test_unreachable_destination_with_backlinks(self):
        graph = graph_of("hub x(1)\nleaf hub(100)")
        cost = query_single_destination(graph, "hub", "leaf")
        assert cost == 100  # back-link continuation still applies
