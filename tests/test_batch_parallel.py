"""Tests for the parallel (and compiled-serial) batch mapper."""

import pytest

from repro.config import HeuristicConfig
from repro.core import batch as batch_module
from repro.core.batch import BatchMapper, default_jobs
from repro.graph.build import build_graph
from repro.parser.grammar import parse_text

from tests.conftest import PAPER_1981_MAP
from tests.test_sample_maps import FILES as SAMPLE_FILES


@pytest.fixture(scope="module")
def sample_graph():
    named = [(p.name, p.read_text()) for p in SAMPLE_FILES]
    return build_graph([(n, parse_text(t, n)) for n, t in named])


def tables_text(batch):
    return {source: batch[source].format_tab() for source in batch}


class TestEngines:
    def test_compact_matches_reference(self, sample_graph):
        sources = BatchMapper(sample_graph).sources()
        ref = BatchMapper(sample_graph, engine="reference").run(sources)
        fast = BatchMapper(sample_graph, engine="compact").run(sources)
        assert tables_text(ref) == tables_text(fast)
        assert ref.total_pops == fast.total_pops
        assert ref.total_relaxations == fast.total_relaxations
        assert fast.engine == "compact"

    def test_unknown_engine_rejected(self, sample_graph):
        with pytest.raises(ValueError):
            BatchMapper(sample_graph, engine="vax")

    def test_heuristics_respected_by_compact(self):
        graph = build_graph([("f", parse_text("a @b(10)\nb c(20)", "f"))])
        strict = BatchMapper(
            graph, HeuristicConfig(mixed_penalty=1000)).run(["a"])
        assert strict["a"].lookup("c").cost == 1030


class TestParallel:
    def test_matches_serial_and_merges_deterministically(
            self, sample_graph):
        sources = BatchMapper(sample_graph).sources()
        serial = BatchMapper(sample_graph).run(sources)
        parallel = BatchMapper(sample_graph, jobs=2).run(sources)
        assert list(parallel.tables) == sources  # requested order
        assert tables_text(serial) == tables_text(parallel)
        assert parallel.total_pops == serial.total_pops
        assert parallel.total_relaxations == serial.total_relaxations
        assert parallel.engine == "compact/2"

    def test_rehydrated_records_carry_graph_nodes(self, sample_graph):
        parallel = BatchMapper(sample_graph, jobs=2).run(["ihnp4"])
        record = parallel["ihnp4"].lookup("mcvax")
        assert record.node is sample_graph.require("mcvax")

    def test_more_jobs_than_sources(self, sample_graph):
        batch = BatchMapper(sample_graph, jobs=8).run(["ihnp4", "mcvax"])
        assert set(batch.tables) == {"ihnp4", "mcvax"}
        assert batch.engine == "compact/2"  # clamped to the work

    def test_single_source_stays_serial(self, sample_graph):
        batch = BatchMapper(sample_graph, jobs=4).run(["ihnp4"])
        assert batch.engine == "compact"

    def test_write_paths_files_parallel(self, sample_graph, tmp_path):
        count = BatchMapper(sample_graph, jobs=2).write_paths_files(
            tmp_path, sources=["ihnp4", "mcvax", "princeton"])
        assert count == 3
        content = (tmp_path / "paths.ihnp4").read_text()
        assert "allegra\tallegra!%s" in content

    def test_pool_failure_falls_back_to_serial(self, sample_graph,
                                               monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(batch_module, "ProcessPoolExecutor",
                            broken_pool)
        batch = BatchMapper(sample_graph, jobs=2).run(["ihnp4", "mcvax"])
        assert set(batch.tables) == {"ihnp4", "mcvax"}
        assert batch.engine.startswith("compact (serial fallback")

    def test_second_best_survives_worker_round_trip(self):
        graph = build_graph([("d.map", parse_text(PAPER_1981_MAP))])
        cfg = HeuristicConfig(second_best=True)
        serial = BatchMapper(graph, cfg).run(["unc", "ucbvax"])
        parallel = BatchMapper(graph, cfg, jobs=2).run(["unc", "ucbvax"])
        assert tables_text(serial) == tables_text(parallel)


def test_default_jobs_positive():
    assert default_jobs() >= 1
