"""Graph-builder tests: the paper's data-structure figures as assertions."""

import pytest

from repro.config import DEAD, DEFAULT_LINK_COST
from repro.errors import GraphError
from repro.graph.build import GraphBuilder, build_graph
from repro.graph.node import LinkKind
from repro.parser.ast import Direction
from repro.parser.grammar import parse_text


def build(text: str, filename: str = "d.map"):
    return build_graph([(filename, parse_text(text))])


def build_files(*named_texts):
    return build_graph([(name, parse_text(text, name))
                        for name, text in named_texts])


class TestBasicGraph:
    def test_figure_two_node_graph(self):
        """The a->b(10), a->c(20) figure from DATA STRUCTURES."""
        graph = build("a b(10), c(20)")
        a = graph.require("a")
        assert [(l.to.name, l.cost) for l in a.links] == \
            [("b", 10), ("c", 20)]
        assert graph.require("b").links == []

    def test_nodes_interned_once(self):
        graph = build("a b(10)\nb a(20)")
        assert len(graph.nodes) == 2

    def test_default_cost(self):
        graph = build("a b")
        assert graph.require("a").links[0].cost == DEFAULT_LINK_COST

    def test_link_carries_operator(self):
        graph = build("a @b(10)")
        link = graph.require("a").links[0]
        assert link.op == "@"
        assert link.direction is Direction.RIGHT

    def test_self_link_ignored_with_warning(self):
        graph = build("a a(10), b(20)")
        assert len(graph.require("a").links) == 1
        assert any("self" in w for w in graph.warnings)

    def test_find_missing_returns_none(self):
        graph = build("a b")
        assert graph.find("zebra") is None
        with pytest.raises(GraphError):
            graph.require("zebra")


class TestDuplicateLinks:
    def test_cheaper_wins(self):
        graph = build("a b(100)\na b(10)")
        assert graph.require("a").links[0].cost == 10
        assert any("duplicate" in w for w in graph.warnings)

    def test_more_expensive_ignored(self):
        graph = build("a b(10)\na b(100)")
        assert graph.require("a").links[0].cost == 10

    def test_cross_file_duplicate_no_warning(self):
        graph = build_files(("f1", "a b(100)"), ("f2", "a b(10)"))
        assert graph.require("a").links[0].cost == 10
        assert not any("duplicate" in w for w in graph.warnings)


class TestNetworks:
    def test_clique_star_representation(self):
        """The net figure: pair of edges between net node and each
        member, member->net carries the cost, net->member is free."""
        graph = build("UNC-dwarf = {dopey, grumpy, sleepy}(10)")
        net = graph.require("UNC-dwarf")
        assert net.is_net
        assert len(net.links) == 3
        for link in net.links:
            assert link.kind is LinkKind.NET_MEMBER
            assert link.cost == 0
        for member_name in ("dopey", "grumpy", "sleepy"):
            member = graph.require(member_name)
            (link,) = member.links
            assert link.kind is LinkKind.MEMBER_NET
            assert link.cost == 10
            assert link.to is net

    def test_edge_count_linear_not_quadratic(self):
        members = ", ".join(f"m{i}" for i in range(50))
        graph = build(f"BIG = {{{members}}}(5)")
        assert graph.link_count == 100  # 2n, not n(n-1)

    def test_net_declared_twice_merges_members(self):
        graph = build("NET = {a, b}(10)\nNET = {c}(10)")
        net = graph.require("NET")
        assert {l.to.name for l in net.links} == {"a", "b", "c"}

    def test_domain_flag(self):
        graph = build(".edu = {.rutgers}")
        assert graph.require(".edu").is_domain
        assert graph.require(".edu").gatewayed

    def test_domain_default_cost_zero(self):
        graph = build(".edu = {campus}")
        campus = graph.require("campus")
        assert campus.links[0].cost == 0

    def test_non_domain_net_not_gatewayed_by_default(self):
        graph = build("NET = {a, b}(10)")
        assert not graph.require("NET").gatewayed

    def test_gatewayed_declaration(self):
        graph = build("gatewayed {NET}\nNET = {a, b}(10)")
        assert graph.require("NET").gatewayed

    def test_gateway_collection(self):
        graph = build("gatewayed {NET}\nNET = {a, b}(10)\ngw NET(5)")
        net = graph.require("NET")
        assert {n.name for n in net.gateways} == {"gw"}


class TestAliases:
    def test_figure_alias_edges(self):
        """The princeton/fun figure: a pair of zero-cost ALIAS edges —
        'aliases are a property of edges, not vertices'."""
        graph = build("princeton = fun")
        princeton = graph.require("princeton")
        fun = graph.require("fun")
        (p_link,) = princeton.links
        (f_link,) = fun.links
        assert p_link.kind is LinkKind.ALIAS and p_link.cost == 0
        assert f_link.kind is LinkKind.ALIAS and f_link.cost == 0
        assert p_link.to is fun and f_link.to is princeton

    def test_no_primary_name(self):
        """All aliases equal: both directions exist, no designated
        primary."""
        graph = build("nosc = noscvax")
        assert graph.require("nosc").links[0].to.name == "noscvax"
        assert graph.require("noscvax").links[0].to.name == "nosc"


class TestPrivate:
    def test_figure_bilbo(self):
        """The two-bilbo figure: without private, links merge onto one
        node; with private (in another file), two distinct nodes."""
        merged = build_files(
            ("f1", "bilbo princeton(10)"),
            ("f2", "bilbo wiretap(10)"))
        assert len(merged.require("bilbo").links) == 2

        split = build_files(
            ("f1", "bilbo princeton(10)"),
            ("f2", "private {bilbo}\nbilbo wiretap(10)"))
        public = split.require("bilbo")
        assert [l.to.name for l in public.links] == ["princeton"]
        privates = [n for n in split.nodes
                    if n.name == "bilbo" and n.private]
        assert len(privates) == 1
        assert [l.to.name for l in privates[0].links] == ["wiretap"]

    def test_private_scope_starts_at_declaration(self):
        """References before the declaration bind to the global node."""
        graph = build("bilbo early(10)\nprivate {bilbo}\n"
                      "bilbo late(10)")
        public = graph.require("bilbo")
        assert [l.to.name for l in public.links] == ["early"]

    def test_private_scope_ends_at_file_boundary(self):
        graph = build_files(
            ("f1", "private {bilbo}\nbilbo wiretap(10)"),
            ("f2", "bilbo princeton(10)"))
        assert [l.to.name for l in graph.require("bilbo").links] == \
            ["princeton"]

    def test_double_private_warns(self):
        graph = build("private {x}\nprivate {x}\nx y(1)")
        assert any("already private" in w for w in graph.warnings)


class TestDeadAdjustDelete:
    def test_dead_host_surcharges_inbound(self):
        graph = build("a b(10)\ndead {b}")
        assert graph.require("a").links[0].cost >= DEAD

    def test_dead_link(self):
        graph = build("a b(10), c(10)\ndead {a!b}")
        links = {l.to.name: l for l in graph.require("a").links}
        assert links["b"].cost >= DEAD
        assert links["b"].dead
        assert links["c"].cost == 10

    def test_dead_undeclared_link_created_as_last_resort(self):
        graph = build("a x(1)\nb x(1)\ndead {a!b}")
        links = {l.to.name for l in graph.require("a").links}
        assert "b" in links

    def test_adjust_applies_to_outgoing(self):
        graph = build("a b(10), c(20)\nadjust {a(100)}")
        assert [l.cost for l in graph.require("a").links] == [110, 120]

    def test_adjust_negative_clamps_at_zero(self):
        graph = build("a b(10)\nadjust {a(-50)}")
        assert graph.require("a").links[0].cost == 0

    def test_delete_host_removes_node_and_links(self):
        graph = build("a b(10), c(10)\nb c(5)\ndelete {b}")
        assert graph.find("b") is None
        assert [l.to.name for l in graph.require("a").links] == ["c"]

    def test_delete_link_only(self):
        graph = build("a b(10), c(10)\ndelete {a!b}")
        assert [l.to.name for l in graph.require("a").links] == ["c"]
        assert graph.find("b") is not None

    def test_unknown_names_warn(self):
        graph = build("a b(1)\ndead {ghost}")
        assert any("ghost" in w for w in graph.warnings)


class TestFileDecl:
    def test_file_statement_resets_private_scope(self):
        """A `file "x"` marker behaves like a new input file: private
        names declared before it go out of scope."""
        graph = build('private {bilbo}\nbilbo inner(10)\n'
                      'file "next-map"\nbilbo outer(10)')
        public = graph.require("bilbo")
        assert [l.to.name for l in public.links] == ["outer"]
        privates = [n for n in graph.nodes
                    if n.name == "bilbo" and n.private]
        assert len(privates) == 1
        assert [l.to.name for l in privates[0].links] == ["inner"]

    def test_file_statement_updates_origin(self):
        graph = build('file "second"\nnewhost x(1)')
        assert graph.require("newhost").origin == "second"


class TestBuilderLifecycle:
    def test_finalize_twice_rejected(self):
        builder = GraphBuilder()
        builder.finalize()
        with pytest.raises(GraphError):
            builder.finalize()

    def test_add_after_finalize_rejected(self):
        builder = GraphBuilder()
        builder.finalize()
        with pytest.raises(GraphError):
            builder.add(parse_text("a b")[0])
