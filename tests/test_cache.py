"""The generation-stamped result cache: layer semantics and races.

The acceptance bars:

* a :class:`CachingResolver` answer is byte-identical to the inner
  surface's, for exact matches, domain fallbacks, and errors alike —
  including the error *class*, so a cached ``FederationError`` still
  reports the ``federation`` wire code;
* invalidation is an O(1) generation bump that strands every older
  entry, and a result computed against a pre-bump view is **never**
  inserted as current (the stamp discipline), even when the compute
  spans await points in a live federation;
* the differential oracle (``resolve_with_cost_dict``) bypasses the
  cache unconditionally — a deliberately poisoned entry is invisible
  to it;
* negative entries are bounded separately, so a scan of garbage names
  cannot evict the hot positive set.
"""

from __future__ import annotations

import asyncio
from pathlib import Path

import pytest

from repro.core.pathalias import Pathalias
from repro.errors import FederationError, RouteError
from repro.mailer.routedb import RouteDatabase
from repro.service.cache import (
    DEFAULT_CACHE_SIZE,
    CachingResolver,
    Generations,
    ResultCache,
    negative_capacity,
)
from repro.service.daemon import RouteService
from repro.service.federation import FederationService
from repro.service.store import (
    SnapshotReader,
    SnapshotResolver,
    build_snapshot,
)

DATA = Path(__file__).parent / "data"
REGIONS = ("backbone", "universities", "arpa")

MAP_V1 = """\
a\tb(10), c(100)
b\ta(10), c(10)
c\tb(10), a(100), d(10)
d\tc(10)
"""

#: same topology, pricier bridge: a's route to c and d changes.
MAP_V2 = MAP_V1.replace("b\ta(10), c(10)", "b\ta(10), c(500)")


def make_snapshot(text, path):
    build_snapshot(Pathalias().build([("d.map", text)]), path)
    return str(path)


@pytest.fixture(scope="module")
def shard_paths(tmp_path_factory):
    """One snapshot per regional map, built once for the module."""
    tmp = tmp_path_factory.mktemp("cache-shards")
    paths = {}
    for name in REGIONS:
        text = (DATA / f"d.{name}").read_text()
        path = tmp / f"{name}.snap"
        build_snapshot(Pathalias().build([(f"d.{name}", text)]), path)
        paths[name] = str(path)
    return paths


class TestGenerations:
    def test_bump_advances_token_and_epoch(self):
        gen = Generations()
        assert gen.epoch == 0
        assert gen.token("uni") == 0
        assert gen.bump("uni") == 1
        assert gen.token("uni") == 1
        assert gen.epoch == 1

    def test_any_shard_bump_moves_the_composite_epoch(self):
        """Stitched answers can change when *any* shard moves, so the
        epoch — the correctness carrier — advances on every bump."""
        gen = Generations()
        gen.bump("backbone")
        gen.bump("arpa")
        assert gen.token("backbone") == 1
        assert gen.token("arpa") == 1
        assert gen.token("universities") == 0
        assert gen.epoch == 2


class TestResultCache:
    def test_lru_bounds_positive_entries(self):
        cache = ResultCache(size=3)
        for k in range(5):
            cache.put(("R", f"h{k}"), k, cache.epoch)
        assert len(cache) == 3
        assert cache.get(("R", "h0")) is None  # evicted, oldest first
        assert cache.get(("R", "h4")) == (False, 4)

    def test_get_refreshes_recency(self):
        cache = ResultCache(size=2)
        cache.put(("R", "a"), 1, cache.epoch)
        cache.put(("R", "b"), 2, cache.epoch)
        assert cache.get(("R", "a")) == (False, 1)  # a is now newest
        cache.put(("R", "c"), 3, cache.epoch)
        assert cache.get(("R", "b")) is None
        assert cache.get(("R", "a")) == (False, 1)

    def test_bump_strands_every_entry_in_o1(self):
        cache = ResultCache(size=8)
        for k in range(8):
            cache.put(("R", f"h{k}"), k, cache.epoch)
        cache.bump()
        assert cache.invalidations == 1
        # no scan happened — entries are reaped lazily, on contact
        assert len(cache) == 8
        assert cache.get(("R", "h3")) is None
        assert len(cache) == 7  # the probed corpse was reaped
        # a post-bump insert with the *new* stamp is live again
        cache.put(("R", "h3"), 33, cache.epoch)
        assert cache.get(("R", "h3")) == (False, 33)

    def test_put_drops_stale_stamp(self):
        """The insertion-race rule: a result computed against
        generation N must never be inserted once a bump made N+1
        current."""
        cache = ResultCache(size=4)
        stamp = cache.epoch
        cache.bump()  # a reload landed while the compute ran
        assert cache.put(("R", "x"), 1, stamp) is False
        assert cache.get(("R", "x")) is None
        assert cache.put_negative(
            ("R", "y"), RouteError("no"), stamp) is False

    def test_negative_capacity_is_separate(self):
        """A scan of garbage names competes only with other garbage:
        it can never evict the hot positive set."""
        cache = ResultCache(size=100, negative_size=4)
        for k in range(10):
            cache.put(("R", f"hot{k}"), k, cache.epoch)
        for k in range(500):
            cache.put_negative(("R", f"junk{k}"),
                               RouteError(f"no route to junk{k}"),
                               cache.epoch)
        assert len(cache._neg) == 4
        for k in range(10):
            assert cache.get(("R", f"hot{k}")) == (False, k)

    def test_negative_capacity_default(self):
        assert negative_capacity(4096) == 1024
        assert negative_capacity(8) == 32  # floored

    def test_negative_preserves_error_class(self):
        """A cached FederationError must replay as a FederationError —
        the wire code (``ERR federation``) depends on the class."""
        cache = ResultCache(size=4)
        cache.put_negative(("R", "far"),
                           FederationError("gateway unreachable"),
                           cache.epoch)
        negative, payload = cache.get(("R", "far"))
        assert negative is True
        with pytest.raises(FederationError, match="gateway"):
            cache.raise_negative(payload)

    def test_positive_insert_clears_negative_twin(self):
        cache = ResultCache(size=4)
        cache.put_negative(("R", "x"), RouteError("no"), cache.epoch)
        cache.put(("R", "x"), 7, cache.epoch)
        assert cache.get(("R", "x")) == (False, 7)
        assert len(cache._neg) == 0

    def test_stats_keys(self):
        cache = ResultCache(size=16)
        cache.put(("R", "a"), 1, cache.epoch)
        cache.get(("R", "a"))
        cache.get(("R", "b"))
        cache.bump()
        assert cache.stats() == {
            "cache": "16", "n_cache_hits": "1",
            "n_cache_misses": "1", "n_cache_invalidations": "1"}


@pytest.fixture()
def snapshot_resolver(tmp_path):
    path = make_snapshot(MAP_V1, tmp_path / "v1.snap")
    return SnapshotResolver(SnapshotReader.open(path), "a")


class TestCachingResolver:
    def test_answers_byte_identical_to_inner(self, snapshot_resolver):
        cached = snapshot_resolver.cached()
        for target in ("b", "c", "d"):
            for user in ("%s", "alice", "bob"):
                assert cached.resolve_with_cost(target, user) == \
                    snapshot_resolver.resolve_with_cost(target, user)
        # the second pass above was all hits, instantiated per user
        assert cached.cache.hits > 0

    def test_domain_fallback_instantiates_identically(self):
        """A domain match's argument is ``target!user`` — the cached
        template substitution must reproduce that byte for byte."""
        db = RouteDatabase({".edu": "seismo!%s", "seismo": "seismo!%s"})
        cached = db.cached()
        direct = db.resolve("caip.rutgers.edu", "pleasant")
        via_cache = cached.resolve("caip.rutgers.edu", "pleasant")
        assert via_cache == direct
        assert via_cache.address == "seismo!caip.rutgers.edu!pleasant"
        # now from the cache, with a different user
        again = cached.resolve("caip.rutgers.edu", "other")
        assert again.address == "seismo!caip.rutgers.edu!other"
        assert again == db.resolve("caip.rutgers.edu", "other")

    def test_resolve_bang(self, snapshot_resolver):
        cached = snapshot_resolver.cached()
        assert cached.resolve_bang("d!who") == \
            snapshot_resolver.resolve_bang("d!who")

    def test_literal_percent_s_target_bypasses(self, snapshot_resolver):
        """A target containing ``%s`` cannot be template-substituted;
        the wrapper must not cache it."""
        cached = snapshot_resolver.cached()
        with pytest.raises(RouteError):
            cached.resolve_with_cost("%s.weird", "u")
        assert len(cached.cache) == 0

    def test_exact_lookup_cached_including_miss(self, snapshot_resolver):
        cached = snapshot_resolver.cached()
        assert cached.lookup("b") == snapshot_resolver.lookup("b")
        assert cached.lookup("b") == snapshot_resolver.lookup("b")
        assert cached.lookup("ghost") is None
        assert cached.lookup("ghost") is None  # cached negative
        assert cached.cache.hits == 2

    def test_errors_cached_and_replayed(self, snapshot_resolver):
        cached = snapshot_resolver.cached()
        with pytest.raises(RouteError) as first:
            cached.resolve("nowhere")
        with pytest.raises(RouteError) as replay:
            cached.resolve("nowhere")
        assert str(replay.value) == str(first.value)
        assert type(replay.value) is type(first.value)
        assert cached.cache.hits == 1

    def test_poisoned_cache_is_invisible_to_the_oracle(
            self, snapshot_resolver):
        """Satellite regression: ``resolve_with_cost_dict`` bypasses
        the cache *unconditionally*.  Poison the cached template for a
        pair and prove the engine path serves the poison (the cache is
        really consulted) while the oracle still answers from the
        snapshot — so differential fuzzing compares engine to truth,
        never cache to cache."""
        cached = snapshot_resolver.cached()
        truth = snapshot_resolver.resolve_with_cost("d", "u")
        assert cached.resolve_with_cost("d", "u") == truth
        cost, template = cached.cache.get(("R", "d"))[1]
        poisoned = type(template)(
            target=template.target, matched=template.matched,
            route="poison!%s", address="poison!%s")
        cached.cache.put(("R", "d"), (999, poisoned),
                         cached.cache.epoch)
        assert cached.resolve_with_cost("d", "u")[0] == 999
        assert cached.resolve_with_cost_dict("d", "u") == \
            snapshot_resolver.resolve_with_cost_dict("d", "u") == truth

    def test_oracle_delegates_to_plain_resolve_when_absent(self):
        db = RouteDatabase({"host": "host!%s"})
        cached = CachingResolver(db, size=4)
        assert cached.resolve_with_cost_dict("host", "u") == \
            db.resolve_with_cost("host", "u")

    def test_bump_invalidates_wrapper(self, tmp_path):
        """Swap the snapshot under the wrapper, bump, and the next
        answer reflects the new data."""
        v1 = make_snapshot(MAP_V1, tmp_path / "v1.snap")
        v2 = make_snapshot(MAP_V2, tmp_path / "v2.snap")
        inner = SnapshotResolver(SnapshotReader.open(v1), "a")
        cached = CachingResolver(inner, size=16)
        assert cached.resolve_with_cost("d", "u")[0] == 30
        assert cached.resolve_with_cost("d", "u")[0] == 30  # hit
        cached.inner = SnapshotResolver(SnapshotReader.open(v2), "a")
        cached.bump()
        assert cached.resolve_with_cost("d", "u")[0] == \
            cached.inner.resolve_with_cost("d", "u")[0]
        assert cached.cache.invalidations == 1

    def test_default_size(self, snapshot_resolver):
        assert snapshot_resolver.cached().cache.size == \
            DEFAULT_CACHE_SIZE
        assert "CachingResolver" in repr(snapshot_resolver.cached())


class TestServiceCacheWiring:
    def test_dict_dispatch_forces_cache_off(self, tmp_path):
        """The differential oracle must never answer from a cache."""
        snap = make_snapshot(MAP_V1, tmp_path / "v1.snap")
        assert RouteService(snap, dispatch="dict").cache is None
        assert RouteService(snap).cache is not None
        assert FederationService(
            {"m": snap}, dispatch="dict").cache is None
        assert FederationService({"m": snap}).cache is not None

    def test_cache_size_zero_disables(self, tmp_path):
        snap = make_snapshot(MAP_V1, tmp_path / "v1.snap")
        assert RouteService(snap, cache_size=0).cache is None
        assert FederationService({"m": snap}, cache_size=0).cache \
            is None


class TestFederationInvalidationRace:
    """The stamp discipline, exercised deterministically: a stitched
    compute spans await points; a swap+bump lands mid-flight; the
    stale result must not enter the cache."""

    def test_mid_compute_bump_drops_the_stale_insert(
            self, shard_paths, tmp_path):
        revised = (DATA / "d.universities").read_text().replace(
            "princeton\tallegra(DEMAND), rutgers-ru(LOCAL), "
            "winnie(HOURLY)",
            "princeton\tallegra(DEMAND), rutgers-ru(DEMAND), "
            "winnie(HOURLY)")
        revised_snap = tmp_path / "universities2.snap"
        build_snapshot(
            Pathalias().build([("d.universities", revised)]),
            revised_snap)

        async def scenario():
            service = FederationService(dict(shard_paths),
                                        default_source="ihnp4")
            old_cost, _ = await service.lookup("ihnp4", "topaz")
            service.cache.bump()  # start from an empty picture

            started = asyncio.Event()
            release = asyncio.Event()
            pinned = service._lookup_pinned

            async def slow(view, source, target, user):
                started.set()
                await release.wait()
                return await pinned(view, source, target, user)

            service._lookup_pinned = slow
            in_flight = asyncio.ensure_future(
                service.lookup("ihnp4", "topaz"))
            await started.wait()
            service._lookup_pinned = pinned
            # the reload swaps the view, then bumps — before acking
            await service.reload_shard("universities",
                                       str(revised_snap))
            release.set()
            # the in-flight caller gets the answer its pinned view
            # promised (the old generation) ...
            cost, _ = await in_flight
            assert cost == old_cost
            # ... but its insert was stamp-dropped: the next lookup
            # recomputes against the new generation
            new_cost, _ = await service.lookup("ihnp4", "topaz")
            assert new_cost != old_cost
            assert new_cost == (await service.lookup(
                "ihnp4", "topaz"))[0]  # and THAT one cached fine

        asyncio.run(scenario())

    def test_detach_bump_drops_the_stale_insert(self, shard_paths):
        """Same race against DETACH: the shard vanishes mid-compute;
        the computed answer (from the pinned, pre-detach view) must
        not be cached as current."""

        async def scenario():
            service = FederationService(dict(shard_paths),
                                        default_source="ihnp4")
            started = asyncio.Event()
            release = asyncio.Event()
            pinned = service._lookup_pinned

            async def slow(view, source, target, user):
                started.set()
                await release.wait()
                return await pinned(view, source, target, user)

            service._lookup_pinned = slow
            in_flight = asyncio.ensure_future(
                service.lookup("ihnp4", "topaz"))
            await started.wait()
            service._lookup_pinned = pinned
            await service.detach("universities")
            release.set()
            cost, _ = await in_flight  # old view: still resolves
            assert cost > 0
            # a fresh lookup sees the detached picture, not the cache
            with pytest.raises(RouteError):
                await service.lookup("ihnp4", "topaz")

        asyncio.run(scenario())

    def test_attach_and_reload_count_invalidations(self, shard_paths,
                                                   tmp_path):
        async def scenario():
            service = FederationService(
                {"backbone": shard_paths["backbone"]},
                default_source="ihnp4")
            await service.attach("arpa", shard_paths["arpa"])
            await service.detach("arpa")
            await service.reload_shard("backbone",
                                      shard_paths["backbone"])
            assert service.cache.invalidations == 3
            assert service.cache.generations.token("arpa") == 2
            assert service.cache.generations.token("backbone") == 1

        asyncio.run(scenario())
