"""Map consistency-checker tests."""

from repro.graph.build import build_graph
from repro.graph.check import check_map
from repro.parser.grammar import parse_text


def check(text_or_files):
    if isinstance(text_or_files, str):
        files = [("d.map", parse_text(text_or_files))]
    else:
        files = [(n, parse_text(t, n)) for n, t in text_or_files]
    return check_map(build_graph(files))


class TestSymmetry:
    def test_asymmetric_link_reported(self):
        report = check("a b(10)\nb c(10)\nc b(10)")
        findings = report.of_kind("asymmetric-link")
        assert len(findings) == 1
        assert findings[0].subject == "a"

    def test_symmetric_links_clean(self):
        report = check("a b(10)\nb a(10)")
        assert not report.of_kind("asymmetric-link")

    def test_cost_disagreement(self):
        report = check("a b(10)\nb a(5000)")
        assert len(report.of_kind("cost-disagreement")) == 1

    def test_mild_difference_tolerated(self):
        report = check("a b(300)\nb a(500)")
        assert not report.of_kind("cost-disagreement")

    def test_gateway_links_exempt(self):
        """Links into nets are one-way by design — not asymmetric."""
        report = check("gw ARPA(95)\nARPA = {m}(95)\ngw m(5)\nm gw(5)")
        assert not report.of_kind("asymmetric-link")


class TestNets:
    def test_orphan_net(self):
        report = check("x y(5)\ny x(5)\ngatewayed {GHOSTNET}")
        kinds = {f.kind for f in report}
        assert "gatewayed-nonnet" in kinds

    def test_gatewayed_without_gateway(self):
        report = check("gatewayed {NET}\nNET = {a, b}(5)\n"
                       "a b(5)\nb a(5)")
        assert len(report.of_kind("gatewayed-without-gateway")) == 1

    def test_gatewayed_with_gateway_clean(self):
        report = check("gatewayed {NET}\nNET = {a, b}(5)\n"
                       "gw NET(5)\na b(5)\nb a(5)")
        assert not report.of_kind("gatewayed-without-gateway")

    def test_unused_net_is_orphan(self):
        # All members deleted: nothing links into the net any more.
        report = check("NET = {m}(5)\nx m(5)\nm x(5)\ndelete {m}\n"
                       "x y(5)\ny x(5)")
        assert report.of_kind("orphan-net")


class TestHygiene:
    def test_zero_cost_link_flagged(self):
        report = check("a b(0)\nb a(0)")
        assert len(report.of_kind("zero-cost-link")) == 2

    def test_zero_cost_into_net_ok(self):
        report = check("gw NET(0)\nNET = {m}(5)")
        assert not report.of_kind("zero-cost-link")

    def test_many_way_collision_reported(self):
        files = [(f"f{i}",
                  f"private {{bilbo}}\nbilbo h{i}(5)\nh{i} bilbo(5)")
                 for i in range(3)]
        report = check(files)
        assert report.of_kind("name-collision")

    def test_two_way_private_collision_tolerated(self):
        files = [(f"f{i}",
                  f"private {{bilbo}}\nbilbo h{i}(5)\nh{i} bilbo(5)")
                 for i in range(2)]
        report = check(files)
        assert not report.of_kind("name-collision")

    def test_builder_warnings_included(self):
        report = check("a a(5), b(5)\nb a(5)")
        assert report.of_kind("builder-warning")


class TestReport:
    def test_summary_counts(self):
        report = check("a b(10)\nb c(10)\nc b(10)")
        assert "asymmetric-link: 1" in report.summary()

    def test_clean_map_summary(self):
        report = check("a b(10)\nb a(10)")
        assert report.summary() == "map is clean"
        assert len(report) == 0

    def test_findings_stringify(self):
        report = check("a b(10)\nb c(10)\nc b(10)")
        text = str(report.of_kind("asymmetric-link")[0])
        assert "asymmetric-link" in text and "a" in text

    def test_generated_map_mostly_clean(self):
        from repro.netsim.mapgen import MapParams, generate_map

        generated = generate_map(MapParams.small(seed=3))
        files = [(n, parse_text(t, n)) for n, t in generated.files]
        report = check_map(build_graph(files))
        # One-way leaves are *supposed* to show up as asymmetric.
        asym = {f.subject for f in report.of_kind("asymmetric-link")}
        for leaf in generated.oneway_leaves:
            assert leaf in asym
