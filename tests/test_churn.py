"""Churn at tier-1 scale: replay, invariants, and the NOTIFY push.

The scaled-down version of ``tools/soak.py``'s acceptance bars, small
enough for the regular suite:

* a 2k-node, 200-event scenario replays through the incremental
  updater with **zero full-rebuild fallbacks**, and the served
  answers stay **byte-identical** to an independent oracle federation
  at every generation (with periodic from-scratch snapshot builds
  proving the incrementally-updated files themselves are
  byte-identical to clean builds);
* the event log round-trips — ``write_log`` → ``read_log`` →
  regenerated scenario — and rejects corrupted logs loudly;
* every churn event kind maps onto a diff shape the incremental
  updater accepts (``MapDiff.cost_only``), classified semantically by
  ``MapDiff.churn_kinds``; a genuinely structural revision still
  forces (and reports) the full path;
* a backend daemon's **own** reload becomes visible to the federation
  front end through the NOTIFY push channel alone — the front end's
  RELOAD verb stays unused, its cached ownership index and leg cache
  are refreshed, and the regression is locked by counters
  (``resyncs``/``notify_pushes``) as well as by answer bytes.
"""

from __future__ import annotations

import asyncio
import random
from pathlib import Path

import pytest

from repro.graph.compact import K_NORMAL
from repro.netsim.churn import (
    DEAD_COST,
    ChurnEvent,
    ChurnParams,
    ChurnScenario,
    LinkChange,
    read_log,
    write_log,
)
from repro.netsim.mapdiff import diff_link_maps, diff_map_texts
from repro.service.daemon import RouteService, serve
from repro.service.federation import FederationService
from repro.service.incremental import update_snapshot
from repro.service.store import build_snapshot

#: The tier-1 soak scenario: small enough for the suite, big enough
#: that every event kind occurs and all eight shards keep churning
#: (many small shards keep per-event table remaps cheap — the same
#: geometry lever the auto-scaled region count pulls at full scale).
SOAK = ChurnParams(nodes=2000, events=200, seed=1186, regions=8,
                   hubs_per_region=4)

#: A tiny two-shard scenario for the NOTIFY/wire tests.
TINY = ChurnParams(nodes=80, events=40, seed=7, regions=2,
                   hubs_per_region=4)


def _link_costs(cg) -> dict[tuple[str, str], int]:
    """NORMAL link costs of a compact graph, cheapest per (src, dst)."""
    out: dict[tuple[str, str], int] = {}
    for cid in range(cg.n):
        for j in range(cg.off[cid], cg.off[cid + 1]):
            if cg.kind[j] != K_NORMAL:
                continue
            key = (cg.names[cid], cg.names[cg.to[j]])
            if key not in out or cg.cost[j] < out[key]:
                out[key] = cg.cost[j]
    return out


class TestScenarioGeneration:
    def test_deterministic_for_equal_params(self):
        a = ChurnScenario(SOAK)
        b = ChurnScenario(SOAK)
        assert a.stream == b.stream
        assert a.map_files() == b.map_files()

    def test_population_is_exactly_nodes(self):
        scenario = ChurnScenario(SOAK)
        names: set[str] = set()
        for (_, src, dst) in scenario._decls:
            names.add(src)
            names.add(dst)
        assert len(names) == SOAK.nodes

    def test_every_event_kind_occurs(self):
        kinds = {event.kind for event in ChurnScenario(SOAK).stream}
        assert kinds == {"cost", "add", "drop", "retire", "move"}

    def test_region_autoscale(self):
        assert ChurnParams(nodes=2000).region_count() == 2
        assert ChurnParams(nodes=100_000).region_count() == 40
        assert ChurnParams(nodes=1_000_000).region_count() == 64
        assert ChurnParams(nodes=9000, regions=3).region_count() == 3

    def test_rejects_degenerate_params(self):
        with pytest.raises(ValueError, match="at least 4"):
            ChurnScenario(ChurnParams(hubs_per_region=3))
        with pytest.raises(ValueError, match="need at least"):
            ChurnScenario(ChurnParams(nodes=10, regions=2))

    def test_apply_rejects_unknown_link(self):
        scenario = ChurnScenario(TINY)
        scenario.build_graphs()
        bogus = ChurnEvent(0, "cost", (LinkChange(
            scenario.shard_names[0], "nosuch", "nowhere", 99),))
        with pytest.raises(ValueError, match="no link"):
            scenario.apply(bogus)

    def test_fast_forward_matches_manual_replay(self):
        manual = ChurnScenario(TINY)
        manual.build_graphs()
        for event in manual.stream[:25]:
            manual.apply(event)
        jumped = ChurnScenario(TINY)
        jumped.build_graphs()
        jumped.fast_forward(25)
        for name in manual.shard_names:
            assert list(manual.graphs[name].cost) == \
                list(jumped.graphs[name].cost)


class TestEventLog:
    def test_round_trip_and_regeneration(self, tmp_path):
        scenario = ChurnScenario(TINY)
        path = tmp_path / "churn.log"
        assert write_log(scenario, path) == len(scenario.stream)
        params, events = read_log(path)
        assert events == scenario.stream
        assert ChurnScenario(params).stream == scenario.stream

    def test_round_trip_fuzz_across_seeds(self, tmp_path):
        for seed in range(5):
            params = ChurnParams(nodes=80, events=30, seed=seed,
                                 regions=2, hubs_per_region=4)
            scenario = ChurnScenario(params)
            path = tmp_path / f"fuzz{seed}.log"
            write_log(scenario, path)
            _, events = read_log(path)
            assert events == scenario.stream

    def test_corrupted_logs_are_rejected(self, tmp_path):
        scenario = ChurnScenario(TINY)
        path = tmp_path / "churn.log"
        write_log(scenario, path)
        good = path.read_text(encoding="utf-8").splitlines()

        def expect_rejected(lines, match):
            bad = tmp_path / "bad.log"
            bad.write_text("\n".join(lines) + "\n", encoding="utf-8")
            with pytest.raises(ValueError, match=match):
                read_log(bad)

        expect_rejected(["not a log"] + good[1:], "not a churn log")
        expect_rejected([good[0], good[2], good[1]] + good[3:],
                        "reordered or truncated")
        expect_rejected(good[:-1], "promises")
        garbled = good[:]
        garbled[1] = garbled[1].replace(garbled[1].split()[1],
                                        "frobnicate", 1)
        expect_rejected(garbled, "unknown event kind")
        header = good[0].replace("seed=", "sneed=")
        expect_rejected([header] + good[1:], "misses seed=")

    def test_decode_validates_change_arity(self):
        with pytest.raises(ValueError, match="needs two changes"):
            ChurnEvent.decode("0 move region0:a:b:5")
        with pytest.raises(ValueError, match="needs one change"):
            ChurnEvent.decode("0 cost region0:a:b:5 region0:c:d:6")
        with pytest.raises(ValueError, match="malformed"):
            LinkChange.decode("region0:a:b")

    def test_resume_from_log_generation(self, tmp_path):
        """A log reader can resume mid-stream: rebuild the scenario
        from the header params, fast-forward, replay the tail."""
        scenario = ChurnScenario(TINY)
        path = tmp_path / "churn.log"
        write_log(scenario, path)
        params, events = read_log(path)
        resumed = ChurnScenario(params)
        resumed.build_graphs()
        resumed.fast_forward(18)
        for event in events[18:]:
            resumed.apply(event)
        full = ChurnScenario(TINY)
        full.build_graphs()
        for event in full.stream:
            full.apply(event)
        for name in full.shard_names:
            assert list(resumed.graphs[name].cost) == \
                list(full.graphs[name].cost)


class TestMapdiffChurn:
    """Every event kind must produce a diff the updater accepts."""

    EXPECTED = {"cost": {"reprice": 1},
                "add": {"link-up": 1},
                "drop": {"link-down": 1},
                "retire": {"link-down": 1},
                "move": {"link-down": 1, "link-up": 1}}

    def test_every_kind_is_cost_only(self):
        scenario = ChurnScenario(SOAK)
        scenario.build_graphs()
        seen: set[str] = set()
        hosts = {name: set(cg.names[:cg.n])
                 for name, cg in scenario.graphs.items()}
        for event in scenario.stream:
            if event.kind in seen:
                scenario.apply(event)
                continue
            seen.add(event.kind)
            old = {name: _link_costs(scenario.graphs[name])
                   for name in event.shards}
            scenario.apply(event)
            kinds = {"reprice": 0, "link-up": 0, "link-down": 0,
                     "structural": 0}
            for name in event.shards:
                diff = diff_link_maps(
                    hosts[name], hosts[name], old[name],
                    _link_costs(scenario.graphs[name]))
                assert diff.cost_only, \
                    f"{event.kind} produced a structural diff"
                for key, n in diff.churn_kinds().items():
                    kinds[key] += n
            expected = dict.fromkeys(kinds, 0) | \
                self.EXPECTED[event.kind]
            assert kinds == expected, \
                f"{event.kind}: classified as {kinds}"
            if len(seen) == 5:
                return
        raise AssertionError(f"stream only produced kinds {seen}")

    def test_dead_band_classification(self):
        diff = diff_link_maps(
            {"a", "b"}, {"a", "b"},
            {("a", "b"): 100, ("b", "a"): DEAD_COST},
            {("a", "b"): DEAD_COST, ("b", "a"): 200})
        assert diff.cost_only
        assert diff.churn_kinds() == {
            "reprice": 0, "link-up": 1, "link-down": 1,
            "structural": 0}

    def test_structural_revision_forces_full_path(self, tmp_path):
        old_text = "a\tb(10)\nb\tc(20)\nc\ta(30)\n"
        new_text = "a\tb(10)\nb\ta(30)\n"
        diff = diff_map_texts([("d.old", old_text)],
                              [("d.new", new_text)])
        assert not diff.cost_only
        assert diff.churn_kinds()["structural"] > 0
        from repro.core.pathalias import Pathalias
        snap = tmp_path / "old.snap"
        build_snapshot(Pathalias().build([("d.old", old_text)]), snap)
        report = update_snapshot(
            snap, Pathalias().build([("d.new", new_text)]),
            tmp_path / "new.snap", full_threshold=1.0)
        assert report.mode == "full"


class TestChurnSoak:
    """The tier-1 replay: every generation byte-checked, no fallbacks."""

    def test_replay_is_incremental_and_byte_identical(self, tmp_path):
        scenario = ChurnScenario(SOAK)
        graphs = scenario.build_graphs()
        paths: dict[str, str] = {}
        for name in scenario.shard_names:
            paths[name] = str(tmp_path / f"{name}.g0.snap")
            build_snapshot(graphs[name], paths[name])
        service = FederationService(dict(paths))
        rng = random.Random(17)
        fallbacks: list[tuple] = []
        reloads = 0

        async def replay():
            nonlocal reloads
            for event in scenario.stream:
                for name in scenario.apply(event):
                    new_path = str(
                        tmp_path / f"{name}.g{event.gen + 1}.snap")
                    report = update_snapshot(
                        paths[name], graphs[name], new_path,
                        full_threshold=1.0)
                    if report.mode != "incremental":
                        fallbacks.append(
                            (event.gen, name, report.reason))
                    await service.reload_shard(name, new_path)
                    old = paths[name]
                    paths[name] = new_path
                    if not old.endswith(".g0.snap"):
                        Path(old).unlink()
                    reloads += 1
                # Differential: the long-lived service (incremental
                # reloads, surviving caches) against a fresh oracle
                # federation over the same generation's files.
                oracle = FederationService(dict(paths))
                for n, (src, dst) in enumerate(
                        scenario.sample_pairs(rng, 3)):
                    verb = "ROUTE" if n % 2 else "EXACT"
                    ss = service.initial_state()
                    os_ = oracle.initial_state()
                    for line in (f"SOURCE {src}", f"{verb} {dst}"):
                        served = await service.handle_line(line, ss)
                        expected = await oracle.handle_line(line, os_)
                        assert served == expected, \
                            f"gen {event.gen}: {line!r}"
                        assert served.startswith("OK"), \
                            f"gen {event.gen}: {line!r} -> {served}"
                # Periodically prove the incrementally-updated file
                # is byte-identical to a from-scratch build — which
                # makes the oracle above a from-scratch oracle too.
                if event.gen % 40 == 0:
                    for name in event.shards:
                        scratch = tmp_path / "scratch.snap"
                        build_snapshot(graphs[name], scratch)
                        assert scratch.read_bytes() == \
                            Path(paths[name]).read_bytes(), \
                            f"gen {event.gen} {name}: drifted"

        asyncio.run(replay())
        assert fallbacks == []
        assert service.reloads == reloads
        assert reloads >= len(scenario.stream)


class _Cluster:
    """In-loop per-shard daemons plus their backend specs."""

    def __init__(self) -> None:
        self.services: dict[str, RouteService] = {}
        self.servers: list = []
        self.specs: dict[str, str] = {}

    async def start(self, name: str, path: str) -> None:
        service = RouteService(path)
        server = await serve(service)
        port = server.sockets[0].getsockname()[1]
        self.services[name] = service
        self.servers.append(server)
        self.specs[name] = f"127.0.0.1:{port}"

    async def close(self) -> None:
        for server in self.servers:
            server.close()
            await server.wait_closed()


def _tiny_snapshots(tmp_path):
    scenario = ChurnScenario(TINY)
    graphs = scenario.build_graphs()
    paths = {}
    for name in scenario.shard_names:
        paths[name] = str(tmp_path / f"{name}.g0.snap")
        build_snapshot(graphs[name], paths[name])
    return scenario, graphs, paths


async def _wire_request(host: str, port: int, line: str) -> str:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(line.encode("utf-8") + b"\n")
    await writer.drain()
    reply = (await reader.readline()).decode("utf-8").rstrip("\n")
    writer.close()
    return reply


class TestNotifyResync:
    """A backend's own reload must reach the front end by push alone."""

    def test_backend_reload_visible_without_front_end_reload(
            self, tmp_path):
        scenario, graphs, paths = _tiny_snapshots(tmp_path)

        async def scenario_run():
            cluster = _Cluster()
            for name, path in paths.items():
                await cluster.start(name, path)
            front = await FederationService.create(
                backends=cluster.specs)

            # A cross-shard probe primes the stitched leg cache.
            src = scenario._hubs[0][0]
            far = scenario._hubs[1][2]
            state = front.initial_state()
            assert (await front.handle_line(f"SOURCE {src}", state)
                    ).startswith("OK")
            before_far = await front.handle_line(f"EXACT {far}", state)
            assert before_far.startswith("OK")

            # Replay events until some local answer provably changes.
            probe = None
            for event in scenario.stream:
                touched = scenario.apply(event)
                change = event.changes[0]
                candidate = (change.shard, change.src, change.dst)
                old_reply = None
                if change.shard == scenario.shard_names[0] and \
                        not change.src.startswith("gw"):
                    old_reply = await front.handle_line(
                        f"EXACT {candidate[2]}", state)
                for name in touched:
                    new_path = str(
                        tmp_path / f"{name}.g{event.gen + 1}.snap")
                    update_snapshot(paths[name], graphs[name],
                                    new_path, full_threshold=1.0)
                    paths[name] = new_path
                if old_reply is not None:
                    oracle = FederationService(dict(paths))
                    ostate = oracle.initial_state()
                    await oracle.handle_line(f"SOURCE {src}", ostate)
                    new_reply = await oracle.handle_line(
                        f"EXACT {candidate[2]}", ostate)
                    if new_reply != old_reply:
                        probe = (candidate[2], old_reply, new_reply)
                        break
            assert probe is not None, \
                "stream never changed a shard-0 answer"

            # Reload every daemon DIRECTLY (never through the front
            # end) and wait for the pushes to re-sync the view.
            for name, spec in cluster.specs.items():
                host, _, port = spec.rpartition(":")
                reply = await _wire_request(
                    host, int(port), f"RELOAD {paths[name]}")
                assert reply.startswith("OK reloaded")
            for _ in range(500):
                if front.resyncs >= len(paths):
                    break
                await asyncio.sleep(0.01)
            assert front.resyncs == len(paths)
            assert front.verb_counts["RELOAD"] == 0
            assert front.reloads == 0
            for service in cluster.services.values():
                assert service.notify_pushes >= 1

            # The front end now serves the new generation: the local
            # probe flipped to the post-churn answer, and a stitched
            # cross-shard lookup matches a fresh oracle byte for byte
            # (the old leg cache was dropped in the re-sync).
            dest, old_reply, new_reply = probe
            assert await front.handle_line(
                f"EXACT {dest}", state) == new_reply
            oracle = FederationService(dict(paths))
            ostate = oracle.initial_state()
            await oracle.handle_line(f"SOURCE {src}", ostate)
            for line in (f"EXACT {far}", f"ROUTE {far}"):
                assert await front.handle_line(line, state) == \
                    await oracle.handle_line(line, ostate)

            await cluster.close()

        asyncio.run(scenario_run())

    def test_resync_coalesces_with_forwarded_reload(self, tmp_path):
        """A RELOAD forwarded *through* the front end re-syncs inside
        the same swap; the daemon's push for it must not double-swap
        (the path comparison coalesces it)."""
        scenario, graphs, paths = _tiny_snapshots(tmp_path)

        async def scenario_run():
            cluster = _Cluster()
            name = scenario.shard_names[0]
            await cluster.start(name, paths[name])
            front = await FederationService.create(
                backends=cluster.specs)
            event = scenario.stream[0]
            scenario.apply(event)
            target = event.changes[0].shard
            new_path = str(tmp_path / "next.snap")
            update_snapshot(paths[target], graphs[target], new_path,
                            full_threshold=1.0)
            if target == name:
                await front.reload_shard(name, new_path)
                assert front.reloads == 1
            # give any (coalesced) push time to land
            await asyncio.sleep(0.2)
            assert front.resyncs == 0
            await cluster.close()

        asyncio.run(scenario_run())


class TestNotifyWire:
    """The NOTIFY verb itself, over a real connection."""

    def test_subscribe_then_reload_pushes_a_frame(self, tmp_path):
        _, _, paths = _tiny_snapshots(tmp_path)
        path = next(iter(paths.values()))

        async def scenario_run():
            service = RouteService(path)
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            sub_r, sub_w = await asyncio.open_connection(
                "127.0.0.1", port)
            sub_w.write(b"NOTIFY\n")
            await sub_w.drain()
            assert (await sub_r.readline()) == b"OK notify 1\n"
            reply = await _wire_request("127.0.0.1", port,
                                        f"RELOAD {path}")
            assert reply.startswith("OK reloaded")
            frame = (await asyncio.wait_for(
                sub_r.readline(), 5)).decode("utf-8").split()
            assert frame[:2] == ["NOTIFY", "reloaded"]
            assert frame[3] == str(path)
            assert service.notify_pushes == 1
            sub_w.close()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario_run())

    def test_dead_subscriber_is_dropped(self, tmp_path):
        _, _, paths = _tiny_snapshots(tmp_path)
        path = next(iter(paths.values()))

        async def scenario_run():
            service = RouteService(path)
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            sub_r, sub_w = await asyncio.open_connection(
                "127.0.0.1", port)
            sub_w.write(b"NOTIFY\n")
            await sub_w.drain()
            await sub_r.readline()
            assert len(service.notify_subscribers) == 1
            sub_w.close()
            await sub_w.wait_closed()
            for _ in range(200):
                if not service.notify_subscribers:
                    break
                await asyncio.sleep(0.01)
            assert not service.notify_subscribers
            server.close()
            await server.wait_closed()

        asyncio.run(scenario_run())

    def test_notify_usage_and_transport_errors(self, tmp_path):
        _, _, paths = _tiny_snapshots(tmp_path)
        path = next(iter(paths.values()))

        async def scenario_run():
            service = RouteService(path)
            server = await serve(service)
            port = server.sockets[0].getsockname()[1]
            assert (await _wire_request(
                "127.0.0.1", port, "NOTIFY extra")) \
                == "ERR usage NOTIFY"
            # In-process dispatch has no push-capable transport.
            reply = await service.handle_line("NOTIFY", {})
            assert reply.startswith("ERR notify")
            server.close()
            await server.wait_closed()

        asyncio.run(scenario_run())
