"""CLI tests (the pathalias command)."""

import pytest

from repro.cli import main

from tests.conftest import PAPER_1981_MAP


@pytest.fixture
def map_file(tmp_path):
    path = tmp_path / "d.map"
    path.write_text(PAPER_1981_MAP)
    return str(path)


class TestBasicInvocation:
    def test_tab_output_default(self, map_file, capsys):
        assert main(["-l", "unc", map_file]) == 0
        out = capsys.readouterr().out
        assert "phs\tduke!phs!%s" in out
        assert out.splitlines() == sorted(out.splitlines())

    def test_costs_option(self, map_file, capsys):
        assert main(["-l", "unc", "-c", map_file]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0] == "0\tunc\t%s"
        assert out[-1] == "3395\tstanford\tduke!research!ucbvax!%s@stanford"

    def test_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("a b(10)"))
        assert main(["-l", "a"]) == 0
        assert "b\tb!%s" in capsys.readouterr().out

    def test_ignore_case(self, tmp_path, capsys):
        path = tmp_path / "d.map"
        path.write_text("UNC Duke(10)")
        assert main(["-l", "unc", "-i", str(path)]) == 0
        assert "duke\tduke!%s" in capsys.readouterr().out

    def test_lex_scanner_same_output(self, map_file, capsys):
        main(["-l", "unc", "-c", map_file])
        hand = capsys.readouterr().out
        main(["-l", "unc", "-c", "--lex", map_file])
        lex = capsys.readouterr().out
        assert hand == lex


class TestOptions:
    def test_second_best(self, tmp_path, capsys):
        from tests.conftest import MOTOWN_MAP

        path = tmp_path / "d.map"
        path.write_text(MOTOWN_MAP)
        assert main(["-l", "princeton", "-s", "-c", str(path)]) == 0
        out = capsys.readouterr().out
        assert "500\tmotown\ttopaz!motown!%s" in out

    def test_no_back_links_reports_unreachable(self, tmp_path, capsys):
        path = tmp_path / "d.map"
        path.write_text("a b(10)\nleaf a(10)")
        assert main(["-l", "a", "--no-back-links", str(path)]) == 0
        err = capsys.readouterr().err
        assert "leaf: unreachable" in err

    def test_stats_on_stderr(self, map_file, capsys):
        assert main(["-l", "unc", "--stats", map_file]) == 0
        err = capsys.readouterr().err
        assert "nodes" in err and "scan" in err

    def test_warnings_on_stderr(self, tmp_path, capsys):
        path = tmp_path / "d.map"
        path.write_text("a a(10), b(10)")
        assert main(["-l", "a", "--warnings", str(path)]) == 0
        assert "warning" in capsys.readouterr().err


class TestToolOptions:
    def test_dot_to_file(self, map_file, tmp_path, capsys):
        out = tmp_path / "routes.dot"
        assert main(["-l", "unc", "--dot", str(out), map_file]) == 0
        dot = out.read_text()
        assert dot.startswith("digraph")
        assert '"unc" -> "duke"' in dot

    def test_dot_to_stdout(self, map_file, capsys):
        assert main(["-l", "unc", "--dot", "-", map_file]) == 0
        out = capsys.readouterr().out
        assert "digraph" in out

    def test_check_reports_on_stderr(self, tmp_path, capsys):
        path = tmp_path / "d.map"
        path.write_text("a b(10)\nb c(10)\nc b(10)")
        assert main(["-l", "a", "--check", str(path)]) == 0
        err = capsys.readouterr().err
        assert "asymmetric-link" in err
        assert "check:" in err

    def test_check_clean_map(self, tmp_path, capsys):
        path = tmp_path / "d.map"
        path.write_text("a b(10)\nb a(10)")
        assert main(["-l", "a", "--check", str(path)]) == 0
        assert "map is clean" in capsys.readouterr().err

    def test_report(self, map_file, capsys):
        assert main(["-l", "unc", "--report", map_file]) == 0
        err = capsys.readouterr().err
        assert "pathalias run report" in err
        assert "busiest relays:" in err

    def test_trace(self, map_file, capsys):
        assert main(["-l", "unc", "--trace", "mit-ai", map_file]) == 0
        err = capsys.readouterr().err
        assert "route to mit-ai (cost 3395)" in err
        assert "unc -> duke" in err

    def test_trace_unknown_host(self, map_file, capsys):
        assert main(["-l", "unc", "--trace", "zebra", map_file]) == 0
        assert "trace:" in capsys.readouterr().err


class TestFailures:
    def test_unknown_localhost(self, map_file, capsys):
        assert main(["-l", "ghost", map_file]) == 1
        assert "ghost" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["-l", "a", "/nonexistent/map"]) == 2
        assert "pathalias:" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "d.map"
        path.write_text("= broken =")
        assert main(["-l", "a", str(path)]) == 1
        err = capsys.readouterr().err
        assert "pathalias:" in err


class TestEngineSelection:
    def test_engines_agree_byte_for_byte(self, map_file, capsys):
        assert main(["-l", "unc", "--engine", "compact", map_file]) == 0
        compact = capsys.readouterr().out
        assert main(["-l", "unc", "--engine", "reference", map_file]) == 0
        reference = capsys.readouterr().out
        assert compact == reference
        assert "phs\tduke!phs!%s" in compact

    def test_compact_supports_trace_and_report(self, map_file, capsys):
        assert main(["-l", "unc", "--engine", "compact", "--report",
                     "--trace", "mit-ai", map_file]) == 0
        err = capsys.readouterr().err
        assert "pathalias run report" in err
        assert "route to mit-ai (cost 3395)" in err


class TestBatchMode:
    def test_batch_writes_all_sources(self, map_file, tmp_path, capsys):
        out = tmp_path / "paths"
        assert main(["--batch", str(out), map_file]) == 0
        written = sorted(p.name for p in out.iterdir())
        assert "paths.unc" in written and "paths.ucbvax" in written
        assert "phs\tduke!phs!%s" in (out / "paths.unc").read_text()
        assert "batch:" in capsys.readouterr().err

    def test_batch_parallel_jobs(self, map_file, tmp_path, capsys):
        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        assert main(["--batch", str(serial), map_file]) == 0
        assert main(["--batch", str(parallel), "-j", "2", map_file]) == 0
        assert "jobs=2" in capsys.readouterr().err
        for path in serial.iterdir():
            assert (parallel / path.name).read_text() == path.read_text()

    def test_batch_parse_error(self, tmp_path, capsys):
        path = tmp_path / "d.map"
        path.write_text("= broken =")
        assert main(["--batch", str(tmp_path / "out"), str(path)]) == 1
        assert "pathalias:" in capsys.readouterr().err
